#!/usr/bin/env bash
# Build/test the workspace in a container with no access to crates.io.
#
# The committed manifests depend on the real `rand`, `proptest`, and
# `criterion` from the registry. When the registry is unreachable, this
# wrapper patches in the API-compatible stand-ins under vendor-stubs/ via
# cargo's --config flag — nothing in the committed Cargo.tomls changes, so
# CI and networked checkouts keep using the real crates.
#
# Usage: scripts/offline-dev.sh <any cargo subcommand+args>
#   e.g. scripts/offline-dev.sh test -q
#        scripts/offline-dev.sh clippy --workspace --all-targets
#
# Note: the stub RNG is xoshiro256++ (same family as rand's SmallRng) but
# not bit-identical to upstream streams, so exact expected values can
# differ from a networked run; determinism *within* a stub build holds.
set -euo pipefail
cd "$(dirname "$0")/.."
exec cargo "$1" \
  --config 'patch.crates-io.rand.path="vendor-stubs/rand"' \
  --config 'patch.crates-io.proptest.path="vendor-stubs/proptest"' \
  --config 'patch.crates-io.criterion.path="vendor-stubs/criterion"' \
  --offline \
  "${@:2}"
