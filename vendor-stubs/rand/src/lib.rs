//! Offline stand-in for the subset of `rand` 0.8 this workspace uses.
//!
//! The workspace's real builds pull `rand` from crates.io; this crate exists
//! so that development containers with no network access can still compile
//! and run the full test suite (`scripts/offline-dev.sh` patches it in via
//! `--config`, leaving the committed manifests untouched). The generator is
//! xoshiro256++ seeded through SplitMix64 — the same construction the real
//! `SmallRng` uses on 64-bit targets — so statistical behaviour is
//! comparable, though streams are not bit-identical to upstream `rand`.

/// Core 64-bit generator interface (subset of `rand_core::RngCore`).
pub trait RngCore {
    /// Next 64 uniformly random bits.
    fn next_u64(&mut self) -> u64;

    /// Next 32 uniformly random bits.
    fn next_u32(&mut self) -> u32 {
        (self.next_u64() >> 32) as u32
    }
}

/// Seedable construction (subset of `rand_core::SeedableRng`).
pub trait SeedableRng: Sized {
    /// Build a generator from a 64-bit seed, SplitMix64-expanded.
    fn seed_from_u64(state: u64) -> Self;
}

fn splitmix64(state: &mut u64) -> u64 {
    *state = state.wrapping_add(0x9E37_79B9_7F4A_7C15);
    let mut z = *state;
    z = (z ^ (z >> 30)).wrapping_mul(0xBF58_476D_1CE4_E5B9);
    z = (z ^ (z >> 27)).wrapping_mul(0x94D0_49BB_1331_11EB);
    z ^ (z >> 31)
}

/// Sampling helpers layered over any [`RngCore`] (subset of `rand::Rng`).
pub trait Rng: RngCore {
    /// Sample a value of type `T` from its standard distribution
    /// (`f64` in `[0, 1)`, integers uniform over their range, fair `bool`).
    fn gen<T: Standard>(&mut self) -> T {
        T::sample(self)
    }

    /// Sample uniformly from `range` (half-open integer ranges).
    fn gen_range<T, R>(&mut self, range: R) -> T
    where
        T: UniformInt,
        R: core::ops::RangeBounds<T>,
    {
        let lo = match range.start_bound() {
            core::ops::Bound::Included(&x) => x,
            core::ops::Bound::Excluded(&x) => x.step_up(),
            core::ops::Bound::Unbounded => T::MIN_VALUE,
        };
        let hi = match range.end_bound() {
            core::ops::Bound::Included(&x) => x.step_up(),
            core::ops::Bound::Excluded(&x) => x,
            core::ops::Bound::Unbounded => panic!("unbounded gen_range"),
        };
        T::uniform(self, lo, hi)
    }

    /// Bernoulli trial with success probability `p`.
    fn gen_bool(&mut self, p: f64) -> bool {
        f64::sample(self) < p
    }
}

impl<R: RngCore + ?Sized> Rng for R {}

/// Types samplable from the standard distribution.
pub trait Standard: Sized {
    /// Draw one value.
    fn sample<R: RngCore + ?Sized>(rng: &mut R) -> Self;
}

impl Standard for f64 {
    fn sample<R: RngCore + ?Sized>(rng: &mut R) -> Self {
        // 53 random mantissa bits, uniform in [0, 1).
        (rng.next_u64() >> 11) as f64 * (1.0 / (1u64 << 53) as f64)
    }
}

impl Standard for u64 {
    fn sample<R: RngCore + ?Sized>(rng: &mut R) -> Self {
        rng.next_u64()
    }
}

impl Standard for u32 {
    fn sample<R: RngCore + ?Sized>(rng: &mut R) -> Self {
        rng.next_u32()
    }
}

impl Standard for bool {
    fn sample<R: RngCore + ?Sized>(rng: &mut R) -> Self {
        rng.next_u64() & 1 == 1
    }
}

/// Integer types usable with [`Rng::gen_range`].
pub trait UniformInt: Copy + PartialOrd {
    /// Smallest representable value (for unbounded starts).
    const MIN_VALUE: Self;
    /// `self + 1`, used to normalize inclusive bounds.
    fn step_up(self) -> Self;
    /// Uniform draw from `[lo, hi)`; panics if the range is empty.
    fn uniform<R: RngCore + ?Sized>(rng: &mut R, lo: Self, hi: Self) -> Self;
}

macro_rules! impl_uniform_int {
    ($($t:ty),*) => {$(
        impl UniformInt for $t {
            const MIN_VALUE: Self = <$t>::MIN;
            fn step_up(self) -> Self { self + 1 }
            fn uniform<R: RngCore + ?Sized>(rng: &mut R, lo: Self, hi: Self) -> Self {
                assert!(lo < hi, "gen_range called with an empty range");
                let span = (hi as u128).wrapping_sub(lo as u128) as u64;
                // Lemire-style rejection-free enough for a dev stub:
                // widening multiply keeps bias below 2^-64.
                let hi64 = ((rng.next_u64() as u128 * span as u128) >> 64) as u64;
                lo + hi64 as $t
            }
        }
    )*};
}

impl_uniform_int!(u8, u16, u32, u64, usize);

/// Named generators (subset of `rand::rngs`).
pub mod rngs {
    use super::{splitmix64, RngCore, SeedableRng};

    /// xoshiro256++ — the construction `rand`'s 64-bit `SmallRng` uses.
    #[derive(Debug, Clone)]
    pub struct SmallRng {
        s: [u64; 4],
    }

    impl SeedableRng for SmallRng {
        fn seed_from_u64(state: u64) -> Self {
            let mut sm = state;
            Self {
                s: [
                    splitmix64(&mut sm),
                    splitmix64(&mut sm),
                    splitmix64(&mut sm),
                    splitmix64(&mut sm),
                ],
            }
        }
    }

    impl RngCore for SmallRng {
        fn next_u64(&mut self) -> u64 {
            let result = self.s[0]
                .wrapping_add(self.s[3])
                .rotate_left(23)
                .wrapping_add(self.s[0]);
            let t = self.s[1] << 17;
            self.s[2] ^= self.s[0];
            self.s[3] ^= self.s[1];
            self.s[1] ^= self.s[2];
            self.s[0] ^= self.s[3];
            self.s[2] ^= t;
            self.s[3] = self.s[3].rotate_left(45);
            result
        }
    }
}

#[cfg(test)]
mod tests {
    use super::rngs::SmallRng;
    use super::{Rng, SeedableRng};

    #[test]
    fn deterministic_and_uniformish() {
        let mut a = SmallRng::seed_from_u64(7);
        let mut b = SmallRng::seed_from_u64(7);
        for _ in 0..100 {
            assert_eq!(a.gen::<u64>(), b.gen::<u64>());
        }
        let mut c = SmallRng::seed_from_u64(1);
        let mean: f64 = (0..10_000).map(|_| c.gen::<f64>()).sum::<f64>() / 10_000.0;
        assert!((mean - 0.5).abs() < 0.02, "mean {mean}");
        for _ in 0..1000 {
            let v: usize = c.gen_range(3..10);
            assert!((3..10).contains(&v));
        }
    }
}
