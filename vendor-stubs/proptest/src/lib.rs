//! Offline stand-in for the subset of `proptest` this workspace uses.
//!
//! Provides the `proptest!` macro, integer/float range strategies, tuple and
//! `prop::collection::vec` strategies, `any`-style type-ascription
//! parameters, and `prop_assert*` macros. Cases are generated from a
//! deterministic xorshift stream (no shrinking — failures report the drawn
//! values instead). Only ever compiled by `scripts/offline-dev.sh`; real
//! builds use crates.io proptest.

/// Strategy: something that can produce a value from entropy.
pub trait Strategy {
    /// The produced value type.
    type Value;
    /// Draw one value.
    fn draw(&self, rng: &mut TestRng) -> Self::Value;
}

/// Deterministic generator used to drive strategies.
#[derive(Debug, Clone)]
pub struct TestRng(u64);

impl TestRng {
    /// Seeded construction; each test gets its own fixed stream.
    pub fn new(seed: u64) -> Self {
        Self(seed.wrapping_mul(0x9E37_79B9_7F4A_7C15) | 1)
    }

    /// Next 64 random bits (xorshift64*).
    pub fn next_u64(&mut self) -> u64 {
        let mut x = self.0;
        x ^= x >> 12;
        x ^= x << 25;
        x ^= x >> 27;
        self.0 = x;
        x.wrapping_mul(0x2545_F491_4F6C_DD1D)
    }

    /// Uniform in `[0, 1)`.
    pub fn next_f64(&mut self) -> f64 {
        (self.next_u64() >> 11) as f64 * (1.0 / (1u64 << 53) as f64)
    }

    /// Uniform in `[lo, hi)` for integer-like u64 spans.
    pub fn below(&mut self, span: u64) -> u64 {
        ((self.next_u64() as u128 * span as u128) >> 64) as u64
    }
}

macro_rules! impl_int_range_strategy {
    ($($t:ty),*) => {$(
        impl Strategy for core::ops::Range<$t> {
            type Value = $t;
            fn draw(&self, rng: &mut TestRng) -> $t {
                assert!(self.start < self.end, "empty strategy range");
                let span = (self.end as u128 - self.start as u128) as u64;
                self.start + rng.below(span) as $t
            }
        }
        impl Strategy for core::ops::RangeInclusive<$t> {
            type Value = $t;
            fn draw(&self, rng: &mut TestRng) -> $t {
                let span = (*self.end() as u128 - *self.start() as u128 + 1) as u64;
                self.start() + rng.below(span) as $t
            }
        }
    )*};
}

impl_int_range_strategy!(u8, u16, u32, u64, usize, i32, i64);

impl Strategy for core::ops::Range<f64> {
    type Value = f64;
    fn draw(&self, rng: &mut TestRng) -> f64 {
        self.start + rng.next_f64() * (self.end - self.start)
    }
}

macro_rules! impl_tuple_strategy {
    ($(($($name:ident / $idx:tt),+))*) => {$(
        impl<$($name: Strategy),+> Strategy for ($($name,)+) {
            type Value = ($($name::Value,)+);
            fn draw(&self, rng: &mut TestRng) -> Self::Value {
                ($(self.$idx.draw(rng),)+)
            }
        }
    )*};
}

impl_tuple_strategy! {
    (A / 0)
    (A / 0, B / 1)
    (A / 0, B / 1, C / 2)
    (A / 0, B / 1, C / 2, D / 3)
    (A / 0, B / 1, C / 2, D / 3, E / 4)
}

/// `any::<T>()`-style drawing for type-ascribed parameters (`x: bool`).
pub trait Arbitrary {
    /// Draw an arbitrary value.
    fn arbitrary(rng: &mut TestRng) -> Self;
}

impl Arbitrary for bool {
    fn arbitrary(rng: &mut TestRng) -> Self {
        rng.next_u64() & 1 == 1
    }
}

macro_rules! impl_arbitrary_int {
    ($($t:ty),*) => {$(
        impl Arbitrary for $t {
            fn arbitrary(rng: &mut TestRng) -> Self {
                rng.next_u64() as $t
            }
        }
    )*};
}

impl_arbitrary_int!(u8, u16, u32, u64, usize, i32, i64);

impl Arbitrary for f64 {
    fn arbitrary(rng: &mut TestRng) -> Self {
        rng.next_f64()
    }
}

/// Explicit strategy for a type's arbitrary values, as `any::<T>()`.
pub struct AnyStrategy<T>(core::marker::PhantomData<T>);

impl<T: Arbitrary> Strategy for AnyStrategy<T> {
    type Value = T;
    fn draw(&self, rng: &mut TestRng) -> T {
        T::arbitrary(rng)
    }
}

/// The `proptest::arbitrary::any` entry point.
pub fn any<T: Arbitrary>() -> AnyStrategy<T> {
    AnyStrategy(core::marker::PhantomData)
}

/// Strategy modules mirroring `proptest::prop`.
pub mod prop {
    /// Collection strategies.
    pub mod collection {
        use crate::{Strategy, TestRng};

        /// Strategy producing `Vec`s with lengths drawn from `len`.
        pub struct VecStrategy<S> {
            elem: S,
            lo: usize,
            hi: usize,
        }

        /// `prop::collection::vec(elem, len_range)`.
        pub fn vec<S: Strategy>(elem: S, len: core::ops::Range<usize>) -> VecStrategy<S> {
            VecStrategy {
                elem,
                lo: len.start,
                hi: len.end,
            }
        }

        impl<S: Strategy> Strategy for VecStrategy<S> {
            type Value = Vec<S::Value>;
            fn draw(&self, rng: &mut TestRng) -> Self::Value {
                let n = self.lo + rng.below((self.hi - self.lo).max(1) as u64) as usize;
                (0..n).map(|_| self.elem.draw(rng)).collect()
            }
        }
    }
}

/// Per-`proptest!` block configuration (subset of `test_runner::Config`).
#[derive(Debug, Clone)]
pub struct ProptestConfig {
    /// Number of cases each test runs.
    pub cases: u32,
}

impl ProptestConfig {
    /// Config running `cases` cases per test.
    pub fn with_cases(cases: u32) -> Self {
        Self { cases }
    }
}

impl Default for ProptestConfig {
    fn default() -> Self {
        Self { cases: 64 }
    }
}

/// `test_runner` module mirror so `ProptestConfig` resolves both ways.
pub mod test_runner {
    pub use crate::ProptestConfig as Config;
}

/// Everything the tests import.
pub mod prelude {
    pub use crate::{any, prop, Arbitrary, ProptestConfig, Strategy, TestRng};
    pub use crate::{prop_assert, prop_assert_eq, prop_assert_ne, prop_assume, proptest};
}

#[macro_export]
/// Assert inside a proptest body.
macro_rules! prop_assert {
    ($($args:tt)*) => { assert!($($args)*) };
}

#[macro_export]
/// Assert equality inside a proptest body.
macro_rules! prop_assert_eq {
    ($($args:tt)*) => { assert_eq!($($args)*) };
}

#[macro_export]
/// Assert inequality inside a proptest body.
macro_rules! prop_assert_ne {
    ($($args:tt)*) => { assert_ne!($($args)*) };
}

#[macro_export]
/// Skip the case when the assumption fails (stub: just returns).
macro_rules! prop_assume {
    ($cond:expr) => {
        if !$cond {
            return;
        }
    };
}

/// FNV-1a over a test name: a deterministic per-test stream seed (fn
/// pointers would vary with ASLR and break run-to-run reproducibility).
pub fn name_seed(name: &str) -> u64 {
    let mut h = 0xcbf2_9ce4_8422_2325u64;
    for b in name.bytes() {
        h = (h ^ b as u64).wrapping_mul(0x0000_0100_0000_01b3);
    }
    h
}

#[macro_export]
#[doc(hidden)]
/// Bind parameters from a comma-separated list mixing `x in strategy` and
/// `x: Type` forms (tt-munched; `expr`/`ty` fragments keep their required
/// follow sets because each is directly followed by `,` or the list end).
macro_rules! __proptest_bind {
    ($rng:ident $(,)?) => {};
    ($rng:ident, $name:ident in $strat:expr) => {
        let $name = $crate::Strategy::draw(&$strat, &mut $rng);
    };
    ($rng:ident, $name:ident in $strat:expr, $($rest:tt)*) => {
        let $name = $crate::Strategy::draw(&$strat, &mut $rng);
        $crate::__proptest_bind!($rng, $($rest)*);
    };
    ($rng:ident, $name:ident : $ty:ty) => {
        let $name: $ty = $crate::Arbitrary::arbitrary(&mut $rng);
    };
    ($rng:ident, $name:ident : $ty:ty, $($rest:tt)*) => {
        let $name: $ty = $crate::Arbitrary::arbitrary(&mut $rng);
        $crate::__proptest_bind!($rng, $($rest)*);
    };
}

#[macro_export]
/// The `proptest!` test-generation macro (stub: deterministic case loop,
/// no shrinking).
macro_rules! proptest {
    (#![proptest_config($cfg:expr)] $($rest:tt)*) => {
        $crate::proptest! { @config ($cfg) $($rest)* }
    };
    (@config ($cfg:expr)
        $(
            $(#[$meta:meta])*
            fn $name:ident($($params:tt)*) $body:block
        )*
    ) => {
        $(
            $(#[$meta])*
            fn $name() {
                let cases: u32 = ($cfg).cases;
                for case in 0..cases {
                    #[allow(unused_mut, unused_variables)]
                    let mut rng = $crate::TestRng::new(
                        $crate::name_seed(stringify!($name)).wrapping_add(case as u64 + 1),
                    );
                    $crate::__proptest_bind!(rng, $($params)*);
                    $body
                }
            }
        )*
    };
    ($($rest:tt)*) => {
        $crate::proptest! { @config ($crate::ProptestConfig::default()) $($rest)* }
    };
}

#[cfg(test)]
mod tests {
    use crate::prelude::*;

    proptest! {
        #[test]
        fn ranges_and_types(a in 2u32..9, b: bool, v in prop::collection::vec((0usize..4, 0u8..3), 1..5)) {
            prop_assert!((2..9).contains(&a));
            let _ = b;
            prop_assert!(!v.is_empty() && v.len() < 5);
            for (x, y) in v {
                prop_assert!(x < 4);
                prop_assert!(y < 3);
            }
        }
    }

    proptest! {
        #![proptest_config(ProptestConfig::with_cases(8))]
        #[test]
        fn with_config(x in 0.5f64..1.5) {
            prop_assert!((0.5..1.5).contains(&x));
        }
    }
}
