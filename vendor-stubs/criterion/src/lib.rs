//! Offline stand-in for the subset of `criterion` this workspace uses.
//!
//! Implements `Criterion`, benchmark groups, `iter`/`iter_batched`, and the
//! `criterion_group!`/`criterion_main!` macros with a simple
//! fixed-iteration timer that prints mean wall-clock per iteration. Good
//! enough to smoke-run benches and compare relative timings offline; real
//! builds use crates.io criterion.

use std::time::{Duration, Instant};

/// Prevent the optimizer from discarding a value (stable-Rust fallback).
pub fn black_box<T>(x: T) -> T {
    std::hint::black_box(x)
}

/// How `iter_batched` sizes its input batches (ignored by the stub).
#[derive(Debug, Clone, Copy)]
pub enum BatchSize {
    /// Small per-iteration inputs.
    SmallInput,
    /// Large per-iteration inputs.
    LargeInput,
    /// One input per batch.
    PerIteration,
}

/// Throughput annotation for a group (printed, not analyzed).
#[derive(Debug, Clone, Copy)]
pub enum Throughput {
    /// Elements processed per iteration.
    Elements(u64),
    /// Bytes processed per iteration.
    Bytes(u64),
}

/// Per-iteration timing driver handed to bench closures.
pub struct Bencher {
    iters: u64,
    elapsed: Duration,
}

impl Bencher {
    /// Time `routine` over the configured iteration count.
    pub fn iter<O, R: FnMut() -> O>(&mut self, mut routine: R) {
        let start = Instant::now();
        for _ in 0..self.iters {
            black_box(routine());
        }
        self.elapsed = start.elapsed();
    }

    /// Time `routine` with a fresh `setup` product per iteration,
    /// excluding setup from the measurement.
    pub fn iter_batched<I, O, S, R>(&mut self, mut setup: S, mut routine: R, _size: BatchSize)
    where
        S: FnMut() -> I,
        R: FnMut(I) -> O,
    {
        let mut total = Duration::ZERO;
        for _ in 0..self.iters {
            let input = setup();
            let start = Instant::now();
            black_box(routine(input));
            total += start.elapsed();
        }
        self.elapsed = total;
    }
}

/// Top-level benchmark driver (subset of `criterion::Criterion`).
pub struct Criterion {
    sample_size: usize,
}

impl Default for Criterion {
    fn default() -> Self {
        Self { sample_size: 10 }
    }
}

impl Criterion {
    /// Parse CLI args (stub: accepts and ignores them).
    pub fn configure_from_args(self) -> Self {
        self
    }

    /// Set the per-benchmark sample count.
    pub fn sample_size(mut self, n: usize) -> Self {
        self.sample_size = n;
        self
    }

    /// Open a named benchmark group.
    pub fn benchmark_group(&mut self, name: &str) -> BenchmarkGroup<'_> {
        eprintln!("group {name}");
        BenchmarkGroup {
            c: self,
            sample_size: None,
        }
    }

    /// Run one named benchmark outside a group.
    pub fn bench_function<N: Into<String>, F: FnMut(&mut Bencher)>(
        &mut self,
        name: N,
        f: F,
    ) -> &mut Self {
        run_bench(&name.into(), self.sample_size, f);
        self
    }
}

/// A named set of related benchmarks (subset of `BenchmarkGroup`).
pub struct BenchmarkGroup<'a> {
    c: &'a mut Criterion,
    sample_size: Option<usize>,
}

impl BenchmarkGroup<'_> {
    /// Set the sample count for this group.
    pub fn sample_size(&mut self, n: usize) -> &mut Self {
        self.sample_size = Some(n);
        self
    }

    /// Annotate throughput (printed only).
    pub fn throughput(&mut self, t: Throughput) -> &mut Self {
        eprintln!("  throughput: {t:?}");
        self
    }

    /// Run one benchmark in the group.
    pub fn bench_function<N: Into<String>, F: FnMut(&mut Bencher)>(
        &mut self,
        name: N,
        f: F,
    ) -> &mut Self {
        let n = self.sample_size.unwrap_or(self.c.sample_size);
        run_bench(&name.into(), n, f);
        self
    }

    /// Close the group.
    pub fn finish(self) {}
}

fn run_bench<F: FnMut(&mut Bencher)>(name: &str, samples: usize, mut f: F) {
    // One warm-up pass, then `samples` timed iterations in one batch.
    let mut b = Bencher {
        iters: 1,
        elapsed: Duration::ZERO,
    };
    f(&mut b);
    let mut b = Bencher {
        iters: samples.max(1) as u64,
        elapsed: Duration::ZERO,
    };
    f(&mut b);
    let per_iter = b.elapsed.as_secs_f64() / b.iters as f64;
    eprintln!("  {name}: {:.3} ms/iter ({} iters)", per_iter * 1e3, b.iters);
}

#[macro_export]
/// Collect bench functions into a runnable group.
macro_rules! criterion_group {
    ($group:ident, $($target:path),+ $(,)?) => {
        fn $group() {
            let mut c = $crate::Criterion::default().configure_from_args();
            $( $target(&mut c); )+
        }
    };
}

#[macro_export]
/// Entry point running the given groups.
macro_rules! criterion_main {
    ($($group:path),+ $(,)?) => {
        fn main() {
            $( $group(); )+
        }
    };
}
