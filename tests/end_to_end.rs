//! Cross-crate integration tests: the full stack (workload → network →
//! policy → metrics) at reduced scale.

use linkdvs::{run_point, sweep, ExperimentConfig, PolicyKind, SweepSummary, WorkloadKind};
use netsim::Topology;

fn small_cfg() -> ExperimentConfig {
    let mut cfg = ExperimentConfig::paper_baseline().with_run_lengths(30_000, 60_000);
    cfg.network.topology = Topology::mesh(4, 2).expect("valid");
    cfg.network.timing = dvslink::TransitionTiming::paper_aggressive();
    cfg
}

#[test]
fn dvs_saves_power_and_still_delivers() {
    let base = small_cfg().with_workload(WorkloadKind::UniformRandom);
    let no_dvs = run_point(&base.clone().with_policy(PolicyKind::NoDvs), 0.2);
    let dvs = run_point(
        &base.with_policy(PolicyKind::HistoryDvs(Default::default())),
        0.2,
    );
    assert!(no_dvs.packets_delivered > 1_000);
    assert!(dvs.packets_delivered > 1_000);
    // Non-DVS runs at the full budget, DVS well under it.
    assert!((no_dvs.normalized_power - 1.0).abs() < 1e-6);
    assert!(
        dvs.power_savings > 2.0,
        "expected >2x savings, got {:.2}x",
        dvs.power_savings
    );
    // Throughput must be preserved within a few percent at this light load.
    assert!(dvs.throughput > no_dvs.throughput * 0.9);
    // And DVS cannot be faster than the full-speed baseline.
    assert!(dvs.avg_latency_cycles.unwrap() >= no_dvs.avg_latency_cycles.unwrap());
}

#[test]
fn two_level_workload_drives_the_full_paper_system() {
    // The real 8x8 system, shortened: exercises task sessions, self-similar
    // sources, DVS transitions, and the measurement pipeline together.
    let cfg = ExperimentConfig::paper_baseline()
        .with_workload(WorkloadKind::paper_two_level_100())
        .with_policy(PolicyKind::HistoryDvs(Default::default()))
        .with_run_lengths(60_000, 60_000);
    let r = run_point(&cfg, 0.5);
    assert!(r.packets_delivered > 5_000);
    assert!(r.power_savings > 1.0);
    assert!(r.mean_level < 9.0, "some channel must have scaled down");
    assert!(r.avg_power_w > 0.0 && r.avg_power_w < 409.6);
}

#[test]
fn sweep_summary_finds_saturation_on_a_small_mesh() {
    let cfg = small_cfg().with_workload(WorkloadKind::UniformRandom);
    // A 4x4 mesh saturates well below 2.5 pkt/cycle with uniform traffic.
    let results = sweep(&cfg, &[0.1, 0.5, 1.0, 1.5, 2.0, 2.5, 3.0]);
    let summary = SweepSummary::from_results(&results).expect("first point delivers");
    assert!(summary.zero_load_latency > 20.0);
    assert!(
        summary.saturation_rate.is_some(),
        "expected saturation within the sweep: {results:?}"
    );
    assert!(summary.peak_throughput > 0.5);
}

#[test]
fn permutation_and_uniform_workloads_run_end_to_end() {
    for wl in [
        WorkloadKind::UniformRandom,
        WorkloadKind::Permutation(trafficgen::Permutation::BitComplement),
        WorkloadKind::Permutation(trafficgen::Permutation::Transpose),
    ] {
        let cfg = small_cfg().with_workload(wl.clone());
        let r = run_point(&cfg, 0.3);
        assert!(
            r.packets_delivered > 500,
            "{} delivered too little",
            wl.label()
        );
    }
}

#[test]
fn reactive_policy_transitions_more_than_history_policy() {
    // The ablation claim: without history, the policy chases every burst.
    // Observable consequence: more time spent at changed levels and more
    // transition energy. We check via the run's mean level distance from
    // the extremes plus a direct energy comparison.
    let base = small_cfg().with_workload(WorkloadKind::UniformRandom);
    let hist = run_point(
        &base
            .clone()
            .with_policy(PolicyKind::HistoryDvs(Default::default())),
        0.4,
    );
    let reactive = run_point(&base.with_policy(PolicyKind::Reactive), 0.4);
    // Both deliver and save power; the reactive one must not be *better* on
    // both axes (it pays for its jitter somewhere).
    assert!(hist.packets_delivered > 1_000);
    assert!(reactive.packets_delivered > 1_000);
    let hist_worse_latency =
        hist.avg_latency_cycles.unwrap() >= reactive.avg_latency_cycles.unwrap();
    let hist_worse_power = hist.avg_power_w >= reactive.avg_power_w;
    assert!(
        !(hist_worse_latency && hist_worse_power),
        "history policy should not lose on both axes: {hist:?} vs {reactive:?}"
    );
}

#[test]
fn dynamic_threshold_policy_runs() {
    let cfg = small_cfg()
        .with_workload(WorkloadKind::UniformRandom)
        .with_policy(PolicyKind::DynamicThresholds);
    let r = run_point(&cfg, 0.3);
    assert!(r.packets_delivered > 1_000);
    assert!(r.power_savings >= 1.0);
}

#[test]
fn results_are_deterministic_across_identical_runs() {
    let cfg = small_cfg()
        .with_workload(WorkloadKind::paper_two_level_50())
        .with_policy(PolicyKind::HistoryDvs(Default::default()));
    let a = run_point(&cfg, 0.4);
    let b = run_point(&cfg, 0.4);
    assert_eq!(a, b);
}
