//! System invariants checked across crates: flit conservation under DVS
//! transitions, energy-accounting consistency, and paper-constant sanity.

use dvslink::{RegulatorParams, TransitionTiming, VfTable};
use dvspolicy::{HistoryDvsConfig, HistoryDvsPolicy};
use netsim::{Network, NetworkConfig, Topology};
use trafficgen::{TaskModelConfig, TaskWorkload, Workload};

fn dvs_network(topology: Topology, timing: TransitionTiming) -> Network {
    let mut cfg = NetworkConfig::paper_8x8();
    cfg.topology = topology;
    cfg.timing = timing;
    Network::with_policies(cfg, |_, _| {
        Box::new(HistoryDvsPolicy::new(HistoryDvsConfig::paper()))
    })
    .expect("valid config")
}

#[test]
fn flits_are_conserved_through_dvs_transitions() {
    // Aggressive timing makes transitions (including link-disabled locks)
    // frequent within the test horizon — the hardest case for conservation.
    let mut net = dvs_network(
        Topology::mesh(4, 2).expect("valid"),
        TransitionTiming::paper_aggressive(),
    );
    let topo = net.topology().clone();
    let mut wl = TaskWorkload::new(
        TaskModelConfig {
            mean_duration: 20_000,
            mean_concurrent_tasks: 10.0,
            ..TaskModelConfig::paper_100_tasks()
        },
        &topo,
        0.4,
        3,
    );
    let mut pend = Vec::new();
    for t in 0..60_000u64 {
        wl.poll(t, &mut |s, d| pend.push((s, d)));
        for (s, d) in pend.drain(..) {
            net.inject(s, d);
        }
        net.step();
        if t % 1_000 == 0 {
            let injected = net.stats().flits_injected() as usize;
            let accounted = net.stats().flits_delivered() as usize
                + net.flits_in_network()
                + net.flits_in_source_queues();
            assert_eq!(injected, accounted, "flit leak at t={t}");
        }
    }
    // Drain: no further injection; everything in flight must eject.
    for _ in 0..400_000 {
        net.step();
        if net.flits_in_network() == 0 && net.flits_in_source_queues() == 0 {
            break;
        }
    }
    assert_eq!(net.flits_in_network(), 0, "flits stuck in network");
    assert_eq!(net.flits_in_source_queues(), 0, "flits stuck at sources");
    assert_eq!(
        net.stats().flits_injected(),
        net.stats().flits_delivered(),
        "drained network must have delivered everything"
    );
}

#[test]
fn torus_with_dvs_conserves_flits() {
    let mut net = dvs_network(
        Topology::torus(4, 2).expect("valid"),
        TransitionTiming::paper_aggressive(),
    );
    for i in 0..200u64 {
        net.inject((i % 16) as usize, ((i * 7 + 3) % 16) as usize);
    }
    for _ in 0..200_000 {
        net.step();
        if net.stats().packets_delivered() == 200 {
            break;
        }
    }
    assert_eq!(net.stats().packets_delivered(), 200);
}

#[test]
fn energy_equals_power_integral_for_static_network() {
    let mut cfg = NetworkConfig::paper_8x8();
    cfg.topology = Topology::mesh(4, 2).expect("valid");
    cfg.initial_level = 4;
    let mut net = Network::new(cfg).expect("valid");
    net.begin_measurement();
    net.run(50_000);
    // Static levels: energy must equal instantaneous power x time exactly.
    let expect = net.instantaneous_power_w() * 50_000.0 * 1e-9;
    assert!(
        (net.energy_j() - expect).abs() / expect < 1e-9,
        "energy {} vs integral {}",
        net.energy_j(),
        expect
    );
}

#[test]
fn average_power_is_bounded_by_level_extremes() {
    let mut net = dvs_network(
        Topology::mesh(4, 2).expect("valid"),
        TransitionTiming::paper_aggressive(),
    );
    for i in 0..500u64 {
        net.inject((i % 16) as usize, ((i * 11 + 1) % 16) as usize);
    }
    net.begin_measurement();
    net.run(100_000);
    let channels = net.channel_count() as f64;
    let min_w = VfTable::paper().min().power_w() * 8.0 * channels;
    let max_w = net.max_power_w();
    let avg = net.average_power_w();
    assert!(avg >= min_w * 0.999, "avg {avg} below floor {min_w}");
    // Transition overhead energy can push slightly above the ceiling only
    // via the Stratakos term; give it 1% headroom.
    assert!(avg <= max_w * 1.01, "avg {avg} above ceiling {max_w}");
}

#[test]
fn paper_constants_are_self_consistent() {
    // 64 routers x 4 ports x 8 links x 0.2 W = 409.6 W (paper §4.2). Our
    // 8x8 mesh instantiates 224 real channels (boundary ports have none),
    // so the simulator's own ceiling is 224 x 1.6 W.
    let net = Network::new(NetworkConfig::paper_8x8()).expect("valid");
    assert_eq!(net.channel_count(), 224);
    assert!((net.max_power_w() - 224.0 * 1.6).abs() < 1e-9);
    let full_budget: f64 = 64.0 * 4.0 * 8.0 * 0.2;
    assert!((full_budget - 409.6).abs() < 1e-12);
    let reg = RegulatorParams::paper();
    assert!((reg.transition_energy_j(0.9, 2.5) - 2.72e-6).abs() < 1e-12);
}
