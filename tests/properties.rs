//! Property-based tests (proptest) on the core data structures and
//! invariants, spanning all workspace crates.

use dvslink::{DvsChannel, RegulatorParams, TransitionTiming, VfTable};
use netsim::{Direction, Routing, Topology};
use proptest::prelude::*;
use rand::rngs::SmallRng;
use rand::SeedableRng;
use trafficgen::Pareto;

proptest! {
    /// Node-id/coordinate round trips hold on every mesh and torus.
    #[test]
    fn topology_coords_roundtrip(k in 2u32..9, n in 1u32..4, wrap: bool) {
        let topo = if wrap { Topology::torus(k, n) } else { Topology::mesh(k, n) }.unwrap();
        for node in topo.nodes() {
            let coords: Vec<u32> = (0..n).map(|d| topo.coord(node, d)).collect();
            prop_assert_eq!(topo.node_at(&coords), node);
            for c in coords {
                prop_assert!(c < k);
            }
        }
    }

    /// Dimension-order routes always reach the destination in exactly the
    /// minimal hop count, on meshes and tori alike.
    #[test]
    fn dor_routes_are_minimal(k in 2u32..9, wrap: bool, src_seed in 0usize..64, dst_seed in 0usize..64) {
        let topo = if wrap { Topology::torus(k, 2) } else { Topology::mesh(k, 2) }.unwrap();
        let src = src_seed % topo.num_nodes();
        let dst = dst_seed % topo.num_nodes();
        let mut at = src;
        let mut hops = 0;
        while at != dst {
            let p = Routing::dor_port(&topo, at, dst);
            let (next, _) = topo.downstream(at, p).expect("route stays on fabric");
            at = next;
            hops += 1;
            prop_assert!(hops <= 2 * k, "runaway route");
        }
        prop_assert_eq!(hops, topo.distance(src, dst));
    }

    /// Every productive port strictly reduces distance to the destination.
    #[test]
    fn productive_ports_reduce_distance(src in 0usize..64, dst in 0usize..64) {
        let topo = Topology::mesh(8, 2).unwrap();
        for p in Routing::productive_ports(&topo, src, dst) {
            let (next, _) = topo.downstream(src, p).expect("productive ports are wired");
            prop_assert_eq!(topo.distance(next, dst) + 1, topo.distance(src, dst));
        }
    }

    /// Wiring symmetry: following a port and coming back lands home.
    #[test]
    fn downstream_wiring_symmetry(k in 2u32..9, wrap: bool, node_seed in 0usize..128, port in 1usize..5) {
        let topo = if wrap { Topology::torus(k, 2) } else { Topology::mesh(k, 2) }.unwrap();
        let node = node_seed % topo.num_nodes();
        if let Some((next, in_port)) = topo.downstream(node, port) {
            let (back, back_in) = topo.downstream(next, in_port).expect("symmetric");
            prop_assert_eq!(back, node);
            prop_assert_eq!(back_in, port);
        }
    }

    /// Interpolated VF tables keep frequency/voltage/power monotone and hit
    /// their endpoint anchors for any sane parameters.
    #[test]
    fn vf_tables_are_monotone(
        n in 2usize..16,
        v_min in 0.5f64..1.5,
        dv in 0.1f64..2.0,
        p_min in 0.005f64..0.05,
        dp in 0.01f64..0.5,
    ) {
        let table = VfTable::interpolated(n, v_min, v_min + dv, p_min, p_min + dp).unwrap();
        prop_assert_eq!(table.len(), n);
        let levels: Vec<_> = table.iter().collect();
        for w in levels.windows(2) {
            prop_assert!(w[1].freq_x9() > w[0].freq_x9());
            prop_assert!(w[1].voltage_v() >= w[0].voltage_v());
            prop_assert!(w[1].power_w() >= w[0].power_w());
        }
        prop_assert!((table.min().power_w() - p_min).abs() < 1e-9);
        prop_assert!((table.max().power_w() - (p_min + dp)).abs() < 1e-9);
    }

    /// The channel state machine never loses track of its level under any
    /// sequence of step requests and time advances, never reports a level
    /// outside the table, and is non-operational only during locks.
    #[test]
    fn channel_state_machine_is_sound(ops in prop::collection::vec((0u8..3, 1u64..30_000), 1..60)) {
        let mut ch = DvsChannel::new(
            VfTable::paper(),
            TransitionTiming::paper_conservative(),
            RegulatorParams::paper(),
            5,
        );
        let mut now = 0u64;
        for (op, dt) in ops {
            match op {
                0 => { let _ = ch.request_step_up(now); }
                1 => { let _ = ch.request_step_down(now); }
                _ => {}
            }
            now += dt;
            ch.advance(now);
            prop_assert!(ch.level() < 10);
            if ch.is_stable() {
                prop_assert!(ch.is_operational());
                prop_assert_eq!(ch.target_level(), None);
                prop_assert_eq!(ch.busy_until(), None);
            } else {
                let t = ch.target_level().expect("transitioning channel has target");
                // Up transitions hold the old frequency (diff 1) until the
                // lock completes; down transitions reach the target
                // frequency before the voltage ramp finishes (diff 0).
                prop_assert!(ch.level().abs_diff(t) <= 1);
                prop_assert!(ch.busy_until().expect("busy") > now || !ch.is_stable());
            }
        }
        // Enough time settles any in-flight transition.
        now += 100_000;
        ch.advance(now);
        prop_assert!(ch.is_stable());
        // Energy is monotone and positive.
        prop_assert!(ch.energy_total_at(now) > 0.0);
        prop_assert!(ch.energy_total_at(now + 1) >= ch.energy_total_at(now));
    }

    /// Channel energy accounting: completed up/down round trips charge
    /// exactly two Stratakos transition overheads.
    #[test]
    fn channel_round_trip_energy(level in 1usize..9) {
        let table = VfTable::paper();
        let mut ch = DvsChannel::new(
            table.clone(),
            TransitionTiming::paper_conservative(),
            RegulatorParams::paper(),
            level,
        );
        ch.request_step_down(0).unwrap();
        ch.advance(200_000);
        ch.request_step_up(200_000).unwrap();
        ch.advance(400_000);
        prop_assert_eq!(ch.level(), level);
        let v1 = table.get(level - 1).unwrap().voltage_v();
        let v2 = table.get(level).unwrap().voltage_v();
        let expect = 2.0 * RegulatorParams::paper().transition_energy_j(v1, v2);
        prop_assert!((ch.meter().transition_j() - expect).abs() < 1e-15);
    }

    /// Pareto samples respect the location bound and the empirical CDF
    /// matches the analytic one at a checkpoint.
    #[test]
    fn pareto_samples_bounded(shape in 1.05f64..3.0, scale in 1.0f64..1e4, seed: u64) {
        let p = Pareto::new(shape, scale);
        let mut rng = SmallRng::seed_from_u64(seed);
        for _ in 0..200 {
            let x = p.sample(&mut rng);
            prop_assert!(x >= scale);
            prop_assert!(x.is_finite());
        }
    }

    /// EWMA predictions stay within the range of their inputs.
    #[test]
    fn ewma_stays_in_input_hull(weight in 1u32..8, inputs in prop::collection::vec(0.0f64..1.0, 1..50)) {
        let mut e = dvspolicy::Ewma::new(weight);
        for &x in &inputs {
            let p = e.update(x);
            prop_assert!((0.0..=1.0).contains(&p), "prediction {p} escaped [0,1]");
        }
    }
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(8))]

    /// Whatever the traffic pattern thrown at a small DVS network, flits
    /// are conserved and the network drains completely. (Expensive: few
    /// cases.)
    #[test]
    fn network_conserves_flits_under_random_traffic(
        pairs in prop::collection::vec((0usize..16, 0usize..16), 10..150),
        level in 0usize..10,
    ) {
        let mut cfg = netsim::NetworkConfig::paper_8x8();
        cfg.topology = Topology::mesh(4, 2).unwrap();
        cfg.initial_level = level;
        cfg.timing = TransitionTiming::paper_aggressive();
        let mut net = netsim::Network::with_policies(cfg, |_, _| {
            Box::new(dvspolicy::HistoryDvsPolicy::new(dvspolicy::HistoryDvsConfig::paper()))
        }).unwrap();
        for (s, d) in &pairs {
            net.inject(*s, *d);
        }
        let expected = pairs.len() as u64;
        for _ in 0..300_000 {
            net.step();
            if net.stats().packets_delivered() == expected {
                break;
            }
        }
        prop_assert_eq!(net.stats().packets_delivered(), expected);
        prop_assert_eq!(net.flits_in_network(), 0);
        prop_assert_eq!(net.stats().flits_injected(), net.stats().flits_delivered());
    }

    /// Parallel sweeps are bit-identical to serial ones at every worker
    /// count, whatever the config seed and rate grid: per-point seeds
    /// depend only on `(cfg.seed, rate, index)`, never on scheduling.
    #[test]
    fn sweep_par_matches_sweep_elementwise(
        seed: u64,
        rates in prop::collection::vec(0.05f64..1.5, 1..6),
    ) {
        let mut cfg = linkdvs::ExperimentConfig::paper_baseline()
            .with_run_lengths(1_000, 4_000)
            .with_policy(linkdvs::PolicyKind::HistoryDvs(Default::default()))
            .with_seed(seed);
        cfg.network.topology = Topology::mesh(4, 2).unwrap();
        cfg.workload = linkdvs::WorkloadKind::UniformRandom;
        let serial = linkdvs::sweep(&cfg, &rates);
        for jobs in [1usize, 2, 8] {
            let par = linkdvs::sweep_par(&cfg, &rates, jobs);
            prop_assert_eq!(&par, &serial, "jobs = {}", jobs);
        }
    }

    /// Adaptive routing also delivers everything (escape-VC deadlock
    /// freedom under random traffic).
    #[test]
    fn adaptive_routing_is_deadlock_free(
        pairs in prop::collection::vec((0usize..16, 0usize..16), 50..200),
    ) {
        let mut cfg = netsim::NetworkConfig::paper_8x8();
        cfg.topology = Topology::mesh(4, 2).unwrap();
        cfg.routing = Routing::MinimalAdaptive;
        let mut net = netsim::Network::new(cfg).unwrap();
        for (s, d) in &pairs {
            net.inject(*s, *d);
        }
        let expected = pairs.len() as u64;
        for _ in 0..300_000 {
            net.step();
            if net.stats().packets_delivered() == expected {
                break;
            }
        }
        prop_assert_eq!(net.stats().packets_delivered(), expected);
    }
}

/// One of the five evaluated policy configurations, by index.
fn attribution_policy(kind: usize) -> Box<dyn netsim::LinkPolicy> {
    match kind {
        0 => Box::new(netsim::StaticLevelPolicy::default()),
        1 => Box::new(dvspolicy::HistoryDvsPolicy::new(
            dvspolicy::HistoryDvsConfig::paper(),
        )),
        2 => Box::new(dvspolicy::ReactiveDvsPolicy::paper()),
        3 => Box::new(dvspolicy::DynamicThresholdPolicy::paper()),
        _ => Box::new(dvspolicy::TargetUtilizationPolicy::paper_comparable()),
    }
}

/// A BER scale making the paper noise model's top-level bit-error
/// probability per flit crossing equal `p_bit` (the paper-level BER is far
/// too small to exercise in a short run).
fn ber_scale_for(p_bit: f64) -> f64 {
    let table = VfTable::paper();
    let ber = dvslink::NoiseModel::paper().ber(table.get(table.top()).unwrap());
    p_bit / ber
}

/// A 4x4-mesh config under policy `kind`, with detectable fault rates when
/// `faults` is set.
fn attribution_cfg(seed: u64, faults: bool) -> netsim::NetworkConfig {
    let mut cfg = netsim::NetworkConfig::paper_8x8();
    cfg.topology = Topology::mesh(4, 2).unwrap();
    cfg.timing = TransitionTiming::paper_aggressive();
    if faults {
        cfg.faults = Some(netsim::FaultConfig::new(seed).with_ber_scale(ber_scale_for(1.5e-3)));
    }
    cfg
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(10))]

    /// The per-packet latency decomposition balances exactly: for every
    /// delivered packet, under every policy, with or without fault
    /// injection, the traced breakdown components sum to the measured
    /// latency, and the aggregate breakdown sums to the latency total.
    #[test]
    fn latency_components_sum_to_latency(
        kind in 0usize..5,
        seed: u64,
        faults: bool,
        pairs in prop::collection::vec((0usize..16, 0usize..16), 20..120),
    ) {
        let mask = netsim::EventMask::from_names("packet_attribution").unwrap();
        let mut net = netsim::Network::with_tracer(
            attribution_cfg(seed, faults),
            |_, _| attribution_policy(kind),
            netsim::EventLog::unbounded().with_mask(mask),
        ).unwrap();
        for (s, d) in &pairs {
            net.inject(*s, *d);
        }
        let expected = pairs.len() as u64;
        for _ in 0..300_000 {
            net.step();
            if net.stats().packets_delivered() == expected {
                break;
            }
        }
        // Fault injection may fail-stop a link and strand packets; attribute
        // whatever was delivered.
        let delivered = net.stats().packets_delivered();
        prop_assert!(faults || delivered == expected);
        prop_assert_eq!(
            u128::from(net.stats().latency_breakdown().total()),
            net.stats().latency().sum(),
            "aggregate breakdown must equal the latency sum"
        );
        let log = net.into_tracer();
        prop_assert_eq!(log.len() as u64, delivered);
        for e in log.events() {
            let netsim::Event::PacketAttribution { latency, breakdown, packet, .. } = e else {
                prop_assert!(false, "mask admits only attribution events");
                continue;
            };
            prop_assert_eq!(
                breakdown.total(),
                *latency,
                "packet {} breakdown {:?} must sum to its latency",
                packet,
                breakdown
            );
        }
    }

    /// The per-channel energy ledger balances exactly: for every channel,
    /// under every policy, with or without fault injection, the four cause
    /// buckets sum bit-for-bit to the channel's reported energy total.
    #[test]
    fn energy_ledger_sums_to_channel_energy(
        kind in 0usize..5,
        seed: u64,
        faults: bool,
        pairs in prop::collection::vec((0usize..16, 0usize..16), 20..120),
        run_cycles in 1_000u64..20_000,
    ) {
        let mut net = netsim::Network::with_policies(
            attribution_cfg(seed, faults),
            |_, _| attribution_policy(kind),
        ).unwrap();
        for (s, d) in &pairs {
            net.inject(*s, *d);
        }
        net.run(run_cycles);
        let snap = netsim::NetworkSnapshot::capture(&net);
        for c in snap.channels() {
            prop_assert_eq!(
                c.ledger.total_j().to_bits(),
                c.energy_j.to_bits(),
                "channel ({}, {}) ledger {:?} must split {} J exactly",
                c.node, c.port, c.ledger, c.energy_j
            );
        }
        prop_assert!(snap.energy_ledger_totals().idle_j > 0.0);
    }
}

#[test]
fn direction_opposite_is_involution() {
    assert_eq!(Direction::Pos.opposite().opposite(), Direction::Pos);
    assert_eq!(Direction::Neg.opposite(), Direction::Pos);
}
