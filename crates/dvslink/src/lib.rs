//! Dynamic-voltage-scaled (DVS) link model.
//!
//! This crate models the DVS links described in *Dynamic Voltage Scaling with
//! Links for Power Optimization of Interconnection Networks* (Shang, Peh, Jha
//! — HPCA 2003), themselves an extension of the Wei/Kim–Horowitz
//! variable-frequency links. A link (or a *channel* of several serial links
//! sharing one adaptive power-supply regulator) supports a fixed set of
//! discrete frequency/voltage levels and transitions between *adjacent*
//! levels under the control of an architectural policy.
//!
//! The model captures the four characteristics the paper identifies as
//! critical to architectural DVS policies:
//!
//! 1. **Transition time** — voltage ramps take microseconds (Buck-converter
//!    charge/discharge of the off-chip filter capacitor); frequency locks
//!    take on the order of 100 link-clock cycles.
//! 2. **Transition energy** — charged per voltage ramp using Stratakos's
//!    first-order estimate `(1 − η) · C · |V₂² − V₁²|`.
//! 3. **Transition status** — the link *functions* during voltage ramps but
//!    is *disabled* during frequency locks (the receiver is re-acquiring the
//!    input clock).
//! 4. **Transition step** — only a fixed number of discrete levels exist and
//!    transitions move one level at a time.
//!
//! The ordering of phases follows the paper: when speeding up, voltage rises
//! first (link still running at the old, lower frequency), then the frequency
//! locks; when slowing down, the frequency drops first, then the voltage
//! ramps down (link running at the new, lower frequency).
//!
//! # Example
//!
//! ```
//! use dvslink::{DvsChannel, RegulatorParams, TransitionTiming, VfTable};
//!
//! let table = VfTable::paper();
//! let mut ch = DvsChannel::new(
//!     table,
//!     TransitionTiming::paper_conservative(),
//!     RegulatorParams::paper(),
//!     9, // start at the fastest level
//! );
//! assert!(ch.is_operational());
//! ch.request_step_down(0).expect("fastest level can step down");
//! // The frequency lock disables the channel for a while...
//! assert!(!ch.is_operational());
//! while !ch.is_stable() {
//!     ch.advance(ch.busy_until().unwrap());
//! }
//! assert_eq!(ch.level(), 8);
//! ```

#![forbid(unsafe_code)]
#![warn(missing_docs)]

mod channel;
mod energy;
mod error;
mod level;
mod noise;
mod router_power;
mod timing;

pub use channel::{ChannelPhase, DvsChannel, TransitionStats};
pub use energy::{EnergyLedger, EnergyMeter, RegulatorParams};
pub use error::{LevelError, TransitionError};
pub use level::{VfLevel, VfTable, VfTableBuilder, PAPER_LEVELS};
pub use noise::NoiseModel;
pub use router_power::{RouterPowerBudget, RouterPowerComponent};
pub use timing::TransitionTiming;

/// Simulation time in router-clock cycles.
///
/// The paper's routers run at 1 GHz, so one cycle is one nanosecond; all
/// wall-clock figures in this crate (e.g. the 10 µs voltage ramp) are
/// converted at that rate.
pub type Cycles = u64;

/// Router-clock frequency assumed for cycle↔time conversions, in MHz.
pub const ROUTER_CLOCK_MHZ: u32 = 1000;
