//! Link noise and bit-error-rate model (paper §2).
//!
//! DVS links trade noise margin for power: lowering the supply voltage
//! magnifies the sensitivity of the link circuitry to supply noise,
//! crosstalk, and jitter, while lowering the frequency *improves*
//! reliability by shrinking the ratio of timing uncertainty to bit time.
//! The paper assumes (based on the Kim–Horowitz link) that the whole
//! 0.9–2.5 V / 125 MHz–1 GHz operating range stays above the noise margin
//! at a 10⁻¹⁵ bit error rate; this module makes that assumption checkable
//! for *custom* tables instead of silently trusting it.
//!
//! The model is the standard first-order one for binary signaling: a bit
//! error occurs when Gaussian amplitude noise exceeds half the received
//! swing within the available timing window, so
//! `BER = ½·erfc(Q/√2)` with `Q = margin / σ_noise`, where the margin
//! combines the voltage headroom above the minimum swing and the timing
//! slack left after jitter.

use crate::{VfLevel, VfTable};

/// Complementary error function.
///
/// Two branches, both accurate in *relative* terms (so the 10⁻¹⁵-scale
/// BERs link designers quote are resolved, not just absolutely small):
/// for `x < 3` the Maclaurin series of `erf` summed to machine precision
/// (cancellation in `1 − erf(x)` costs at most ~1 × 10⁻⁹ relative at the
/// branch point, where `erfc(3) ≈ 2.2 × 10⁻⁵`); for `x ≥ 3` the Laplace
/// continued fraction `erfc(x) = exp(−x²)/√π · 1/(x + (1/2)/(x + 1/(x +
/// (3/2)/(x + …))))` evaluated by backward recurrence, which converges to
/// full precision there. The branches agree to better than 1e-7 relative
/// at `x = 3` (pinned by a unit test below).
fn erfc(x: f64) -> f64 {
    if x < 0.0 {
        return 2.0 - erfc(-x);
    }
    if x >= 3.0 {
        // Backward recurrence on the continued-fraction coefficients
        // a_k = k/2; 64 levels is well past convergence for x ≥ 3.
        let mut tail = 0.0;
        for k in (1..=64).rev() {
            tail = (k as f64 * 0.5) / (x + tail);
        }
        return (-x * x).exp() / std::f64::consts::PI.sqrt() / (x + tail);
    }
    // erf(x) = 2/√π · Σ_{n≥0} (−1)ⁿ x^{2n+1} / (n!·(2n+1)); the running
    // coefficient c_n = (−1)ⁿ x^{2n+1}/n! obeys c_{n+1} = −c_n·x²/(n+1).
    let x2 = x * x;
    let mut c = x;
    let mut sum = x;
    let mut n = 0.0;
    loop {
        n += 1.0;
        c *= -x2 / n;
        let term = c / (2.0 * n + 1.0);
        sum += term;
        if term.abs() < 1e-18 {
            break;
        }
    }
    1.0 - sum * std::f64::consts::FRAC_2_SQRT_PI
}

/// First-order noise model of a DVS link.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct NoiseModel {
    /// RMS amplitude noise referred to the receiver input, in volts
    /// (supply noise + crosstalk + offsets).
    pub sigma_v: f64,
    /// RMS timing uncertainty (jitter), in nanoseconds.
    pub jitter_ns: f64,
    /// Minimum voltage swing the receiver needs to resolve a bit, in volts.
    pub min_swing_v: f64,
}

impl NoiseModel {
    /// Parameters consistent with the paper's reliability claim: a
    /// 0.25 µm-era serial link resolving 10⁻¹⁵ BER across the whole
    /// 0.9–2.5 V, 125 MHz–1 GHz range.
    pub fn paper() -> Self {
        Self {
            sigma_v: 0.04,
            jitter_ns: 0.08,
            min_swing_v: 0.2,
        }
    }

    /// The noise quality factor `Q` at an operating point: voltage margin
    /// derated by the fraction of the bit time lost to jitter.
    ///
    /// Returns 0 when the level has no margin at all (swing at or below the
    /// receiver minimum, or jitter consuming the whole bit time).
    pub fn q_factor(&self, level: &VfLevel) -> f64 {
        let swing = level.voltage_v();
        let margin_v = (swing - self.min_swing_v) / 2.0;
        if margin_v <= 0.0 {
            return 0.0;
        }
        let bit_time = level.period_ns();
        let timing_derate = 1.0 - (self.jitter_ns / bit_time).min(1.0);
        if timing_derate <= 0.0 {
            return 0.0;
        }
        margin_v * timing_derate / self.sigma_v
    }

    /// Estimated bit error rate at an operating point: `½·erfc(Q/√2)`.
    pub fn ber(&self, level: &VfLevel) -> f64 {
        0.5 * erfc(self.q_factor(level) / std::f64::consts::SQRT_2)
    }

    /// Whether every level of `table` achieves at least `target_ber`
    /// (e.g. `1e-15`). DVS policies must not command levels that cannot
    /// signal reliably.
    pub fn table_meets(&self, table: &VfTable, target_ber: f64) -> bool {
        table.iter().all(|l| self.ber(l) <= target_ber)
    }

    /// The worst (highest) BER over a table and the level index achieving
    /// it. Useful for reporting which end of a custom table is marginal.
    pub fn worst_ber(&self, table: &VfTable) -> (usize, f64) {
        table
            .iter()
            .enumerate()
            .map(|(i, l)| (i, self.ber(l)))
            .max_by(|a, b| a.1.partial_cmp(&b.1).expect("BERs are finite"))
            .expect("tables are non-empty")
    }
}

impl Default for NoiseModel {
    fn default() -> Self {
        Self::paper()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn erfc_matches_reference_points() {
        assert!((erfc(0.0) - 1.0).abs() < 1e-6);
        assert!((erfc(1.0) - 0.157299).abs() < 1e-5);
        assert!((erfc(2.0) - 0.004678).abs() < 1e-5);
        assert!((erfc(-1.0) - 1.842701).abs() < 1e-5);
        // Symmetric: erfc(-x) = 2 - erfc(x).
        assert!((erfc(-0.7) + erfc(0.7) - 2.0).abs() < 1e-9);
        // Tighter relative checks against high-precision references.
        assert!((erfc(1.0) / 0.15729920705028513 - 1.0).abs() < 1e-12);
        assert!((erfc(2.0) / 4.677734981047266e-3 - 1.0).abs() < 1e-12);
        assert!((erfc(3.0) / 2.209049699858544e-5 - 1.0).abs() < 1e-12);
        assert!((erfc(5.0) / 1.5374597944280351e-12 - 1.0).abs() < 1e-12);
    }

    #[test]
    fn erfc_is_continuous_at_the_branch_point() {
        // The series branch (x < 3) and the continued-fraction branch
        // (x ≥ 3) must agree at the x = 3.0 seam: evaluate on the two
        // sides of the boundary, one ulp apart, and require the branch
        // disagreement to be ≤ 1e-7 relative (the true change of erfc
        // over one ulp is ~1e-16 relative, far below the tolerance).
        let below = f64::from_bits(3.0f64.to_bits() - 1);
        let at = erfc(3.0);
        let rel = (erfc(below) - at).abs() / at;
        assert!(rel <= 1e-7, "branch mismatch at x = 3: {rel:.3e} relative");
    }

    #[test]
    fn paper_table_meets_the_papers_ber_claim() {
        // The paper claims 1e-15 BER over the whole range; our default
        // noise parameters must be consistent with that claim.
        let m = NoiseModel::paper();
        assert!(
            m.table_meets(&VfTable::paper(), 1e-15),
            "worst BER {:?}",
            m.worst_ber(&VfTable::paper())
        );
    }

    #[test]
    fn lower_voltage_is_less_reliable_at_fixed_frequency() {
        let m = NoiseModel::paper();
        let high = VfTable::level(9000, 2.5, 0.2);
        let low = VfTable::level(9000, 1.0, 0.05);
        assert!(m.ber(&low) > m.ber(&high));
        assert!(m.q_factor(&low) < m.q_factor(&high));
    }

    #[test]
    fn lower_frequency_is_more_reliable_at_fixed_voltage() {
        // The paper's point: frequency reduction shrinks the timing
        // uncertainty relative to bit time, improving reliability.
        let m = NoiseModel::paper();
        let fast = VfTable::level(9000, 0.9, 0.02); // 1 ns bit time
        let slow = VfTable::level(1125, 0.9, 0.02); // 8 ns bit time
        assert!(m.ber(&slow) < m.ber(&fast));
    }

    #[test]
    fn hopeless_operating_points_saturate_to_coin_flip() {
        let m = NoiseModel::paper();
        // Swing below the receiver minimum: no eye at all.
        let dead = VfTable::level(9000, 0.2, 0.01);
        assert_eq!(m.q_factor(&dead), 0.0);
        assert!((m.ber(&dead) - 0.5).abs() < 1e-6);
        // Jitter eating the whole bit time.
        let m2 = NoiseModel {
            jitter_ns: 2.0,
            ..NoiseModel::paper()
        };
        let fast = VfTable::level(9000, 2.5, 0.2);
        assert_eq!(m2.q_factor(&fast), 0.0);
    }

    #[test]
    fn marginal_tables_are_rejected() {
        let m = NoiseModel {
            sigma_v: 0.3, // very noisy environment
            ..NoiseModel::paper()
        };
        assert!(!m.table_meets(&VfTable::paper(), 1e-15));
        let (idx, worst) = m.worst_ber(&VfTable::paper());
        assert_eq!(idx, 0, "the lowest-voltage level is the marginal one");
        assert!(worst > 1e-15);
    }
}
