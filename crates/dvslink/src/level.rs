use crate::{LevelError, NoiseModel};

/// Number of discrete voltage/frequency levels in the paper's link model.
pub const PAPER_LEVELS: usize = 10;

/// Exact-rational frequency representation: frequencies are stored scaled by
/// 9 so that the paper's linear 125→1000 MHz spacing over ten levels stays in
/// integer arithmetic (`125 + i·875/9` MHz ⇒ `1125 + i·875` in ×9 units).
const FREQ_X9_MIN: u32 = 9 * 125;
const FREQ_X9_SPAN: u32 = 9 * (1000 - 125);

/// One operating point of a DVS link: a frequency, the minimum supply voltage
/// at which the link circuitry functions at that frequency, and the link
/// power drawn when running there.
///
/// Construct these through [`VfTable`]; the table enforces monotonicity.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct VfLevel {
    freq_x9_mhz: u32,
    voltage_v: f64,
    power_w: f64,
}

impl VfLevel {
    /// Link frequency in MHz.
    pub fn freq_mhz(&self) -> f64 {
        f64::from(self.freq_x9_mhz) / 9.0
    }

    /// Link frequency scaled by 9, in MHz units.
    ///
    /// This exact integer form is what cycle-accurate simulators should use
    /// for serialization-rate accumulators: a link at this level delivers one
    /// flit per `9000 / freq_x9()` router cycles (router clock = 1 GHz)
    /// without floating-point drift.
    pub fn freq_x9(&self) -> u32 {
        self.freq_x9_mhz
    }

    /// Link clock period in nanoseconds.
    pub fn period_ns(&self) -> f64 {
        9000.0 / f64::from(self.freq_x9_mhz)
    }

    /// Minimum supply voltage for this frequency, in volts.
    pub fn voltage_v(&self) -> f64 {
        self.voltage_v
    }

    /// Power drawn by one serial link operating at this level, in watts.
    pub fn power_w(&self) -> f64 {
        self.power_w
    }
}

/// An ordered table of [`VfLevel`] operating points, slowest first.
///
/// Level `0` is the slowest/lowest-voltage point and `len() - 1` the fastest.
/// (The paper's Algorithm 1 indexes its tables the other way around — its
/// `CurLevel + 1` means *slower* — but an ascending order keeps `step_up`
/// meaning "faster", which is less error-prone for callers.)
///
/// # Example
///
/// ```
/// use dvslink::VfTable;
///
/// let t = VfTable::paper();
/// assert_eq!(t.len(), 10);
/// assert!((t.min().freq_mhz() - 125.0).abs() < 1e-9);
/// assert!((t.max().power_w() - 0.2).abs() < 1e-12);
/// ```
#[derive(Debug, Clone, PartialEq)]
pub struct VfTable {
    levels: Vec<VfLevel>,
}

impl VfTable {
    /// The ten-level table used throughout the paper's evaluation.
    ///
    /// Frequency is linear from 125 MHz to 1 GHz and voltage linear from
    /// 0.9 V to 2.5 V (the paper fixes only the endpoints and the level
    /// count). Power follows an affine dynamic fit `P = α·V²·f + β` anchored
    /// at the paper's endpoints (23.6 mW and 200 mW per link); the affine
    /// static term models the bias currents visible in the Kim–Horowitz
    /// measurements, which a pure `V²f` law cannot reproduce.
    pub fn paper() -> Self {
        Self::interpolated(PAPER_LEVELS, 0.9, 2.5, 0.0236, 0.2)
            .expect("paper table parameters are valid")
    }

    /// Build a table of `n` levels with linear frequency (125 MHz → 1 GHz)
    /// and voltage (`v_min` → `v_max`) spacing and an affine `V²f` power fit
    /// anchored at `p_min_w` and `p_max_w`.
    ///
    /// # Errors
    ///
    /// Returns [`LevelError`] if `n == 0`, if any parameter is non-finite or
    /// non-positive, or if the resulting table is non-monotonic (e.g.
    /// `v_min > v_max`).
    pub fn interpolated(
        n: usize,
        v_min: f64,
        v_max: f64,
        p_min_w: f64,
        p_max_w: f64,
    ) -> Result<Self, LevelError> {
        if n == 0 {
            return Err(LevelError::Empty);
        }
        let steps = (n - 1).max(1) as u32;
        let f_min_ghz = f64::from(FREQ_X9_MIN) / 9000.0;
        let f_max_ghz = 1.0;
        let x_min = v_min * v_min * f_min_ghz;
        let x_max = v_max * v_max * f_max_ghz;
        let (alpha, beta) = if n == 1 || (x_max - x_min).abs() < f64::EPSILON {
            (0.0, p_max_w)
        } else {
            let alpha = (p_max_w - p_min_w) / (x_max - x_min);
            (alpha, p_min_w - alpha * x_min)
        };
        let levels = (0..n)
            .map(|i| {
                let i32u = i as u32;
                let freq_x9_mhz = if n == 1 {
                    FREQ_X9_MIN + FREQ_X9_SPAN
                } else {
                    FREQ_X9_MIN + FREQ_X9_SPAN * i32u / steps
                };
                let t = if n == 1 { 1.0 } else { i as f64 / steps as f64 };
                let voltage_v = v_min + (v_max - v_min) * t;
                let f_ghz = f64::from(freq_x9_mhz) / 9000.0;
                let power_w = alpha * voltage_v * voltage_v * f_ghz + beta;
                VfLevel {
                    freq_x9_mhz,
                    voltage_v,
                    power_w,
                }
            })
            .collect();
        Self::from_levels(levels)
    }

    /// Build a table from explicit levels, validating ordering invariants.
    ///
    /// # Errors
    ///
    /// Returns [`LevelError`] if the table is empty, contains non-finite or
    /// non-positive voltages/powers, or is not ordered slowest-first with
    /// strictly increasing frequency and non-decreasing voltage and power.
    pub fn from_levels(levels: Vec<VfLevel>) -> Result<Self, LevelError> {
        if levels.is_empty() {
            return Err(LevelError::Empty);
        }
        for (i, l) in levels.iter().enumerate() {
            let sane = l.voltage_v.is_finite()
                && l.voltage_v > 0.0
                && l.power_w.is_finite()
                && l.power_w > 0.0;
            if !sane || l.freq_x9_mhz == 0 {
                return Err(LevelError::InvalidValue(i));
            }
            if i > 0 {
                let prev = &levels[i - 1];
                if l.freq_x9_mhz <= prev.freq_x9_mhz {
                    return Err(LevelError::NonMonotonicFrequency(i));
                }
                if l.voltage_v < prev.voltage_v {
                    return Err(LevelError::NonMonotonicVoltage(i));
                }
                if l.power_w < prev.power_w {
                    return Err(LevelError::NonMonotonicPower(i));
                }
            }
        }
        Ok(Self { levels })
    }

    /// Build a single level directly (useful for custom tables).
    ///
    /// `freq_x9_mhz` is the frequency scaled by 9 (see [`VfLevel::freq_x9`]).
    pub fn level(freq_x9_mhz: u32, voltage_v: f64, power_w: f64) -> VfLevel {
        VfLevel {
            freq_x9_mhz,
            voltage_v,
            power_w,
        }
    }

    /// Number of levels.
    pub fn len(&self) -> usize {
        self.levels.len()
    }

    /// Whether the table has no levels (never true for a constructed table).
    pub fn is_empty(&self) -> bool {
        self.levels.is_empty()
    }

    /// The level at `index`.
    ///
    /// # Errors
    ///
    /// Returns [`LevelError::OutOfRange`] if `index >= len()`.
    pub fn get(&self, index: usize) -> Result<&VfLevel, LevelError> {
        self.levels.get(index).ok_or(LevelError::OutOfRange {
            index,
            len: self.levels.len(),
        })
    }

    /// The slowest level.
    pub fn min(&self) -> &VfLevel {
        &self.levels[0]
    }

    /// The fastest level.
    pub fn max(&self) -> &VfLevel {
        &self.levels[self.levels.len() - 1]
    }

    /// Index of the fastest level (`len() - 1`).
    pub fn top(&self) -> usize {
        self.levels.len() - 1
    }

    /// Iterate over levels, slowest first.
    pub fn iter(&self) -> std::slice::Iter<'_, VfLevel> {
        self.levels.iter()
    }

    /// Start building a custom table level by level, optionally with a
    /// reliability floor (see [`VfTableBuilder::require_ber`]).
    pub fn builder() -> VfTableBuilder {
        VfTableBuilder {
            levels: Vec::new(),
            ber_floor: None,
        }
    }
}

/// Incremental [`VfTable`] constructor.
///
/// Beyond the ordering invariants [`VfTable::from_levels`] always enforces,
/// the builder can validate the table against a noise model at build time —
/// a custom table whose low end signals worse than the required BER is
/// rejected instead of silently trusted:
///
/// ```
/// use dvslink::{LevelError, NoiseModel, VfTable};
///
/// // A level at 0.35 V has almost no margin above the 0.2 V receiver
/// // minimum — hopeless at 1e-15, fine without the floor.
/// let marginal = VfTable::builder()
///     .push(1125, 0.35, 0.01)
///     .push(9000, 2.5, 0.2);
/// assert!(marginal.clone().build().is_ok());
/// assert_eq!(
///     marginal.require_ber(NoiseModel::paper(), 1e-15).build(),
///     Err(LevelError::BerFloorViolated(0)),
/// );
/// ```
#[derive(Debug, Clone)]
pub struct VfTableBuilder {
    levels: Vec<VfLevel>,
    ber_floor: Option<(NoiseModel, f64)>,
}

impl VfTableBuilder {
    /// Append a level (slowest first). `freq_x9_mhz` is the frequency
    /// scaled by 9, as in [`VfTable::level`].
    #[must_use]
    pub fn push(mut self, freq_x9_mhz: u32, voltage_v: f64, power_w: f64) -> Self {
        self.levels.push(VfLevel {
            freq_x9_mhz,
            voltage_v,
            power_w,
        });
        self
    }

    /// Append pre-built levels (slowest first).
    #[must_use]
    pub fn levels(mut self, levels: impl IntoIterator<Item = VfLevel>) -> Self {
        self.levels.extend(levels);
        self
    }

    /// Require every level to signal at or below `target_ber` under
    /// `noise`; [`build`](Self::build) fails with
    /// [`LevelError::BerFloorViolated`] otherwise.
    #[must_use]
    pub fn require_ber(mut self, noise: NoiseModel, target_ber: f64) -> Self {
        self.ber_floor = Some((noise, target_ber));
        self
    }

    /// Validate and build the table.
    ///
    /// # Errors
    ///
    /// Returns the same [`LevelError`]s as [`VfTable::from_levels`], plus
    /// [`LevelError::BerFloorViolated`] with the offending (lowest
    /// violating) level index when a [`require_ber`](Self::require_ber)
    /// floor is not met.
    pub fn build(self) -> Result<VfTable, LevelError> {
        let table = VfTable::from_levels(self.levels)?;
        if let Some((noise, target)) = self.ber_floor {
            for (i, level) in table.iter().enumerate() {
                if noise.ber(level) > target {
                    return Err(LevelError::BerFloorViolated(i));
                }
            }
        }
        Ok(table)
    }
}

impl<'a> IntoIterator for &'a VfTable {
    type Item = &'a VfLevel;
    type IntoIter = std::slice::Iter<'a, VfLevel>;

    fn into_iter(self) -> Self::IntoIter {
        self.levels.iter()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn paper_table_endpoints_match_paper() {
        let t = VfTable::paper();
        assert_eq!(t.len(), 10);
        assert!((t.min().freq_mhz() - 125.0).abs() < 1e-9);
        assert!((t.max().freq_mhz() - 1000.0).abs() < 1e-9);
        assert!((t.min().voltage_v() - 0.9).abs() < 1e-12);
        assert!((t.max().voltage_v() - 2.5).abs() < 1e-12);
        assert!((t.min().power_w() - 0.0236).abs() < 1e-9);
        assert!((t.max().power_w() - 0.2).abs() < 1e-9);
    }

    #[test]
    fn paper_table_is_monotone() {
        let t = VfTable::paper();
        for w in t.iter().collect::<Vec<_>>().windows(2) {
            assert!(w[1].freq_x9() > w[0].freq_x9());
            assert!(w[1].voltage_v() >= w[0].voltage_v());
            assert!(w[1].power_w() >= w[0].power_w());
        }
    }

    #[test]
    fn freq_x9_is_exact_linear_spacing() {
        let t = VfTable::paper();
        for (i, l) in t.iter().enumerate() {
            assert_eq!(l.freq_x9(), 1125 + 875 * i as u32);
        }
    }

    #[test]
    fn period_at_extremes() {
        let t = VfTable::paper();
        assert!((t.max().period_ns() - 1.0).abs() < 1e-12);
        assert!((t.min().period_ns() - 8.0).abs() < 1e-12);
    }

    #[test]
    fn empty_table_rejected() {
        assert_eq!(VfTable::from_levels(vec![]), Err(LevelError::Empty));
        assert!(matches!(
            VfTable::interpolated(0, 0.9, 2.5, 0.02, 0.2),
            Err(LevelError::Empty)
        ));
    }

    #[test]
    fn non_monotonic_rejected() {
        let a = VfTable::level(2000, 1.0, 0.05);
        let b = VfTable::level(1000, 1.5, 0.10);
        assert_eq!(
            VfTable::from_levels(vec![a, b]),
            Err(LevelError::NonMonotonicFrequency(1))
        );
        let c = VfTable::level(3000, 0.5, 0.20);
        assert_eq!(
            VfTable::from_levels(vec![a, c]),
            Err(LevelError::NonMonotonicVoltage(1))
        );
        let d = VfTable::level(3000, 1.5, 0.01);
        assert_eq!(
            VfTable::from_levels(vec![a, d]),
            Err(LevelError::NonMonotonicPower(1))
        );
    }

    #[test]
    fn invalid_values_rejected() {
        let bad_v = VfTable::level(1000, -1.0, 0.1);
        assert_eq!(
            VfTable::from_levels(vec![bad_v]),
            Err(LevelError::InvalidValue(0))
        );
        let bad_p = VfTable::level(1000, 1.0, f64::NAN);
        assert_eq!(
            VfTable::from_levels(vec![bad_p]),
            Err(LevelError::InvalidValue(0))
        );
        let bad_f = VfTable::level(0, 1.0, 0.1);
        assert_eq!(
            VfTable::from_levels(vec![bad_f]),
            Err(LevelError::InvalidValue(0))
        );
    }

    #[test]
    fn get_out_of_range() {
        let t = VfTable::paper();
        assert!(t.get(9).is_ok());
        assert_eq!(
            t.get(10),
            Err(LevelError::OutOfRange { index: 10, len: 10 })
        );
    }

    #[test]
    fn power_fit_is_affine_in_v2f() {
        // Interior levels must lie exactly on the alpha*V^2*f + beta line.
        let t = VfTable::paper();
        let x = |l: &VfLevel| l.voltage_v() * l.voltage_v() * l.freq_mhz() / 1000.0;
        let (x0, p0) = (x(t.min()), t.min().power_w());
        let (x9, p9) = (x(t.max()), t.max().power_w());
        let alpha = (p9 - p0) / (x9 - x0);
        let beta = p0 - alpha * x0;
        for l in t.iter() {
            let expect = alpha * x(l) + beta;
            assert!((l.power_w() - expect).abs() < 1e-12);
        }
    }

    #[test]
    fn single_level_table() {
        let t = VfTable::interpolated(1, 2.5, 2.5, 0.2, 0.2).unwrap();
        assert_eq!(t.len(), 1);
        assert_eq!(t.top(), 0);
        assert!((t.min().freq_mhz() - 1000.0).abs() < 1e-9);
    }

    #[test]
    fn paper_power_range_ratio_matches_paper() {
        // The paper quotes ~8.5X between the slowest and fastest level.
        let t = VfTable::paper();
        let ratio = t.max().power_w() / t.min().power_w();
        assert!((ratio - 200.0 / 23.6).abs() < 1e-9);
    }

    #[test]
    fn builder_validates_ordering_and_ber_floor() {
        // Plain build: same invariants as from_levels.
        let t = VfTable::builder()
            .push(1125, 0.9, 0.0236)
            .push(9000, 2.5, 0.2)
            .build()
            .unwrap();
        assert_eq!(t.len(), 2);
        assert_eq!(
            VfTable::builder().build(),
            Err(LevelError::Empty),
            "empty builder is still an empty table"
        );
        assert_eq!(
            VfTable::builder()
                .push(9000, 2.5, 0.2)
                .push(1125, 0.9, 0.0236)
                .build(),
            Err(LevelError::NonMonotonicFrequency(1))
        );

        // The paper table passes its own reliability claim through the
        // builder path.
        let ok = VfTable::builder()
            .levels(VfTable::paper().iter().copied())
            .require_ber(NoiseModel::paper(), 1e-15)
            .build();
        assert!(ok.is_ok());

        // A very noisy environment pushes the low end over the floor, and
        // the reported index is the lowest-voltage (first violating) level.
        let noisy = NoiseModel {
            sigma_v: 0.3,
            ..NoiseModel::paper()
        };
        assert_eq!(
            VfTable::builder()
                .levels(VfTable::paper().iter().copied())
                .require_ber(noisy, 1e-15)
                .build(),
            Err(LevelError::BerFloorViolated(0))
        );
    }

    #[test]
    fn table_iterates_in_order() {
        let t = VfTable::paper();
        let freqs: Vec<u32> = (&t).into_iter().map(VfLevel::freq_x9).collect();
        let mut sorted = freqs.clone();
        sorted.sort_unstable();
        assert_eq!(freqs, sorted);
    }
}
