/// Parameters of the adaptive power-supply regulator that feeds a channel's
/// links.
///
/// Transition overhead energy follows Stratakos's first-order estimate
/// (paper Eq. 1): `E = (1 − η) · C · |V₂² − V₁²|`, where `C` is the Buck
/// converter's filter capacitance and `η` its power efficiency.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct RegulatorParams {
    capacitance_f: f64,
    efficiency: f64,
}

impl RegulatorParams {
    /// Create regulator parameters.
    ///
    /// # Panics
    ///
    /// Panics if `capacitance_f` is not finite and positive, or `efficiency`
    /// is not within `(0, 1]`.
    pub fn new(capacitance_f: f64, efficiency: f64) -> Self {
        assert!(
            capacitance_f.is_finite() && capacitance_f > 0.0,
            "capacitance must be finite and positive"
        );
        assert!(
            efficiency.is_finite() && efficiency > 0.0 && efficiency <= 1.0,
            "efficiency must be in (0, 1]"
        );
        Self {
            capacitance_f,
            efficiency,
        }
    }

    /// The paper's assumption: 5 µF filter capacitance, 90% efficiency
    /// (from the Kim–Horowitz variable-frequency link).
    pub fn paper() -> Self {
        Self::new(5e-6, 0.9)
    }

    /// Filter capacitance in farads.
    pub fn capacitance_f(&self) -> f64 {
        self.capacitance_f
    }

    /// Regulator power efficiency in `(0, 1]`.
    pub fn efficiency(&self) -> f64 {
        self.efficiency
    }

    /// Overhead energy, in joules, of a voltage transition from `v1` to `v2`
    /// volts (paper Eq. 1).
    pub fn transition_energy_j(&self, v1: f64, v2: f64) -> f64 {
        (1.0 - self.efficiency) * self.capacitance_f * (v2 * v2 - v1 * v1).abs()
    }
}

impl Default for RegulatorParams {
    fn default() -> Self {
        Self::paper()
    }
}

/// Where a channel's joules went, as reported by
/// [`DvsChannel::ledger_at`](crate::DvsChannel::ledger_at): a four-way
/// split of the same energy the snapshot total measures.
///
/// [`total_j`](Self::total_j) uses the *same* summation order as
/// [`EnergyMeter::total_j`], so the ledger total is bit-identical to the
/// channel's `energy_total_at` for the same instant — the split is exact,
/// not approximate.
#[derive(Debug, Clone, Copy, Default, PartialEq)]
pub struct EnergyLedger {
    /// Energy spent actively serializing flits across the wires, in joules.
    pub active_j: f64,
    /// Energy burned holding the links powered while no flit was crossing
    /// (including transition phases where the supply sits high), in joules.
    pub idle_j: f64,
    /// Voltage-transition overhead energy (Stratakos regulator term), in
    /// joules.
    pub transition_j: f64,
    /// Wire energy of retransmitted corrupted flits, in joules.
    pub retransmission_j: f64,
}

impl EnergyLedger {
    /// Total across all buckets — bit-identical to the snapshot link-energy
    /// total for the instant the ledger was taken at. The summation order
    /// is canonical; do not reorder.
    pub fn total_j(&self) -> f64 {
        ((self.active_j + self.idle_j) + self.transition_j) + self.retransmission_j
    }

    /// Component-wise difference `self − earlier`, for attributing energy
    /// spent over a measurement interval. Reporting only — differences of
    /// rounded sums are not themselves bit-exact.
    pub fn since(&self, earlier: &EnergyLedger) -> EnergyLedger {
        EnergyLedger {
            active_j: self.active_j - earlier.active_j,
            idle_j: self.idle_j - earlier.idle_j,
            transition_j: self.transition_j - earlier.transition_j,
            retransmission_j: self.retransmission_j - earlier.retransmission_j,
        }
    }
}

/// Accumulates link energy, split into operating energy (power × time,
/// itself divided into active-transmission and idle shares) and
/// voltage-transition overhead energy.
///
/// Times are in router cycles (nanoseconds at the paper's 1 GHz router
/// clock), so `add_operating(p, dt)` adds `p · dt · 1 ns` joules.
#[derive(Debug, Clone, Copy, Default, PartialEq)]
pub struct EnergyMeter {
    active_j: f64,
    idle_j: f64,
    transition_j: f64,
    retransmission_j: f64,
    voltage_transitions: u64,
    retransmissions: u64,
}

impl EnergyMeter {
    /// A meter with zero accumulated energy.
    pub fn new() -> Self {
        Self::default()
    }

    /// Add `power_w` watts drawn for `cycles` router cycles (1 ns each).
    ///
    /// Operating energy lands in the idle bucket first;
    /// [`move_to_active`](Self::move_to_active) reclassifies the share
    /// spent on actual flit transmissions.
    pub fn add_operating(&mut self, power_w: f64, cycles: u64) {
        self.idle_j += power_w * cycles as f64 * 1e-9;
    }

    /// Reclassify `energy_j` joules of operating energy from idle to
    /// active transmission. The operating total is unchanged; only the
    /// split moves. Idle can momentarily undershoot zero by an ulp at
    /// fully saturated links — the buckets are an attribution, not
    /// independent meters.
    pub fn move_to_active(&mut self, energy_j: f64) {
        self.active_j += energy_j;
        self.idle_j -= energy_j;
    }

    /// Add a voltage-transition overhead of `energy_j` joules.
    pub fn add_transition(&mut self, energy_j: f64) {
        self.transition_j += energy_j;
        self.voltage_transitions += 1;
    }

    /// Add the wire energy of one link-level retransmission (`energy_j`
    /// joules — typically one flit serialization time at the channel's
    /// current power).
    pub fn add_retransmission(&mut self, energy_j: f64) {
        self.retransmission_j += energy_j;
        self.retransmissions += 1;
    }

    /// Energy spent operating (power × time), in joules: the idle and
    /// active buckets together.
    pub fn operating_j(&self) -> f64 {
        self.active_j + self.idle_j
    }

    /// Operating energy attributed to active flit transmission, in joules.
    pub fn active_j(&self) -> f64 {
        self.active_j
    }

    /// Operating energy attributed to idle link time, in joules.
    pub fn idle_j(&self) -> f64 {
        self.idle_j
    }

    /// Overhead energy spent in voltage transitions, in joules.
    pub fn transition_j(&self) -> f64 {
        self.transition_j
    }

    /// Overhead energy spent retransmitting corrupted flits, in joules.
    pub fn retransmission_j(&self) -> f64 {
        self.retransmission_j
    }

    /// Total accumulated energy in joules. The summation order matches
    /// [`EnergyLedger::total_j`] so the two stay bit-identical.
    pub fn total_j(&self) -> f64 {
        ((self.active_j + self.idle_j) + self.transition_j) + self.retransmission_j
    }

    /// Number of voltage transitions recorded.
    pub fn voltage_transitions(&self) -> u64 {
        self.voltage_transitions
    }

    /// Number of retransmissions charged.
    pub fn retransmissions(&self) -> u64 {
        self.retransmissions
    }

    /// Average power over `cycles` router cycles, in watts.
    ///
    /// Returns 0 for a zero-length interval.
    pub fn average_power_w(&self, cycles: u64) -> f64 {
        if cycles == 0 {
            0.0
        } else {
            self.total_j() / (cycles as f64 * 1e-9)
        }
    }

    /// Reset the meter to zero, returning the prior totals
    /// `(operating_j, transition_j, retransmission_j)`.
    pub fn reset(&mut self) -> (f64, f64, f64) {
        let out = (self.operating_j(), self.transition_j, self.retransmission_j);
        *self = Self::default();
        out
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn paper_regulator_values() {
        let r = RegulatorParams::paper();
        assert!((r.capacitance_f() - 5e-6).abs() < 1e-18);
        assert!((r.efficiency() - 0.9).abs() < 1e-12);
    }

    #[test]
    fn transition_energy_matches_stratakos_formula() {
        let r = RegulatorParams::paper();
        // Full swing 0.9 V -> 2.5 V: 0.1 * 5e-6 * (6.25 - 0.81) = 2.72 µJ.
        let e = r.transition_energy_j(0.9, 2.5);
        assert!((e - 2.72e-6).abs() < 1e-12);
        // Symmetric in direction.
        assert!((r.transition_energy_j(2.5, 0.9) - e).abs() < 1e-18);
        // Zero for no swing.
        assert_eq!(r.transition_energy_j(1.7, 1.7), 0.0);
    }

    #[test]
    #[should_panic(expected = "efficiency")]
    fn invalid_efficiency_panics() {
        let _ = RegulatorParams::new(5e-6, 1.5);
    }

    #[test]
    #[should_panic(expected = "capacitance")]
    fn invalid_capacitance_panics() {
        let _ = RegulatorParams::new(-1.0, 0.9);
    }

    #[test]
    fn meter_accumulates_and_resets() {
        let mut m = EnergyMeter::new();
        m.add_operating(0.2, 1_000_000); // 0.2 W for 1 ms = 200 µJ
        assert!((m.operating_j() - 2e-4).abs() < 1e-12);
        m.add_transition(2.72e-6);
        assert_eq!(m.voltage_transitions(), 1);
        m.add_retransmission(2e-10); // one flit time at 200 mW
        assert_eq!(m.retransmissions(), 1);
        assert!((m.retransmission_j() - 2e-10).abs() < 1e-18);
        assert!((m.total_j() - (2e-4 + 2.72e-6 + 2e-10)).abs() < 1e-12);
        let (op, tr, rx) = m.reset();
        assert!(op > 0.0 && tr > 0.0 && rx > 0.0);
        assert_eq!(m.total_j(), 0.0);
        assert_eq!(m.voltage_transitions(), 0);
        assert_eq!(m.retransmissions(), 0);
    }

    #[test]
    fn move_to_active_preserves_operating_total() {
        let mut m = EnergyMeter::new();
        m.add_operating(0.2, 1_000_000);
        let before = m.operating_j();
        m.move_to_active(5e-5);
        m.move_to_active(3e-5);
        assert!((m.active_j() - 8e-5).abs() < 1e-18);
        assert!((m.idle_j() - 1.2e-4).abs() < 1e-12);
        assert!((m.operating_j() - before).abs() < 1e-16);
    }

    #[test]
    fn ledger_total_matches_meter_total_bitwise() {
        let mut m = EnergyMeter::new();
        m.add_operating(0.13, 777_777);
        m.move_to_active(1.1e-5);
        m.add_transition(2.72e-6);
        m.add_retransmission(1.6e-9);
        let ledger = EnergyLedger {
            active_j: m.active_j(),
            idle_j: m.idle_j(),
            transition_j: m.transition_j(),
            retransmission_j: m.retransmission_j(),
        };
        assert_eq!(ledger.total_j().to_bits(), m.total_j().to_bits());
        let delta = ledger.since(&EnergyLedger::default());
        assert_eq!(delta, ledger);
    }

    #[test]
    fn average_power_roundtrips() {
        let mut m = EnergyMeter::new();
        m.add_operating(0.1, 500);
        assert!((m.average_power_w(500) - 0.1).abs() < 1e-12);
        assert_eq!(m.average_power_w(0), 0.0);
    }
}
