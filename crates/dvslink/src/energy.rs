/// Parameters of the adaptive power-supply regulator that feeds a channel's
/// links.
///
/// Transition overhead energy follows Stratakos's first-order estimate
/// (paper Eq. 1): `E = (1 − η) · C · |V₂² − V₁²|`, where `C` is the Buck
/// converter's filter capacitance and `η` its power efficiency.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct RegulatorParams {
    capacitance_f: f64,
    efficiency: f64,
}

impl RegulatorParams {
    /// Create regulator parameters.
    ///
    /// # Panics
    ///
    /// Panics if `capacitance_f` is not finite and positive, or `efficiency`
    /// is not within `(0, 1]`.
    pub fn new(capacitance_f: f64, efficiency: f64) -> Self {
        assert!(
            capacitance_f.is_finite() && capacitance_f > 0.0,
            "capacitance must be finite and positive"
        );
        assert!(
            efficiency.is_finite() && efficiency > 0.0 && efficiency <= 1.0,
            "efficiency must be in (0, 1]"
        );
        Self {
            capacitance_f,
            efficiency,
        }
    }

    /// The paper's assumption: 5 µF filter capacitance, 90% efficiency
    /// (from the Kim–Horowitz variable-frequency link).
    pub fn paper() -> Self {
        Self::new(5e-6, 0.9)
    }

    /// Filter capacitance in farads.
    pub fn capacitance_f(&self) -> f64 {
        self.capacitance_f
    }

    /// Regulator power efficiency in `(0, 1]`.
    pub fn efficiency(&self) -> f64 {
        self.efficiency
    }

    /// Overhead energy, in joules, of a voltage transition from `v1` to `v2`
    /// volts (paper Eq. 1).
    pub fn transition_energy_j(&self, v1: f64, v2: f64) -> f64 {
        (1.0 - self.efficiency) * self.capacitance_f * (v2 * v2 - v1 * v1).abs()
    }
}

impl Default for RegulatorParams {
    fn default() -> Self {
        Self::paper()
    }
}

/// Accumulates link energy, split into operating energy (power × time) and
/// voltage-transition overhead energy.
///
/// Times are in router cycles (nanoseconds at the paper's 1 GHz router
/// clock), so `add_operating(p, dt)` adds `p · dt · 1 ns` joules.
#[derive(Debug, Clone, Copy, Default, PartialEq)]
pub struct EnergyMeter {
    operating_j: f64,
    transition_j: f64,
    retransmission_j: f64,
    voltage_transitions: u64,
    retransmissions: u64,
}

impl EnergyMeter {
    /// A meter with zero accumulated energy.
    pub fn new() -> Self {
        Self::default()
    }

    /// Add `power_w` watts drawn for `cycles` router cycles (1 ns each).
    pub fn add_operating(&mut self, power_w: f64, cycles: u64) {
        self.operating_j += power_w * cycles as f64 * 1e-9;
    }

    /// Add a voltage-transition overhead of `energy_j` joules.
    pub fn add_transition(&mut self, energy_j: f64) {
        self.transition_j += energy_j;
        self.voltage_transitions += 1;
    }

    /// Add the wire energy of one link-level retransmission (`energy_j`
    /// joules — typically one flit serialization time at the channel's
    /// current power).
    pub fn add_retransmission(&mut self, energy_j: f64) {
        self.retransmission_j += energy_j;
        self.retransmissions += 1;
    }

    /// Energy spent operating (power × time), in joules.
    pub fn operating_j(&self) -> f64 {
        self.operating_j
    }

    /// Overhead energy spent in voltage transitions, in joules.
    pub fn transition_j(&self) -> f64 {
        self.transition_j
    }

    /// Overhead energy spent retransmitting corrupted flits, in joules.
    pub fn retransmission_j(&self) -> f64 {
        self.retransmission_j
    }

    /// Total accumulated energy in joules.
    pub fn total_j(&self) -> f64 {
        self.operating_j + self.transition_j + self.retransmission_j
    }

    /// Number of voltage transitions recorded.
    pub fn voltage_transitions(&self) -> u64 {
        self.voltage_transitions
    }

    /// Number of retransmissions charged.
    pub fn retransmissions(&self) -> u64 {
        self.retransmissions
    }

    /// Average power over `cycles` router cycles, in watts.
    ///
    /// Returns 0 for a zero-length interval.
    pub fn average_power_w(&self, cycles: u64) -> f64 {
        if cycles == 0 {
            0.0
        } else {
            self.total_j() / (cycles as f64 * 1e-9)
        }
    }

    /// Reset the meter to zero, returning the prior totals
    /// `(operating_j, transition_j, retransmission_j)`.
    pub fn reset(&mut self) -> (f64, f64, f64) {
        let out = (self.operating_j, self.transition_j, self.retransmission_j);
        *self = Self::default();
        out
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn paper_regulator_values() {
        let r = RegulatorParams::paper();
        assert!((r.capacitance_f() - 5e-6).abs() < 1e-18);
        assert!((r.efficiency() - 0.9).abs() < 1e-12);
    }

    #[test]
    fn transition_energy_matches_stratakos_formula() {
        let r = RegulatorParams::paper();
        // Full swing 0.9 V -> 2.5 V: 0.1 * 5e-6 * (6.25 - 0.81) = 2.72 µJ.
        let e = r.transition_energy_j(0.9, 2.5);
        assert!((e - 2.72e-6).abs() < 1e-12);
        // Symmetric in direction.
        assert!((r.transition_energy_j(2.5, 0.9) - e).abs() < 1e-18);
        // Zero for no swing.
        assert_eq!(r.transition_energy_j(1.7, 1.7), 0.0);
    }

    #[test]
    #[should_panic(expected = "efficiency")]
    fn invalid_efficiency_panics() {
        let _ = RegulatorParams::new(5e-6, 1.5);
    }

    #[test]
    #[should_panic(expected = "capacitance")]
    fn invalid_capacitance_panics() {
        let _ = RegulatorParams::new(-1.0, 0.9);
    }

    #[test]
    fn meter_accumulates_and_resets() {
        let mut m = EnergyMeter::new();
        m.add_operating(0.2, 1_000_000); // 0.2 W for 1 ms = 200 µJ
        assert!((m.operating_j() - 2e-4).abs() < 1e-12);
        m.add_transition(2.72e-6);
        assert_eq!(m.voltage_transitions(), 1);
        m.add_retransmission(2e-10); // one flit time at 200 mW
        assert_eq!(m.retransmissions(), 1);
        assert!((m.retransmission_j() - 2e-10).abs() < 1e-18);
        assert!((m.total_j() - (2e-4 + 2.72e-6 + 2e-10)).abs() < 1e-12);
        let (op, tr, rx) = m.reset();
        assert!(op > 0.0 && tr > 0.0 && rx > 0.0);
        assert_eq!(m.total_j(), 0.0);
        assert_eq!(m.voltage_transitions(), 0);
        assert_eq!(m.retransmissions(), 0);
    }

    #[test]
    fn average_power_roundtrips() {
        let mut m = EnergyMeter::new();
        m.add_operating(0.1, 500);
        assert!((m.average_power_w(500) - 0.1).abs() < 1e-12);
        assert_eq!(m.average_power_w(0), 0.0);
    }
}
