use crate::Cycles;

/// Transition latencies of a DVS link, per adjacent-level step.
///
/// The paper's conservative defaults (current circuit technology, §2) are a
/// 10 µs voltage ramp and a 100-link-clock-cycle frequency lock; §4.4.3
/// explores faster links down to 1 µs and 10 cycles.
///
/// # Example
///
/// ```
/// use dvslink::TransitionTiming;
///
/// let fast = TransitionTiming::new(1_000, 10);
/// assert!(fast.voltage_ramp_cycles() < TransitionTiming::paper_conservative().voltage_ramp_cycles());
/// ```
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub struct TransitionTiming {
    voltage_ramp_cycles: Cycles,
    freq_lock_link_cycles: u32,
}

impl TransitionTiming {
    /// Create a timing model.
    ///
    /// `voltage_ramp_cycles` is the voltage transition latency between
    /// adjacent levels in router-clock cycles (= nanoseconds at 1 GHz).
    /// `freq_lock_link_cycles` is the frequency transition latency in *link*
    /// clock cycles; the wall-clock duration therefore depends on the link
    /// frequency and is computed conservatively at the slower of the two
    /// levels involved in the step.
    pub fn new(voltage_ramp_cycles: Cycles, freq_lock_link_cycles: u32) -> Self {
        Self {
            voltage_ramp_cycles,
            freq_lock_link_cycles,
        }
    }

    /// The paper's conservative assumption: 10 µs voltage ramp, 100 link
    /// clock cycles frequency lock.
    pub fn paper_conservative() -> Self {
        Self::new(10_000, 100)
    }

    /// The fastest link explored in §4.4.3: 1 µs voltage ramp, 10 link
    /// clock cycles frequency lock.
    pub fn paper_aggressive() -> Self {
        Self::new(1_000, 10)
    }

    /// Voltage-ramp latency per adjacent-level step, in router cycles.
    pub fn voltage_ramp_cycles(&self) -> Cycles {
        self.voltage_ramp_cycles
    }

    /// Frequency-lock latency per adjacent-level step, in link clock cycles.
    pub fn freq_lock_link_cycles(&self) -> u32 {
        self.freq_lock_link_cycles
    }

    /// Wall-clock duration of the frequency lock in router cycles, when the
    /// slower of the two levels runs at `freq_x9_mhz` (frequency ×9 in MHz;
    /// see [`crate::VfLevel::freq_x9`]).
    ///
    /// Rounds up so a partially elapsed link cycle still counts as busy.
    pub fn freq_lock_router_cycles(&self, freq_x9_mhz: u32) -> Cycles {
        // cycles * period_ns = cycles * 9000 / freq_x9, rounded up.
        let num = u64::from(self.freq_lock_link_cycles) * 9000;
        num.div_ceil(u64::from(freq_x9_mhz.max(1)))
    }
}

impl Default for TransitionTiming {
    fn default() -> Self {
        Self::paper_conservative()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn paper_defaults() {
        let t = TransitionTiming::paper_conservative();
        assert_eq!(t.voltage_ramp_cycles(), 10_000);
        assert_eq!(t.freq_lock_link_cycles(), 100);
        assert_eq!(t, TransitionTiming::default());
    }

    #[test]
    fn freq_lock_duration_scales_with_link_period() {
        let t = TransitionTiming::paper_conservative();
        // At 1 GHz link clock (freq_x9 = 9000): 100 cycles == 100 ns.
        assert_eq!(t.freq_lock_router_cycles(9000), 100);
        // At 125 MHz (freq_x9 = 1125): period 8 ns -> 800 ns.
        assert_eq!(t.freq_lock_router_cycles(1125), 800);
    }

    #[test]
    fn freq_lock_rounds_up() {
        let t = TransitionTiming::new(0, 1);
        // One link cycle at freq_x9 = 7000 -> 9000/7000 = 1.28.. -> 2 cycles.
        assert_eq!(t.freq_lock_router_cycles(7000), 2);
    }

    #[test]
    fn zero_frequency_does_not_divide_by_zero() {
        let t = TransitionTiming::paper_conservative();
        assert_eq!(t.freq_lock_router_cycles(0), 900_000);
    }
}
