use crate::{
    Cycles, EnergyLedger, EnergyMeter, RegulatorParams, TransitionError, TransitionTiming, VfTable,
};

/// The phase a [`DvsChannel`] is currently in.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum ChannelPhase {
    /// Operating steadily at the current level.
    Stable,
    /// The regulator is ramping the supply voltage toward `target`'s level.
    /// The links keep functioning (at the lower of the two frequencies).
    VoltageRamp {
        /// Level the in-flight transition is heading to.
        target: usize,
        /// Cycle at which the ramp completes.
        until: Cycles,
    },
    /// The receiver is re-locking onto the new link clock. The links are
    /// *disabled* and transmit nothing.
    FreqLock {
        /// Level the in-flight transition is heading to.
        target: usize,
        /// Cycle at which the lock completes.
        until: Cycles,
    },
}

/// Counters describing a channel's transition activity.
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq)]
pub struct TransitionStats {
    /// Step-up transitions started.
    pub initiated_up: u64,
    /// Step-down transitions started.
    pub initiated_down: u64,
    /// Transitions fully completed (channel back to stable).
    pub completed: u64,
    /// Router cycles spent with the links disabled (frequency locks).
    pub disabled_cycles: Cycles,
}

/// A network channel made of one or more serial links that scale frequency
/// and voltage together under one adaptive power-supply regulator.
///
/// The channel is a small state machine driven by two inputs: level-change
/// requests from a DVS policy ([`request_step_up`](Self::request_step_up) /
/// [`request_step_down`](Self::request_step_down)) and the passage of time
/// ([`advance`](Self::advance)). Phase ordering follows the paper:
///
/// - **speed-up**: voltage ramp (links functional at the old frequency),
///   then frequency lock (links disabled), then stable at the new level;
/// - **slow-down**: frequency lock first (links disabled), then voltage ramp
///   down (links functional at the new, lower frequency).
///
/// Energy is integrated continuously: operating power is charged at the
/// level whose *voltage* is currently applied (during transitions that is
/// always the higher of the two levels involved — a conservative choice,
/// since the supply is at or heading to the higher voltage while the
/// frequency may still be low), and each voltage ramp additionally charges
/// the Stratakos overhead energy through [`RegulatorParams`].
#[derive(Debug, Clone)]
pub struct DvsChannel {
    table: VfTable,
    timing: TransitionTiming,
    regulator: RegulatorParams,
    link_count: u32,
    /// Lowest level a step-down may target (reliability floor).
    min_level: usize,
    /// Level whose frequency the links currently run at.
    level: usize,
    /// Level whose voltage is currently applied (drives power accounting).
    voltage_index: usize,
    phase: ChannelPhase,
    meter: EnergyMeter,
    last_meter_sync: Cycles,
    stats: TransitionStats,
}

impl DvsChannel {
    /// Create a channel of a single link at `initial_level`.
    ///
    /// Use [`with_link_count`](Self::with_link_count) for multi-link channels
    /// (the paper's channels bundle 8 serial links per router port).
    ///
    /// # Panics
    ///
    /// Panics if `initial_level` is out of range for `table`.
    pub fn new(
        table: VfTable,
        timing: TransitionTiming,
        regulator: RegulatorParams,
        initial_level: usize,
    ) -> Self {
        assert!(
            initial_level < table.len(),
            "initial level {initial_level} out of range for table of {} levels",
            table.len()
        );
        Self {
            table,
            timing,
            regulator,
            link_count: 1,
            min_level: 0,
            level: initial_level,
            voltage_index: initial_level,
            phase: ChannelPhase::Stable,
            meter: EnergyMeter::new(),
            last_meter_sync: 0,
            stats: TransitionStats::default(),
        }
    }

    /// Set the number of serial links bundled in this channel (power scales
    /// linearly with it). Returns `self` for builder-style chaining.
    ///
    /// # Panics
    ///
    /// Panics if `links` is zero.
    pub fn with_link_count(mut self, links: u32) -> Self {
        assert!(links > 0, "a channel must bundle at least one link");
        self.link_count = links;
        self
    }

    /// Number of serial links bundled in this channel.
    pub fn link_count(&self) -> u32 {
        self.link_count
    }

    /// Set the lowest level step-downs may target. A reliability guard
    /// raises this floor so DVS never commands a level whose predicted BER
    /// exceeds the target; step-down requests at or below the floor fail
    /// with [`TransitionError::AtMinLevel`] (which every policy treats as
    /// a benign no-op). The floor does not by itself raise a channel
    /// already below it — a guard policy steps it up gracefully.
    ///
    /// # Panics
    ///
    /// Panics if `level` is out of range for the table.
    pub fn set_min_level(&mut self, level: usize) {
        assert!(
            level < self.table.len(),
            "min level {level} out of range for table of {} levels",
            self.table.len()
        );
        self.min_level = level;
    }

    /// The current step-down floor (0 unless a guard raised it).
    pub fn min_level(&self) -> usize {
        self.min_level
    }

    /// The channel's level table.
    pub fn table(&self) -> &VfTable {
        &self.table
    }

    /// The level whose frequency the links currently run at.
    pub fn level(&self) -> usize {
        self.level
    }

    /// The level an in-flight transition is heading to, if any.
    pub fn target_level(&self) -> Option<usize> {
        match self.phase {
            ChannelPhase::Stable => None,
            ChannelPhase::VoltageRamp { target, .. } | ChannelPhase::FreqLock { target, .. } => {
                Some(target)
            }
        }
    }

    /// Current phase.
    pub fn phase(&self) -> ChannelPhase {
        self.phase
    }

    /// Whether the channel is stable (no transition in flight).
    pub fn is_stable(&self) -> bool {
        matches!(self.phase, ChannelPhase::Stable)
    }

    /// Whether the links can transmit right now. Links function when stable
    /// and during voltage ramps, but not during frequency locks.
    pub fn is_operational(&self) -> bool {
        !matches!(self.phase, ChannelPhase::FreqLock { .. })
    }

    /// Cycle at which the current phase ends, or `None` when stable.
    ///
    /// Note that a speed-up transition has two phases; after the voltage
    /// ramp completes the channel enters a frequency lock, so callers waiting
    /// for stability should re-check after advancing to this cycle.
    pub fn busy_until(&self) -> Option<Cycles> {
        match self.phase {
            ChannelPhase::Stable => None,
            ChannelPhase::VoltageRamp { until, .. } | ChannelPhase::FreqLock { until, .. } => {
                Some(until)
            }
        }
    }

    /// Current link frequency ×9 in MHz (exact integer form; see
    /// [`crate::VfLevel::freq_x9`]). Meaningful whenever the channel is
    /// operational; during a frequency lock the links transmit nothing
    /// regardless of this value.
    pub fn freq_x9(&self) -> u32 {
        self.table
            .get(self.level)
            .expect("level is always in range")
            .freq_x9()
    }

    /// Instantaneous channel power in watts (all bundled links).
    pub fn power_w(&self) -> f64 {
        self.table
            .get(self.voltage_index)
            .expect("voltage index is always in range")
            .power_w()
            * f64::from(self.link_count)
    }

    /// Accumulated energy meter (operating + transition overhead).
    ///
    /// Call [`advance`](Self::advance) first to integrate up to the present,
    /// or use [`energy_total_at`](Self::energy_total_at) for a read-only
    /// total.
    pub fn meter(&self) -> &EnergyMeter {
        &self.meter
    }

    /// Total energy consumed through cycle `now`, in joules, without
    /// mutating the channel: the meter's integrated total plus the current
    /// power held constant since the last state change. Exact, because power
    /// only changes at state changes, and every state change syncs the
    /// meter. Defined as the [`ledger_at`](Self::ledger_at) total, so the
    /// attribution split always sums bit-exactly to this value.
    pub fn energy_total_at(&self, now: Cycles) -> f64 {
        self.ledger_at(now).total_j()
    }

    /// Attribution of all energy consumed through cycle `now`: operating
    /// energy split into active transmission and idle, plus the transition
    /// and retransmission overhead buckets. The un-synced tail (current
    /// power held since the last state change) lands in the idle bucket —
    /// any flit transmitted during it has already moved its wire energy to
    /// active. `ledger_at(now).total_j()` is bit-identical to
    /// [`energy_total_at`](Self::energy_total_at).
    pub fn ledger_at(&self, now: Cycles) -> EnergyLedger {
        let tail = now.saturating_sub(self.last_meter_sync);
        EnergyLedger {
            active_j: self.meter.active_j(),
            idle_j: self.meter.idle_j() + self.power_w() * tail as f64 * 1e-9,
            transition_j: self.meter.transition_j(),
            retransmission_j: self.meter.retransmission_j(),
        }
    }

    /// Transition activity counters.
    pub fn stats(&self) -> &TransitionStats {
        &self.stats
    }

    /// Wire energy of serializing one flit across the channel at the
    /// current operating point, in joules: channel power × one flit time
    /// (9000 / freq_x9 router cycles of 1 ns).
    pub fn flit_energy_j(&self) -> f64 {
        self.power_w() * (9000.0 / f64::from(self.freq_x9())) * 1e-9
    }

    /// Charge the overhead of one link-level retransmission: the wire
    /// energy of re-serializing the corrupted flit at the current
    /// operating point, recorded in the meter's retransmission bucket.
    pub fn charge_retransmission(&mut self, now: Cycles) {
        self.sync_meter(now);
        let e = self.flit_energy_j();
        self.meter.add_retransmission(e);
    }

    /// Attribute one successful flit transmission: move the flit's wire
    /// energy at the current operating point from the idle to the active
    /// bucket. The total is unchanged — this only refines the split, so it
    /// must be called exactly once per delivered flit crossing.
    pub fn charge_flit_transmission(&mut self, now: Cycles) {
        self.sync_meter(now);
        self.meter.move_to_active(self.flit_energy_j());
    }

    /// Begin a one-level speed-up at cycle `now`.
    ///
    /// # Errors
    ///
    /// Returns [`TransitionError::Busy`] if a transition is already in
    /// flight, or [`TransitionError::AtMaxLevel`] at the top level.
    pub fn request_step_up(&mut self, now: Cycles) -> Result<(), TransitionError> {
        self.check_ready()?;
        if self.level + 1 >= self.table.len() {
            return Err(TransitionError::AtMaxLevel);
        }
        self.sync_meter(now);
        let target = self.level + 1;
        let v_from = self.table.get(self.level).expect("in range").voltage_v();
        let v_to = self.table.get(target).expect("in range").voltage_v();
        self.meter
            .add_transition(self.regulator.transition_energy_j(v_from, v_to));
        // Conservative power accounting: the supply heads to the higher
        // voltage immediately.
        self.voltage_index = target;
        self.phase = ChannelPhase::VoltageRamp {
            target,
            until: now + self.timing.voltage_ramp_cycles(),
        };
        self.stats.initiated_up += 1;
        Ok(())
    }

    /// Begin a one-level slow-down at cycle `now`.
    ///
    /// # Errors
    ///
    /// Returns [`TransitionError::Busy`] if a transition is already in
    /// flight, or [`TransitionError::AtMinLevel`] at the bottom level.
    pub fn request_step_down(&mut self, now: Cycles) -> Result<(), TransitionError> {
        self.check_ready()?;
        if self.level <= self.min_level {
            return Err(TransitionError::AtMinLevel);
        }
        self.sync_meter(now);
        let target = self.level - 1;
        // Frequency drops first; the lock runs at the slower (target) clock.
        let lock = self
            .timing
            .freq_lock_router_cycles(self.table.get(target).expect("in range").freq_x9());
        self.stats.disabled_cycles += lock;
        self.phase = ChannelPhase::FreqLock {
            target,
            until: now + lock,
        };
        self.stats.initiated_down += 1;
        Ok(())
    }

    /// Advance the state machine to cycle `now`, completing any phases that
    /// end at or before it and integrating energy.
    ///
    /// `now` must be monotonically non-decreasing across calls.
    pub fn advance(&mut self, now: Cycles) {
        loop {
            match self.phase {
                ChannelPhase::VoltageRamp { target, until } if until <= now => {
                    self.sync_meter(until);
                    if target > self.level {
                        // Speed-up: the ramp is done, now re-lock the clock.
                        // The slower of the two frequencies is the old level.
                        let lock = self.timing.freq_lock_router_cycles(
                            self.table.get(self.level).expect("in range").freq_x9(),
                        );
                        self.stats.disabled_cycles += lock;
                        self.phase = ChannelPhase::FreqLock {
                            target,
                            until: until + lock,
                        };
                    } else {
                        // Slow-down: ramp down was the final phase.
                        self.voltage_index = target;
                        self.phase = ChannelPhase::Stable;
                        self.stats.completed += 1;
                    }
                }
                ChannelPhase::FreqLock { target, until } if until <= now => {
                    self.sync_meter(until);
                    if target > self.level {
                        // Speed-up: lock done, transition complete.
                        self.level = target;
                        self.phase = ChannelPhase::Stable;
                        self.stats.completed += 1;
                    } else {
                        // Slow-down: links now run at the lower frequency;
                        // ramp the voltage down behind them.
                        self.level = target;
                        let v_from = self
                            .table
                            .get(self.voltage_index)
                            .expect("in range")
                            .voltage_v();
                        let v_to = self.table.get(target).expect("in range").voltage_v();
                        self.meter
                            .add_transition(self.regulator.transition_energy_j(v_from, v_to));
                        self.phase = ChannelPhase::VoltageRamp {
                            target,
                            until: until + self.timing.voltage_ramp_cycles(),
                        };
                    }
                }
                _ => break,
            }
        }
        self.sync_meter(now);
    }

    fn check_ready(&self) -> Result<(), TransitionError> {
        match self.busy_until() {
            Some(busy_until) => Err(TransitionError::Busy { busy_until }),
            None => Ok(()),
        }
    }

    fn sync_meter(&mut self, now: Cycles) {
        if now > self.last_meter_sync {
            let dt = now - self.last_meter_sync;
            let p = self.power_w();
            self.meter.add_operating(p, dt);
            self.last_meter_sync = now;
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn channel_at(level: usize) -> DvsChannel {
        DvsChannel::new(
            VfTable::paper(),
            TransitionTiming::paper_conservative(),
            RegulatorParams::paper(),
            level,
        )
    }

    #[test]
    fn new_channel_is_stable_and_operational() {
        let ch = channel_at(9);
        assert!(ch.is_stable());
        assert!(ch.is_operational());
        assert_eq!(ch.level(), 9);
        assert_eq!(ch.target_level(), None);
        assert_eq!(ch.busy_until(), None);
        assert_eq!(ch.freq_x9(), 9000);
    }

    #[test]
    #[should_panic(expected = "out of range")]
    fn out_of_range_initial_level_panics() {
        let _ = channel_at(10);
    }

    #[test]
    fn step_up_sequences_voltage_then_frequency() {
        let mut ch = channel_at(4);
        ch.request_step_up(100).unwrap();
        // Phase 1: voltage ramp, links functional at the OLD frequency.
        assert!(matches!(
            ch.phase(),
            ChannelPhase::VoltageRamp {
                target: 5,
                until: 10_100
            }
        ));
        assert!(ch.is_operational());
        assert_eq!(ch.level(), 4, "frequency unchanged during voltage ramp");
        ch.advance(10_100);
        // Phase 2: frequency lock, links disabled. Lock runs at old (slower)
        // frequency: level 4 -> freq_x9 = 1125 + 875*4 = 4625; 100 cycles
        // -> ceil(900000/4625) = 195 router cycles.
        match ch.phase() {
            ChannelPhase::FreqLock { target: 5, until } => {
                assert_eq!(until, 10_100 + 195);
            }
            p => panic!("expected frequency lock, got {p:?}"),
        }
        assert!(!ch.is_operational());
        ch.advance(10_295);
        assert!(ch.is_stable());
        assert_eq!(ch.level(), 5);
        assert_eq!(ch.stats().completed, 1);
        assert_eq!(ch.stats().initiated_up, 1);
    }

    #[test]
    fn step_down_sequences_frequency_then_voltage() {
        let mut ch = channel_at(5);
        ch.request_step_down(0).unwrap();
        // Phase 1: frequency lock at the NEW (slower) frequency: level 4 ->
        // freq_x9 = 4625, ceil(900000/4625) = 195.
        match ch.phase() {
            ChannelPhase::FreqLock { target: 4, until } => assert_eq!(until, 195),
            p => panic!("expected frequency lock, got {p:?}"),
        }
        assert!(!ch.is_operational());
        ch.advance(195);
        // Phase 2: voltage ramp down; links functional at the new frequency.
        assert!(matches!(
            ch.phase(),
            ChannelPhase::VoltageRamp {
                target: 4,
                until: 10_195
            }
        ));
        assert!(ch.is_operational());
        assert_eq!(
            ch.level(),
            4,
            "frequency already at target during ramp-down"
        );
        ch.advance(10_195);
        assert!(ch.is_stable());
        assert_eq!(ch.level(), 4);
        assert_eq!(ch.stats().initiated_down, 1);
        assert_eq!(ch.stats().completed, 1);
    }

    #[test]
    fn advance_jumps_across_multiple_phase_boundaries() {
        let mut ch = channel_at(0);
        ch.request_step_up(0).unwrap();
        ch.advance(1_000_000);
        assert!(ch.is_stable());
        assert_eq!(ch.level(), 1);
    }

    #[test]
    fn busy_channel_rejects_new_requests() {
        let mut ch = channel_at(5);
        ch.request_step_up(0).unwrap();
        let err = ch.request_step_up(1).unwrap_err();
        assert!(matches!(err, TransitionError::Busy { busy_until: 10_000 }));
        assert!(matches!(
            ch.request_step_down(1),
            Err(TransitionError::Busy { .. })
        ));
    }

    #[test]
    fn extremes_reject_steps() {
        let mut top = channel_at(9);
        assert_eq!(top.request_step_up(0), Err(TransitionError::AtMaxLevel));
        let mut bottom = channel_at(0);
        assert_eq!(
            bottom.request_step_down(0),
            Err(TransitionError::AtMinLevel)
        );
    }

    #[test]
    fn transition_energy_is_charged_once_per_voltage_ramp() {
        let mut ch = channel_at(3);
        let expect = RegulatorParams::paper().transition_energy_j(
            VfTable::paper().get(3).unwrap().voltage_v(),
            VfTable::paper().get(4).unwrap().voltage_v(),
        );
        ch.request_step_up(0).unwrap();
        ch.advance(1_000_000);
        assert!((ch.meter().transition_j() - expect).abs() < 1e-15);
        assert_eq!(ch.meter().voltage_transitions(), 1);
        // And the same overhead on the way back down.
        ch.request_step_down(1_000_000).unwrap();
        ch.advance(2_000_000);
        assert!((ch.meter().transition_j() - 2.0 * expect).abs() < 1e-15);
        assert_eq!(ch.meter().voltage_transitions(), 2);
    }

    #[test]
    fn operating_energy_integrates_power_over_time() {
        let mut ch = channel_at(9);
        ch.advance(1_000_000); // 1 ms at 200 mW = 200 µJ
        assert!((ch.meter().operating_j() - 2e-4).abs() < 1e-10);
    }

    #[test]
    fn power_during_up_transition_uses_higher_level() {
        let mut ch = channel_at(0);
        let p_low = ch.power_w();
        ch.request_step_up(0).unwrap();
        assert!(ch.power_w() > p_low, "voltage heads up immediately");
        let p1 = VfTable::paper().get(1).unwrap().power_w();
        assert!((ch.power_w() - p1).abs() < 1e-12);
    }

    #[test]
    fn power_during_down_transition_stays_at_higher_level_until_ramp_ends() {
        let mut ch = channel_at(9);
        let p_high = ch.power_w();
        ch.request_step_down(0).unwrap();
        assert!((ch.power_w() - p_high).abs() < 1e-12);
        ch.advance(112); // lock done (ceil(900000/8125) = 111 -> until 111)
        assert!((ch.power_w() - p_high).abs() < 1e-12, "voltage still high");
        ch.advance(200_000);
        let p8 = VfTable::paper().get(8).unwrap().power_w();
        assert!((ch.power_w() - p8).abs() < 1e-12);
    }

    #[test]
    fn link_count_scales_power() {
        let ch = channel_at(9).with_link_count(8);
        assert!((ch.power_w() - 1.6).abs() < 1e-12, "8 links x 200 mW");
        assert_eq!(ch.link_count(), 8);
    }

    #[test]
    #[should_panic(expected = "at least one link")]
    fn zero_link_count_panics() {
        let _ = channel_at(0).with_link_count(0);
    }

    #[test]
    fn disabled_cycles_are_counted() {
        let mut ch = channel_at(9);
        ch.request_step_down(0).unwrap();
        ch.advance(1_000_000);
        // Lock at level 8: freq_x9 = 8125, ceil(900000/8125) = 111.
        assert_eq!(ch.stats().disabled_cycles, 111);
    }

    #[test]
    fn min_level_floor_blocks_step_down() {
        let mut ch = channel_at(4);
        ch.set_min_level(4);
        assert_eq!(ch.min_level(), 4);
        assert_eq!(ch.request_step_down(0), Err(TransitionError::AtMinLevel));
        // Stepping up is unaffected, and the floor only binds at or below.
        ch.request_step_up(0).unwrap();
        ch.advance(1_000_000);
        assert_eq!(ch.level(), 5);
        ch.request_step_down(1_000_000).unwrap();
        ch.advance(2_000_000);
        assert_eq!(ch.level(), 4);
        assert_eq!(
            ch.request_step_down(2_000_000),
            Err(TransitionError::AtMinLevel)
        );
    }

    #[test]
    #[should_panic(expected = "out of range")]
    fn min_level_out_of_range_panics() {
        channel_at(0).set_min_level(10);
    }

    #[test]
    fn retransmission_energy_is_one_flit_time_at_current_power() {
        let mut ch = channel_at(9).with_link_count(8);
        // Level 9: 1.6 W channel, 1 ns flit time -> 1.6 nJ per retransmit.
        assert!((ch.flit_energy_j() - 1.6e-9).abs() < 1e-18);
        ch.charge_retransmission(100);
        ch.charge_retransmission(200);
        assert_eq!(ch.meter().retransmissions(), 2);
        assert!((ch.meter().retransmission_j() - 3.2e-9).abs() < 1e-18);
        // Retransmission energy rides into the total alongside operating.
        ch.advance(1_000);
        assert!((ch.meter().total_j() - (1.6 * 1e-6 + 3.2e-9)).abs() < 1e-12);
        // At the slowest level a flit takes 8x longer but burns far less
        // power: 23.6 mW x 8 links x 8 ns = 1.5104 nJ.
        let slow = channel_at(0).with_link_count(8);
        assert!((slow.flit_energy_j() - 1.5104e-9).abs() < 1e-15);
    }

    #[test]
    fn ledger_splits_total_bit_exactly() {
        let mut ch = channel_at(9).with_link_count(8);
        ch.advance(10_000);
        ch.charge_flit_transmission(10_000);
        ch.charge_flit_transmission(10_001);
        ch.charge_retransmission(10_002);
        ch.request_step_down(20_000).unwrap();
        ch.advance(500_000);
        // Mid-flight read with an un-synced tail: the split still sums
        // bit-identically to the total (same code path).
        for now in [500_000, 500_123, 1_000_000] {
            let ledger = ch.ledger_at(now);
            assert_eq!(
                ledger.total_j().to_bits(),
                ch.energy_total_at(now).to_bits()
            );
        }
        let ledger = ch.ledger_at(1_000_000);
        assert!(ledger.active_j > 0.0);
        assert!(ledger.idle_j > 0.0);
        assert!(ledger.transition_j > 0.0);
        assert!(ledger.retransmission_j > 0.0);
        // Active is exactly the wire energy of the two charged flits.
        assert!((ledger.active_j - 2.0 * 1.6e-9).abs() < 1e-18);
    }

    #[test]
    fn round_trip_returns_to_same_level_and_energy_is_positive() {
        let mut ch = channel_at(5);
        let mut now = 0;
        ch.request_step_down(now).unwrap();
        now += 100_000;
        ch.advance(now);
        assert!(ch.is_stable());
        ch.request_step_up(now).unwrap();
        now += 100_000;
        ch.advance(now);
        assert!(ch.is_stable());
        assert_eq!(ch.level(), 5);
        assert_eq!(ch.stats().completed, 2);
        assert!(ch.meter().total_j() > 0.0);
    }
}
