/// A component of the router power budget (paper Fig. 7).
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub enum RouterPowerComponent {
    /// Link circuitry (drivers, pads) — 82.4% of the paper's router.
    Links,
    /// Input buffer read/write power.
    Buffers,
    /// Crossbar traversal power.
    Crossbar,
    /// Virtual-channel and switch allocators (81 mW in the paper).
    Allocators,
    /// Clock distribution.
    Clock,
    /// Everything else.
    Miscellaneous,
}

impl RouterPowerComponent {
    /// All components, in display order.
    pub const ALL: [RouterPowerComponent; 6] = [
        RouterPowerComponent::Links,
        RouterPowerComponent::Buffers,
        RouterPowerComponent::Crossbar,
        RouterPowerComponent::Allocators,
        RouterPowerComponent::Clock,
        RouterPowerComponent::Miscellaneous,
    ];

    /// Human-readable name.
    pub fn name(&self) -> &'static str {
        match self {
            RouterPowerComponent::Links => "links",
            RouterPowerComponent::Buffers => "buffers",
            RouterPowerComponent::Crossbar => "crossbar",
            RouterPowerComponent::Allocators => "allocators",
            RouterPowerComponent::Clock => "clock",
            RouterPowerComponent::Miscellaneous => "miscellaneous",
        }
    }
}

/// Static per-router power budget reproducing the paper's Fig. 7 power
/// characterization.
///
/// The paper synthesized its router to TSMC 0.25 µm and measured that 82.4%
/// of maximum router power goes to the link circuitry (4 ports × 8 links ×
/// 200 mW = 6.4 W) and that the allocators draw a minimal 81 mW. The split of
/// the remaining non-link power between buffers, crossbar, clock and
/// miscellaneous is *our estimate* (the paper gives only the chart): we
/// apportion it 60/25/10/5, consistent with buffer-dominated router cores of
/// that era. Because the paper explicitly ignores router-core power in its
/// DVS evaluation, this model feeds only the Fig. 7 reproduction and sanity
/// checks — no evaluated curve depends on the estimated split.
#[derive(Debug, Clone, PartialEq)]
pub struct RouterPowerBudget {
    link_w: f64,
    buffers_w: f64,
    crossbar_w: f64,
    allocators_w: f64,
    clock_w: f64,
    misc_w: f64,
}

impl RouterPowerBudget {
    /// The paper's router: 4 ports × 8 links × 200 mW of link power at 82.4%
    /// of total, allocators at 81 mW.
    pub fn paper() -> Self {
        let link_w = 4.0 * 8.0 * 0.2;
        let total_w = link_w / 0.824;
        let allocators_w = 0.081;
        let rest = total_w - link_w - allocators_w;
        Self {
            link_w,
            buffers_w: rest * 0.60,
            crossbar_w: rest * 0.25,
            allocators_w,
            clock_w: rest * 0.10,
            misc_w: rest * 0.05,
        }
    }

    /// Power of one component in watts.
    pub fn component_w(&self, c: RouterPowerComponent) -> f64 {
        match c {
            RouterPowerComponent::Links => self.link_w,
            RouterPowerComponent::Buffers => self.buffers_w,
            RouterPowerComponent::Crossbar => self.crossbar_w,
            RouterPowerComponent::Allocators => self.allocators_w,
            RouterPowerComponent::Clock => self.clock_w,
            RouterPowerComponent::Miscellaneous => self.misc_w,
        }
    }

    /// Total router power in watts.
    pub fn total_w(&self) -> f64 {
        RouterPowerComponent::ALL
            .iter()
            .map(|c| self.component_w(*c))
            .sum()
    }

    /// Fraction of total power in `c`, in `[0, 1]`.
    pub fn fraction(&self, c: RouterPowerComponent) -> f64 {
        self.component_w(c) / self.total_w()
    }
}

impl Default for RouterPowerBudget {
    fn default() -> Self {
        Self::paper()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn links_are_82_4_percent() {
        let b = RouterPowerBudget::paper();
        assert!((b.fraction(RouterPowerComponent::Links) - 0.824).abs() < 1e-9);
    }

    #[test]
    fn allocators_are_81_mw() {
        let b = RouterPowerBudget::paper();
        assert!((b.component_w(RouterPowerComponent::Allocators) - 0.081).abs() < 1e-12);
    }

    #[test]
    fn fractions_sum_to_one() {
        let b = RouterPowerBudget::paper();
        let sum: f64 = RouterPowerComponent::ALL
            .iter()
            .map(|c| b.fraction(*c))
            .sum();
        assert!((sum - 1.0).abs() < 1e-12);
    }

    #[test]
    fn link_power_matches_channel_math() {
        // 4 ports x 8 links x 200 mW.
        let b = RouterPowerBudget::paper();
        assert!((b.component_w(RouterPowerComponent::Links) - 6.4).abs() < 1e-12);
        // 64 routers' worth must equal the paper's 409.6 W network budget.
        assert!((64.0 * b.component_w(RouterPowerComponent::Links) - 409.6).abs() < 1e-9);
    }

    #[test]
    fn names_are_distinct() {
        let mut names: Vec<&str> = RouterPowerComponent::ALL.iter().map(|c| c.name()).collect();
        names.sort_unstable();
        names.dedup();
        assert_eq!(names.len(), RouterPowerComponent::ALL.len());
    }
}
