use std::error::Error;
use std::fmt;

/// Error constructing or indexing a [`crate::VfTable`].
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum LevelError {
    /// The table was constructed with no levels.
    Empty,
    /// Frequencies are not strictly increasing at the given index.
    NonMonotonicFrequency(usize),
    /// Voltages are not monotonically non-decreasing at the given index.
    NonMonotonicVoltage(usize),
    /// Power values are not monotonically non-decreasing at the given index.
    NonMonotonicPower(usize),
    /// A voltage or power value is not finite and positive.
    InvalidValue(usize),
    /// A level index is out of range for the table.
    OutOfRange {
        /// The requested level index.
        index: usize,
        /// The number of levels in the table.
        len: usize,
    },
    /// A level's predicted bit-error rate exceeds the reliability floor the
    /// builder was asked to enforce (see
    /// [`crate::VfTableBuilder::require_ber`]).
    BerFloorViolated(usize),
}

impl fmt::Display for LevelError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            LevelError::Empty => write!(f, "voltage/frequency table has no levels"),
            LevelError::NonMonotonicFrequency(i) => {
                write!(f, "frequency does not strictly increase at level {i}")
            }
            LevelError::NonMonotonicVoltage(i) => {
                write!(f, "voltage decreases at level {i}")
            }
            LevelError::NonMonotonicPower(i) => {
                write!(f, "power decreases at level {i}")
            }
            LevelError::InvalidValue(i) => {
                write!(f, "non-finite or non-positive value at level {i}")
            }
            LevelError::OutOfRange { index, len } => {
                write!(
                    f,
                    "level index {index} out of range for table of {len} levels"
                )
            }
            LevelError::BerFloorViolated(i) => {
                write!(
                    f,
                    "predicted bit-error rate at level {i} exceeds the required floor"
                )
            }
        }
    }
}

impl Error for LevelError {}

/// Error starting a level transition on a [`crate::DvsChannel`].
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum TransitionError {
    /// The channel is already transitioning; a new transition cannot start
    /// until the current one completes.
    Busy {
        /// Cycle at which the in-flight transition completes its current phase.
        busy_until: u64,
    },
    /// The channel is already at the top level and cannot step up.
    AtMaxLevel,
    /// The channel is already at the bottom level and cannot step down.
    AtMinLevel,
}

impl fmt::Display for TransitionError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            TransitionError::Busy { busy_until } => {
                write!(f, "channel is mid-transition until cycle {busy_until}")
            }
            TransitionError::AtMaxLevel => write!(f, "channel is already at the maximum level"),
            TransitionError::AtMinLevel => write!(f, "channel is already at the minimum level"),
        }
    }
}

impl Error for TransitionError {}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn display_is_nonempty_and_lowercase() {
        let errors: Vec<Box<dyn Error>> = vec![
            Box::new(LevelError::Empty),
            Box::new(LevelError::NonMonotonicFrequency(3)),
            Box::new(LevelError::OutOfRange { index: 12, len: 10 }),
            Box::new(LevelError::BerFloorViolated(0)),
            Box::new(TransitionError::Busy { busy_until: 42 }),
            Box::new(TransitionError::AtMaxLevel),
        ];
        for e in errors {
            let msg = e.to_string();
            assert!(!msg.is_empty());
            assert!(msg.chars().next().unwrap().is_lowercase());
            assert!(!msg.ends_with('.'));
        }
    }

    #[test]
    fn errors_are_send_sync() {
        fn assert_send_sync<T: Send + Sync>() {}
        assert_send_sync::<LevelError>();
        assert_send_sync::<TransitionError>();
    }
}
