//! Integration tests of the link-fault subsystem: zero-rate transparency,
//! corruption + retransmission under load, determinism, outages, and
//! fail-stop, all on top of the full router/network stack.

use dvslink::{NoiseModel, VfTable};
use netsim::{FaultConfig, Network, NetworkConfig, OutageConfig, RecoveryConfig, Topology};

fn cfg_4x4() -> NetworkConfig {
    let mut cfg = NetworkConfig::paper_8x8();
    cfg.topology = Topology::mesh(4, 2).unwrap();
    cfg
}

/// A `ber_scale` that makes the *top* level's per-bit error probability
/// equal `p_bit` under the paper noise model (the paper-level BER is
/// ~1e-15, far too small to exercise in a short test).
fn scale_for_p_bit(p_bit: f64) -> f64 {
    let noise = NoiseModel::paper();
    let table = VfTable::paper();
    let ber = noise.ber(table.get(table.top()).unwrap());
    assert!(ber > 0.0 && ber < 1e-12, "paper top-level BER ~1e-15");
    p_bit / ber
}

fn inject_pattern(net: &mut Network, packets: u64) {
    let n = net.topology().num_nodes() as u64;
    for i in 0..packets {
        net.inject((i * 7 % n) as usize, (i * 11 % n) as usize);
    }
}

fn conservation_holds(net: &Network) -> bool {
    let injected = net.stats().flits_injected() as usize;
    let accounted = net.stats().flits_delivered() as usize
        + net.flits_in_network()
        + net.flits_in_source_queues();
    injected == accounted
}

#[test]
fn zero_fault_rate_is_transparent() {
    let run = |faults: Option<FaultConfig>| {
        let mut cfg = cfg_4x4();
        cfg.faults = faults;
        let mut net = Network::new(cfg).unwrap();
        inject_pattern(&mut net, 200);
        net.run(5_000);
        (
            net.stats().packets_delivered(),
            net.stats().flits_delivered(),
            net.stats().latency().mean(),
            net.flits_in_network(),
            net.energy_j(),
            net.fault_totals(),
        )
    };
    let off = run(None);
    let zero = run(Some(FaultConfig::new(0x5eed).with_ber_scale(0.0)));
    // Everything the simulator measures is identical; only the fault
    // counters differ (absent vs present-but-clean).
    assert_eq!(off.0, zero.0);
    assert_eq!(off.1, zero.1);
    assert_eq!(off.2, zero.2);
    assert_eq!(off.3, zero.3);
    assert_eq!(off.4, zero.4);
    assert!(off.5.is_none());
    let totals = zero.5.expect("fault subsystem enabled");
    assert!(totals.transmitted > 0);
    assert_eq!(totals.corrupted, 0);
    assert_eq!(totals.retransmissions, 0);
    assert_eq!(totals.residual_errors, 0);
    assert_eq!(totals.failed_links, 0);
}

#[test]
fn corruption_retransmits_and_still_delivers() {
    // p_flit ~ 0.05 per crossing: plenty of corruption, negligible odds of
    // nine consecutive retries (0.05^9) so no link fail-stops.
    let mut cfg = cfg_4x4();
    cfg.faults = Some(FaultConfig::new(42).with_ber_scale(scale_for_p_bit(1.5e-3)));
    let mut net = Network::new(cfg).unwrap();
    inject_pattern(&mut net, 400);
    for _ in 0..1_000 {
        net.step();
        assert!(conservation_holds(&net), "flits leaked at t={}", net.time());
    }
    net.run(60_000);
    assert_eq!(net.stats().packets_delivered(), 400);
    assert!(conservation_holds(&net));
    let totals = net.fault_totals().expect("faults enabled");
    assert!(totals.corrupted > 0, "no corruption at p_flit ~ 0.05");
    assert!(totals.retransmissions > 0);
    assert_eq!(totals.failed_links, 0);
    // Detected corruption == retransmissions (each Nack is one detected
    // corrupt crossing); residuals are delivered anyway.
    assert_eq!(
        totals.corrupted - totals.residual_errors,
        totals.retransmissions
    );
    assert_eq!(
        totals.delivered_attempts(),
        totals.transmitted - totals.retransmissions
    );
}

#[test]
fn retransmissions_burn_extra_energy() {
    let run = |faults: Option<FaultConfig>| {
        let mut cfg = cfg_4x4();
        cfg.faults = faults;
        let mut net = Network::new(cfg).unwrap();
        inject_pattern(&mut net, 200);
        net.run(20_000);
        net.energy_j()
    };
    let clean = run(None);
    let noisy = run(Some(
        FaultConfig::new(7).with_ber_scale(scale_for_p_bit(3e-3)),
    ));
    assert!(
        noisy > clean,
        "retransmissions must add energy: {noisy} vs {clean}"
    );
}

#[test]
fn same_seed_is_bit_identical() {
    let run = |seed: u64| {
        let mut cfg = cfg_4x4();
        cfg.faults = Some(FaultConfig::new(seed).with_ber_scale(scale_for_p_bit(1.5e-3)));
        let mut net = Network::new(cfg).unwrap();
        inject_pattern(&mut net, 300);
        net.run(30_000);
        (
            net.fault_totals(),
            net.stats().packets_delivered(),
            net.stats().latency().mean(),
        )
    };
    assert_eq!(run(3), run(3));
    let a = run(3).0.unwrap();
    let b = run(4).0.unwrap();
    assert_ne!(
        (a.corrupted, a.retransmissions),
        (b.corrupted, b.retransmissions),
        "different seeds must draw different fault schedules"
    );
}

#[test]
fn outages_stall_traffic_without_losing_flits() {
    let mut cfg = cfg_4x4();
    cfg.faults = Some(
        FaultConfig::new(11)
            .with_ber_scale(0.0)
            .with_outage(OutageConfig {
                rate_per_cycle: 2e-4,
                duration_cycles: 50,
            }),
    );
    let mut net = Network::new(cfg).unwrap();
    inject_pattern(&mut net, 400);
    net.run(80_000);
    let totals = net.fault_totals().expect("faults enabled");
    assert!(totals.outages > 0, "expected outage episodes");
    assert!(totals.outage_cycles > 0);
    assert_eq!(net.stats().packets_delivered(), 400);
    assert!(conservation_holds(&net));
}

#[test]
fn hopeless_links_fail_stop_but_conserve_flits() {
    // p_flit ~ 0.6 with a 2-retry budget: links die quickly; the network
    // must not lose or fabricate flits even so.
    let mut cfg = cfg_4x4();
    cfg.faults = Some(
        FaultConfig::new(99)
            .with_ber_scale(scale_for_p_bit(0.03))
            .with_recovery(RecoveryConfig {
                max_retries: 2,
                ..RecoveryConfig::default()
            }),
    );
    let mut net = Network::new(cfg).unwrap();
    inject_pattern(&mut net, 200);
    net.run(30_000);
    let totals = net.fault_totals().expect("faults enabled");
    assert!(totals.failed_links > 0, "expected fail-stopped links");
    assert!(
        net.stats().packets_delivered() < 200,
        "dead links must strand some traffic"
    );
    assert!(conservation_holds(&net));
}

#[test]
fn snapshot_carries_fault_counters() {
    let mut cfg = cfg_4x4();
    cfg.faults = Some(FaultConfig::new(1).with_ber_scale(scale_for_p_bit(1.5e-3)));
    let mut net = Network::new(cfg).unwrap();
    inject_pattern(&mut net, 200);
    net.run(10_000);
    let snap = netsim::NetworkSnapshot::capture(&net);
    let from_snap = snap.fault_totals().expect("faults enabled");
    assert_eq!(Some(from_snap), net.fault_totals());
    assert!(snap.channels().iter().all(|c| c.fault.is_some()));
}
