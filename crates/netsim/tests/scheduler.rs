//! Integration tests of the active-set scheduler's fast paths: a drained
//! network must fast-forward through idle stretches without executing
//! per-router cycles, while remaining observably identical to the
//! full-scan loop.

use netsim::{Network, NetworkConfig, NetworkSnapshot, SchedulerMode, Topology};

fn cfg(mode: SchedulerMode) -> NetworkConfig {
    let mut cfg = NetworkConfig::paper_8x8();
    cfg.topology = Topology::mesh(4, 2).unwrap();
    cfg.scheduler = mode;
    cfg
}

#[test]
fn drained_network_fast_forwards_without_router_work() {
    let mut net = Network::new(cfg(SchedulerMode::ActiveSet)).unwrap();
    net.inject(0, 15);
    net.run(2_000);
    assert_eq!(net.stats().packets_delivered(), 1, "network must drain");
    assert_eq!(net.flits_in_network(), 0);

    let before = net.scheduler_stats();
    let idle_cycles = 100_000u64;
    net.run(idle_cycles);
    let after = net.scheduler_stats();

    let fast_forwarded = after.fast_forwarded_cycles - before.fast_forwarded_cycles;
    let stepped = after.cycles_stepped - before.cycles_stepped;
    let executed = after.router_cycles_executed - before.router_cycles_executed;
    assert_eq!(
        fast_forwarded + stepped,
        idle_cycles,
        "every cycle is either stepped or skipped"
    );
    assert!(
        fast_forwarded > idle_cycles / 2,
        "a drained network should skip most cycles, skipped only {fast_forwarded}"
    );
    // Routers still wake for measurement-window boundaries, but nothing
    // else: far below the 16 routers x 100k cycles a full scan would run.
    let full_scan_work = 16 * idle_cycles;
    assert!(
        executed < full_scan_work / 20,
        "idle run executed {executed} router-cycles (full scan would run {full_scan_work})"
    );
    assert_eq!(
        net.stats().packets_delivered(),
        1,
        "idle run delivers nothing"
    );
}

#[test]
fn fast_forwarded_idle_matches_full_scan_observably() {
    let run = |mode| {
        let mut net = Network::new(cfg(mode)).unwrap();
        for (s, d) in [(0, 15), (3, 12), (5, 6)] {
            net.inject(s, d);
        }
        net.run(2_000); // drain
        net.run(50_000); // long idle stretch
        net.inject(15, 0); // wake and drain again
        net.run(2_000);
        (
            net.time(),
            NetworkSnapshot::capture(&net),
            *net.stats(),
            net.energy_j().to_bits(),
        )
    };
    assert_eq!(
        run(SchedulerMode::FullScan),
        run(SchedulerMode::ActiveSet),
        "idle fast-forward must be invisible to every observer"
    );
}

#[test]
fn full_scan_mode_never_fast_forwards() {
    let mut net = Network::new(cfg(SchedulerMode::FullScan)).unwrap();
    net.run(5_000);
    let s = net.scheduler_stats();
    assert_eq!(s.fast_forwarded_cycles, 0);
    assert_eq!(s.cycles_stepped, 5_000);
    assert_eq!(s.router_cycles_executed, 16 * 5_000);
}
