//! Property tests pinning the accuracy of `LatencyStats::quantile`'s
//! power-of-two histogram estimate against exact quantiles computed from
//! the sorted sample.
//!
//! A latency in bucket `i` lies in `[2^i, 2^(i+1))` and is estimated by the
//! geometric midpoint `2^i·√2` clamped to the recorded `[min, max]`, so for
//! any sample the estimate at quantile `q` can deviate from the exact order
//! statistic by at most a factor of `√2` in either direction (clamping only
//! moves the estimate toward the exact value, which always lies inside
//! `[min, max]`). Latencies 0 and 1 share bucket 0; the clamp pins an
//! all-zero sample to 0 exactly, and a lone 1 to 1 exactly.

use netsim::LatencyStats;
use proptest::prelude::*;

const SQRT_2: f64 = std::f64::consts::SQRT_2;
const EPS: f64 = 1e-9;

/// The exact order statistic `quantile` targets: the element at rank
/// `ceil(q·n)` (1-based, clamped to at least 1) of the sorted sample.
fn exact_quantile(sorted: &[u64], q: f64) -> u64 {
    let target = (q * sorted.len() as f64).ceil().max(1.0) as usize;
    sorted[target - 1]
}

proptest! {
    #[test]
    fn estimate_is_within_sqrt2_of_exact(
        sample in prop::collection::vec(0u64..1_000_000_000, 1..400),
        q_millis in 0u32..=1000,
    ) {
        let mut sample = sample;
        let q = f64::from(q_millis) / 1000.0;
        let mut stats = LatencyStats::new();
        for &lat in &sample {
            stats.record(lat);
        }
        sample.sort_unstable();
        let exact = exact_quantile(&sample, q);
        let est = stats.quantile(q).expect("non-empty sample");
        if exact <= 1 {
            // Bucket 0 holds both 0 and 1 and estimates √2.
            prop_assert!(
                est <= SQRT_2 + EPS,
                "exact {exact} estimated as {est}"
            );
        } else {
            let ratio = est / exact as f64;
            prop_assert!(
                (1.0 / SQRT_2 - EPS..=SQRT_2 + EPS).contains(&ratio),
                "exact {exact} estimated as {est} (ratio {ratio})"
            );
        }
    }

    #[test]
    fn estimate_is_monotone_in_q(
        sample in prop::collection::vec(0u64..1_000_000_000, 1..400),
        a in 0u32..=1000,
        b in 0u32..=1000,
    ) {
        let (q_lo, q_hi) = (
            f64::from(a.min(b)) / 1000.0,
            f64::from(a.max(b)) / 1000.0,
        );
        let mut stats = LatencyStats::new();
        for &lat in &sample {
            stats.record(lat);
        }
        let lo = stats.quantile(q_lo).unwrap();
        let hi = stats.quantile(q_hi).unwrap();
        prop_assert!(lo <= hi, "quantile({q_lo}) = {lo} > quantile({q_hi}) = {hi}");
    }

    #[test]
    fn estimate_stays_within_recorded_range(
        sample in prop::collection::vec(0u64..1_000_000_000, 1..400),
        q_millis in 0u32..=1000,
    ) {
        let q = f64::from(q_millis) / 1000.0;
        let mut stats = LatencyStats::new();
        for &lat in &sample {
            stats.record(lat);
        }
        let est = stats.quantile(q).expect("non-empty sample");
        let min = *sample.iter().min().unwrap() as f64;
        let max = *sample.iter().max().unwrap() as f64;
        prop_assert!(
            (min..=max).contains(&est),
            "quantile({q}) = {est} outside recorded range [{min}, {max}]"
        );
    }
}

#[test]
fn zero_latency_sample_estimates_zero() {
    // Local delivery in the same cycle is legal; the histogram must not
    // lose it or panic on `log2(0)`, and the clamp must pin the estimate
    // to the recorded range rather than report bucket 0's midpoint `√2`.
    let mut stats = LatencyStats::new();
    for _ in 0..10 {
        stats.record(0);
    }
    for q in [0.0, 0.5, 1.0] {
        let est = stats.quantile(q).unwrap();
        assert!(est.abs() < EPS, "q {q} estimated {est}, expected 0");
    }
    assert_eq!(stats.min(), Some(0));
    assert_eq!(stats.max(), Some(0));
}

#[test]
fn top_of_bucket_sample_cannot_exceed_max() {
    // 600 lands in bucket 9 = [512, 1024), whose raw midpoint 512·√2 ≈ 724
    // exceeds the sample's max; the clamp must return exactly 600.
    let mut stats = LatencyStats::new();
    stats.record(600);
    for q in [0.0, 0.5, 1.0] {
        let est = stats.quantile(q).unwrap();
        assert!((est - 600.0).abs() < EPS, "q {q} estimated {est}");
    }
}

#[test]
fn bottom_of_bucket_sample_cannot_undershoot_min() {
    // 800 and 900 both land in bucket 9, whose raw midpoint ≈ 724 sits
    // below the sample's min; the clamp must lift every quantile to 800.
    let mut stats = LatencyStats::new();
    stats.record(800);
    stats.record(900);
    for q in [0.0, 0.5, 1.0] {
        let est = stats.quantile(q).unwrap();
        assert!((est - 800.0).abs() < EPS, "q {q} estimated {est}");
    }
}

#[test]
fn single_sample_hits_its_own_bucket_at_every_quantile() {
    let mut stats = LatencyStats::new();
    stats.record(100);
    for q in [0.0, 0.25, 0.5, 1.0] {
        let est = stats.quantile(q).unwrap();
        let ratio = est / 100.0;
        assert!(
            (1.0 / SQRT_2 - EPS..=SQRT_2 + EPS).contains(&ratio),
            "q {q} estimated {est}"
        );
    }
}
