use std::error::Error;
use std::fmt;

use dvslink::{DvsChannel, RegulatorParams, TransitionTiming, VfTable};
use faults::{ChannelFaultModel, FaultConfig, FaultConfigError, FaultStats};
use obs::{Event, NoopTracer, Tracer};

use crate::flit::make_packet;
use crate::policy::{LinkPolicy, StaticLevelPolicy};
use crate::router::{
    CreditWire, Delivery, FlitWire, Router, RouterParams, CREDIT_WIRE_LATENCY, FLIT_WIRE_LATENCY,
};
use crate::{
    Cycles, InputPortStats, NetStats, NodeId, OutputPortStats, PacketId, PortId, Routing, Topology,
    LOCAL_PORT,
};

/// Configuration of a [`Network`].
///
/// [`NetworkConfig::paper_8x8`] reproduces the paper's experimental setup;
/// every field can be overridden before constructing the network.
#[derive(Debug, Clone)]
pub struct NetworkConfig {
    /// Network topology.
    pub topology: Topology,
    /// Virtual channels per input port.
    pub vcs: usize,
    /// Flit buffers per input port (split evenly across VCs).
    pub buf_per_port: usize,
    /// Flits per packet.
    pub packet_len: usize,
    /// Total router pipeline depth in stages. The allocation stages (buffer
    /// write, routing, VC allocation, switch allocation) are modeled
    /// explicitly; the remainder becomes a delay line between switch
    /// traversal and link transmission.
    pub router_pipeline_stages: u32,
    /// Output staging capacity in flits; `0` selects an automatic value that
    /// never throttles a full-rate link.
    pub staging_capacity: usize,
    /// Routing algorithm.
    pub routing: Routing,
    /// Voltage/frequency table shared by all channels.
    pub table: VfTable,
    /// Transition timing shared by all channels.
    pub timing: TransitionTiming,
    /// Regulator parameters shared by all channels.
    pub regulator: RegulatorParams,
    /// Serial links bundled per channel (the paper uses 8).
    pub links_per_channel: u32,
    /// Level every channel starts at.
    pub initial_level: usize,
    /// Link-fault injection and recovery configuration. `None` disables the
    /// fault subsystem entirely: the hot path is unchanged and all outputs
    /// are byte-identical to a build without fault support.
    pub faults: Option<FaultConfig>,
    /// Cycle-loop scheduling algorithm. [`SchedulerMode::ActiveSet`] (the
    /// default) skips quiescent routers and fast-forwards a quiescent
    /// network; it is bit-identical to [`SchedulerMode::FullScan`], which
    /// stays available as the reference schedule for equivalence tests.
    pub scheduler: SchedulerMode,
}

/// Which stepping algorithm drives the cycle loop. See DESIGN.md §9.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Default)]
pub enum SchedulerMode {
    /// Visit every router on every cycle — the reference schedule.
    FullScan,
    /// Quiescence-aware stepping: only routers with work (or a due history
    /// window / DVS phase boundary) run each cycle; the idle counter drift
    /// of skipped routers is replayed in closed form, and `run` jumps a
    /// fully quiescent network straight to its next scheduled event.
    /// Bit-identical to `FullScan`: same snapshots, stats, energy ledgers,
    /// and trace event streams.
    #[default]
    ActiveSet,
}

/// Counters describing how the cycle-loop scheduler spent its time.
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq)]
pub struct SchedulerStats {
    /// Individual router-cycles executed (one per router per stepped cycle
    /// it was visited in).
    pub router_cycles_executed: u64,
    /// Cycles advanced through [`Network::step`].
    pub cycles_stepped: u64,
    /// Cycles [`Network::run`] skipped wholesale because the network was
    /// quiescent (no hot routers, nothing on the wires).
    pub fast_forwarded_cycles: u64,
}

/// Longest wire latency any delivery can take, across every V/f level of
/// `table`. Serialization at slow levels is modeled by the per-port rate
/// accumulator rather than by stretching the wire, so the latency is
/// level-independent today — but the delivery rings are sized from this
/// function so a future level-dependent wire model only has to change it.
fn max_wire_latency(_table: &VfTable) -> Cycles {
    FLIT_WIRE_LATENCY.max(CREDIT_WIRE_LATENCY)
}

impl NetworkConfig {
    /// The paper's setup: 8x8 mesh, 2 VCs, 128 flit buffers/port, 5-flit
    /// packets, 13-stage routers, 8-link channels on the 10-level table with
    /// conservative transition timing, starting at full speed.
    pub fn paper_8x8() -> Self {
        Self {
            topology: Topology::mesh(8, 2).expect("8x8 mesh is valid"),
            vcs: 2,
            buf_per_port: 128,
            packet_len: 5,
            router_pipeline_stages: 13,
            staging_capacity: 0,
            routing: Routing::DimensionOrder,
            table: VfTable::paper(),
            timing: TransitionTiming::paper_conservative(),
            regulator: RegulatorParams::paper(),
            links_per_channel: 8,
            initial_level: VfTable::paper().top(),
            faults: None,
            scheduler: SchedulerMode::default(),
        }
    }
}

/// Error constructing a [`Network`].
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum NetworkError {
    /// At least one virtual channel is required.
    NoVirtualChannels,
    /// Buffers must split evenly across VCs with at least one flit per VC.
    BadBufferSplit {
        /// Configured buffers per port.
        buf_per_port: usize,
        /// Configured VC count.
        vcs: usize,
    },
    /// Packet length must be in `1..=255`.
    BadPacketLength(usize),
    /// The initial level is out of range for the table.
    BadInitialLevel {
        /// Configured initial level.
        level: usize,
        /// Table size.
        table_len: usize,
    },
    /// Channels must bundle at least one link.
    NoLinks,
    /// The fault configuration is inconsistent.
    BadFaultConfig(FaultConfigError),
}

impl fmt::Display for NetworkError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            NetworkError::NoVirtualChannels => write!(f, "at least one virtual channel is required"),
            NetworkError::BadBufferSplit { buf_per_port, vcs } => write!(
                f,
                "buffer size {buf_per_port} does not split evenly over {vcs} VCs with at least one flit each"
            ),
            NetworkError::BadPacketLength(l) => {
                write!(f, "packet length {l} is outside 1..=255")
            }
            NetworkError::BadInitialLevel { level, table_len } => {
                write!(f, "initial level {level} out of range for table of {table_len} levels")
            }
            NetworkError::NoLinks => write!(f, "channels must bundle at least one link"),
            NetworkError::BadFaultConfig(e) => write!(f, "bad fault configuration: {e}"),
        }
    }
}

impl Error for NetworkError {}

/// A simulated interconnection network: routers, DVS channels, wires, and
/// global time.
///
/// Drive it by injecting packets ([`inject`](Self::inject)) and advancing
/// one router cycle at a time ([`step`](Self::step)); read results from
/// [`stats`](Self::stats) and the power accessors.
///
/// The network is generic over a [`Tracer`] that receives typed events
/// from the router hot path. The default [`NoopTracer`] has
/// `ENABLED = false`, so the untraced build monomorphizes all tracing out;
/// use [`Network::with_tracer`] to attach an [`obs::EventLog`] (or any
/// custom sink).
pub struct Network<T: Tracer = NoopTracer> {
    topo: Topology,
    routers: Vec<Router>,
    time: Cycles,
    next_packet: PacketId,
    packet_len: usize,
    stats: NetStats,
    // Wires bucketed by arrival cycle masked to the ring size (a power of
    // two derived from the maximum wire latency), so delivery is
    // O(arrivals) instead of a scan of everything in flight. Pushes assert
    // the arrival fits the ring — an arrival farther out would alias an
    // earlier slot and silently corrupt delivery order.
    flit_ring: Vec<Vec<FlitWire>>,
    credit_ring: Vec<Vec<CreditWire>>,
    ring_mask: u64,
    /// Flits + credits currently on wires; the quiescence fast path may
    /// only fire when this is zero.
    wires_in_flight: usize,
    mode: SchedulerMode,
    sched: SchedulerStats,
    // Scratch buffers reused across cycles.
    credit_buf: Vec<CreditWire>,
    flit_buf: Vec<FlitWire>,
    delivery_buf: Vec<Delivery>,
    links_per_channel: u32,
    max_channel_power_w: f64,
    energy_rebase_j: f64,
    tracer: T,
}

impl Network<NoopTracer> {
    /// Build a network where every channel keeps its initial level (the
    /// non-DVS baseline). Use [`Network::with_policies`] to attach a DVS
    /// policy per output port.
    ///
    /// # Errors
    ///
    /// Returns [`NetworkError`] for inconsistent configuration values.
    pub fn new(config: NetworkConfig) -> Result<Self, NetworkError> {
        Self::with_policies(config, |_, _| Box::new(StaticLevelPolicy::default()))
    }

    /// Build a network, constructing one [`LinkPolicy`] per output port via
    /// `make_policy(node, port)`.
    ///
    /// # Errors
    ///
    /// Returns [`NetworkError`] for inconsistent configuration values.
    pub fn with_policies(
        config: NetworkConfig,
        make_policy: impl FnMut(NodeId, PortId) -> Box<dyn LinkPolicy>,
    ) -> Result<Self, NetworkError> {
        Self::with_tracer(config, make_policy, NoopTracer)
    }
}

impl<T: Tracer> Network<T> {
    /// Build a network with per-port policies and an attached event tracer.
    /// The tracer receives every [`obs::Event`] the simulator emits; pass
    /// an [`obs::EventLog`] to collect them, or [`NoopTracer`] (via
    /// [`Network::new`]/[`Network::with_policies`]) for the zero-cost
    /// untraced build.
    ///
    /// # Errors
    ///
    /// Returns [`NetworkError`] for inconsistent configuration values.
    pub fn with_tracer(
        config: NetworkConfig,
        mut make_policy: impl FnMut(NodeId, PortId) -> Box<dyn LinkPolicy>,
        tracer: T,
    ) -> Result<Self, NetworkError> {
        if config.vcs == 0 {
            return Err(NetworkError::NoVirtualChannels);
        }
        if config.buf_per_port < config.vcs || !config.buf_per_port.is_multiple_of(config.vcs) {
            return Err(NetworkError::BadBufferSplit {
                buf_per_port: config.buf_per_port,
                vcs: config.vcs,
            });
        }
        if config.packet_len == 0 || config.packet_len > 255 {
            return Err(NetworkError::BadPacketLength(config.packet_len));
        }
        if config.initial_level >= config.table.len() {
            return Err(NetworkError::BadInitialLevel {
                level: config.initial_level,
                table_len: config.table.len(),
            });
        }
        if config.links_per_channel == 0 {
            return Err(NetworkError::NoLinks);
        }
        if let Some(fc) = &config.faults {
            fc.validate().map_err(NetworkError::BadFaultConfig)?;
        }
        let pipeline_extra = Cycles::from(config.router_pipeline_stages.saturating_sub(4));
        let staging_cap = if config.staging_capacity == 0 {
            pipeline_extra as usize + 4
        } else {
            config.staging_capacity
        };
        let params = RouterParams {
            vcs: config.vcs,
            buf_per_port: config.buf_per_port,
            staging_cap,
            routing: config.routing,
            pipeline_extra,
        };
        let topo = config.topology.clone();
        let routers = topo
            .nodes()
            .map(|id| {
                Router::new(id, &topo, &params, |node, port| {
                    let channel = DvsChannel::new(
                        config.table.clone(),
                        config.timing,
                        config.regulator,
                        config.initial_level,
                    )
                    .with_link_count(config.links_per_channel);
                    let fault = config.faults.as_ref().map(|fc| {
                        ChannelFaultModel::new(fc, &config.table, node as u64, port as u64)
                    });
                    (channel, make_policy(node, port), fault)
                })
            })
            .collect();
        let max_channel_power_w =
            config.table.max().power_w() * f64::from(config.links_per_channel);
        let ring_len = (max_wire_latency(&config.table) + 1).next_power_of_two() as usize;
        Ok(Self {
            topo,
            routers,
            time: 0,
            next_packet: 0,
            packet_len: config.packet_len,
            stats: NetStats::new(),
            flit_ring: (0..ring_len).map(|_| Vec::new()).collect(),
            credit_ring: (0..ring_len).map(|_| Vec::new()).collect(),
            ring_mask: ring_len as u64 - 1,
            wires_in_flight: 0,
            mode: config.scheduler,
            sched: SchedulerStats::default(),
            credit_buf: Vec::new(),
            flit_buf: Vec::new(),
            delivery_buf: Vec::new(),
            links_per_channel: config.links_per_channel,
            max_channel_power_w,
            energy_rebase_j: 0.0,
            tracer,
        })
    }

    /// The attached tracer.
    pub fn tracer(&self) -> &T {
        &self.tracer
    }

    /// The attached tracer, mutably (e.g. to adjust an event log mid-run).
    pub fn tracer_mut(&mut self) -> &mut T {
        &mut self.tracer
    }

    /// Consume the network and return the tracer with everything it
    /// collected.
    pub fn into_tracer(self) -> T {
        self.tracer
    }

    /// The network topology.
    pub fn topology(&self) -> &Topology {
        &self.topo
    }

    /// Current simulation time in router cycles.
    pub fn time(&self) -> Cycles {
        self.time
    }

    /// Flits per packet.
    pub fn packet_len(&self) -> usize {
        self.packet_len
    }

    /// Create a packet from `src` to `dest` at the current cycle and queue
    /// it at the source. Latency accounting starts now (source queuing time
    /// is part of packet latency, as in the paper).
    ///
    /// # Panics
    ///
    /// Panics if `src` or `dest` is out of range.
    pub fn inject(&mut self, src: NodeId, dest: NodeId) -> PacketId {
        assert!(src < self.topo.num_nodes(), "source {src} out of range");
        assert!(
            dest < self.topo.num_nodes(),
            "destination {dest} out of range"
        );
        let id = self.next_packet;
        self.next_packet += 1;
        let flits = make_packet(id, src, dest, self.time, self.packet_len);
        self.stats.on_inject(flits.len());
        let r = &mut self.routers[src];
        if self.mode == SchedulerMode::ActiveSet {
            // Replay any skipped idle cycles before the queue gains work,
            // then mark the router hot so the next step visits it.
            r.catch_up(self.time);
            r.hot = true;
        }
        r.source_queue.extend(flits);
        if T::ENABLED {
            self.tracer.record(Event::PacketInject {
                t: self.time,
                src,
                dest,
                packet: id,
            });
        }
        id
    }

    /// Advance the network by one router cycle.
    pub fn step(&mut self) {
        let now = self.time;
        let active = self.mode == SchedulerMode::ActiveSet;
        self.sched.cycles_stepped += 1;
        // 1. Deliver flits and credits whose wire latency has elapsed.
        // Under the active-set schedule an arrival first replays the
        // receiver's skipped idle cycles (the drift projection depends on
        // the pre-arrival credit state) and then marks it hot.
        let slot = (now & self.ring_mask) as usize;
        let mut flits = std::mem::take(&mut self.flit_ring[slot]);
        self.wires_in_flight -= flits.len();
        for w in flits.drain(..) {
            assert_eq!(w.arrival, now, "flit wire delivered at the wrong cycle");
            let r = &mut self.routers[w.router];
            if active {
                r.catch_up(now);
                r.hot = true;
            }
            r.receive_flit(w.in_port, w.vc, w.flit, now);
        }
        self.flit_ring[slot] = flits;
        let mut credits = std::mem::take(&mut self.credit_ring[slot]);
        self.wires_in_flight -= credits.len();
        for w in credits.drain(..) {
            assert_eq!(w.arrival, now, "credit wire delivered at the wrong cycle");
            let r = &mut self.routers[w.router];
            if active {
                r.catch_up(now);
                r.hot = true;
            }
            r.receive_credit(w.out_port, w.vc);
        }
        self.credit_ring[slot] = credits;
        // 2. Per-router cycle: injection, history windows, allocation, and
        // link transmission. Routers interact only via the wire rings read
        // at the top of the *next* cycle, so one pass is equivalent to
        // separate global phases and much friendlier to the cache. The
        // active-set schedule visits — in the same index order — only the
        // routers that are hot (work or fresh arrivals) or due (history
        // window or DVS phase boundary); skipped routers owe nothing this
        // cycle beyond idle drift, replayed on their next wake.
        for i in 0..self.routers.len() {
            let r = &mut self.routers[i];
            if active {
                if !r.hot && r.next_due > now {
                    continue;
                }
                r.catch_up(now);
            }
            r.inject_from_source(now, &mut self.tracer);
            r.cycle(
                &self.topo,
                now,
                &mut self.credit_buf,
                &mut self.flit_buf,
                &mut self.delivery_buf,
                &mut self.tracer,
            );
            if active {
                r.hot = r.always_hot || r.has_work();
                // `next_due` is only consulted while a router is cold (the
                // skip test above and the fast-forward in `run`), so it
                // need only be fresh at the hot->cold transition.
                if !r.hot {
                    r.next_due = r.compute_next_due();
                }
            }
            self.sched.router_cycles_executed += 1;
        }
        for w in self.credit_buf.drain(..) {
            Self::check_arrival(w.arrival, now, self.ring_mask);
            self.wires_in_flight += 1;
            self.credit_ring[(w.arrival & self.ring_mask) as usize].push(w);
        }
        for d in self.delivery_buf.drain(..) {
            self.stats.on_flit_delivered();
            if T::ENABLED {
                self.tracer.record(Event::FlitEject {
                    t: now,
                    node: d.flit.dest,
                    packet: d.flit.packet,
                    seq: d.flit.seq,
                });
            }
            if d.flit.is_tail() {
                let latency = d.ejected_at - d.flit.created_at;
                debug_assert_eq!(
                    d.flit.delay.total(),
                    latency,
                    "latency attribution must sum exactly to measured latency \
                     (packet {} at node {})",
                    d.flit.packet,
                    d.flit.dest
                );
                self.stats.on_packet_delivered(latency, &d.flit.delay);
                if T::ENABLED {
                    self.tracer.record(Event::PacketDelivered {
                        t: now,
                        node: d.flit.dest,
                        packet: d.flit.packet,
                        latency,
                    });
                    self.tracer.record(Event::PacketAttribution {
                        t: now,
                        node: d.flit.dest,
                        packet: d.flit.packet,
                        latency,
                        breakdown: d.flit.delay,
                    });
                }
            }
        }
        for w in self.flit_buf.drain(..) {
            Self::check_arrival(w.arrival, now, self.ring_mask);
            self.wires_in_flight += 1;
            self.flit_ring[(w.arrival & self.ring_mask) as usize].push(w);
        }
        self.time = now + 1;
    }

    /// Release-mode guard on wire pushes: an arrival beyond the ring would
    /// alias an earlier slot and silently corrupt delivery order.
    #[inline]
    fn check_arrival(arrival: Cycles, now: Cycles, ring_mask: u64) {
        assert!(
            arrival > now && arrival - now <= ring_mask,
            "wire arrival {arrival} out of range at cycle {now} \
             (delivery ring holds {} slots)",
            ring_mask + 1
        );
    }

    /// Run `cycles` steps. Under [`SchedulerMode::ActiveSet`] a fully
    /// quiescent network (no hot routers, nothing on the wires) jumps
    /// straight to its next scheduled event — the earliest history-window
    /// boundary or DVS phase completion — instead of stepping through the
    /// empty cycles; the skipped idle drift is replayed in closed form when
    /// a router next wakes or is read.
    pub fn run(&mut self, cycles: Cycles) {
        let end = self.time + cycles;
        while self.time < end {
            if self.mode == SchedulerMode::ActiveSet
                && self.wires_in_flight == 0
                && !self.routers.iter().any(|r| r.hot)
            {
                let next = self
                    .routers
                    .iter()
                    .map(|r| r.next_due)
                    .min()
                    .unwrap_or(Cycles::MAX)
                    .min(end);
                if next > self.time {
                    self.sched.fast_forwarded_cycles += next - self.time;
                    self.time = next;
                    continue;
                }
            }
            self.step();
        }
    }

    /// The scheduling algorithm driving the cycle loop.
    pub fn scheduler_mode(&self) -> SchedulerMode {
        self.mode
    }

    /// Counters describing how the cycle-loop scheduler spent its time
    /// (router-cycles executed, cycles stepped, cycles fast-forwarded).
    pub fn scheduler_stats(&self) -> SchedulerStats {
        self.sched
    }

    /// Measurement counters (latency, throughput, injection).
    pub fn stats(&self) -> &NetStats {
        &self.stats
    }

    /// Reset measurement counters and energy accounting; in-flight traffic
    /// keeps flowing. Call after warm-up so results exclude the transient.
    pub fn begin_measurement(&mut self) {
        self.stats.reset(self.time);
        self.energy_rebase_j = self.total_energy_uncorrected();
        for r in &mut self.routers {
            for o in r.outputs.iter_mut().flatten() {
                if let Some(f) = o.fault.as_mut() {
                    f.reset_stats();
                }
            }
        }
    }

    /// Instantaneous link power of the whole network, in watts.
    pub fn instantaneous_power_w(&self) -> f64 {
        self.routers
            .iter()
            .flat_map(|r| r.outputs.iter().flatten())
            .map(|o| o.channel.power_w())
            .sum()
    }

    fn total_energy_uncorrected(&self) -> f64 {
        self.routers
            .iter()
            .flat_map(|r| r.outputs.iter().flatten())
            .map(|o| o.channel.energy_total_at(self.time))
            .sum()
    }

    /// Link energy consumed since the last [`begin_measurement`]
    /// (or construction), in joules. Includes transition overhead energy.
    pub fn energy_j(&self) -> f64 {
        self.total_energy_uncorrected() - self.energy_rebase_j
    }

    /// Network-wide energy attribution since construction: the sum of every
    /// channel's ledger. Unlike [`energy_j`](Self::energy_j) this is not
    /// rebased at `begin_measurement`; take per-channel ledger deltas (see
    /// `EnergyLedger::since`) for interval attribution.
    pub fn energy_ledger(&self) -> dvslink::EnergyLedger {
        let mut total = dvslink::EnergyLedger::default();
        for o in self.routers.iter().flat_map(|r| r.outputs.iter().flatten()) {
            let l = o.channel.ledger_at(self.time);
            total.active_j += l.active_j;
            total.idle_j += l.idle_j;
            total.transition_j += l.transition_j;
            total.retransmission_j += l.retransmission_j;
        }
        total
    }

    /// Average network link power over the measurement interval, in watts.
    pub fn average_power_w(&self) -> f64 {
        let dt = self.time.saturating_sub(self.stats.measurement_start());
        if dt == 0 {
            0.0
        } else {
            self.energy_j() / (dt as f64 * 1e-9)
        }
    }

    /// Network link power if every channel ran at the top level, in watts —
    /// the non-DVS normalization baseline.
    pub fn max_power_w(&self) -> f64 {
        self.max_channel_power_w * self.channel_count() as f64
    }

    /// Number of inter-router channels instantiated.
    pub fn channel_count(&self) -> usize {
        self.routers
            .iter()
            .map(|r| r.outputs.iter().flatten().count())
            .sum()
    }

    /// Serial links per channel.
    pub fn links_per_channel(&self) -> u32 {
        self.links_per_channel
    }

    /// Voltage-transition overhead energy consumed since construction, in
    /// joules, with the number of transitions — the Stratakos term the
    /// regulator pays on every level change. Not rebased by
    /// [`begin_measurement`](Self::begin_measurement); use deltas for
    /// interval accounting.
    pub fn transition_totals(&self) -> (f64, u64) {
        let mut energy = 0.0;
        let mut count = 0;
        for r in &self.routers {
            for o in r.outputs.iter().flatten() {
                energy += o.channel.meter().transition_j();
                count += o.channel.meter().voltage_transitions();
            }
        }
        (energy, count)
    }

    /// Aggregate channel-transition statistics across the network (steps
    /// initiated up/down, completed, and cycles spent with links disabled).
    pub fn transition_stats(&self) -> dvslink::TransitionStats {
        let mut total = dvslink::TransitionStats::default();
        for r in &self.routers {
            for o in r.outputs.iter().flatten() {
                let s = o.channel.stats();
                total.initiated_up += s.initiated_up;
                total.initiated_down += s.initiated_down;
                total.completed += s.completed;
                total.disabled_cycles += s.disabled_cycles;
            }
        }
        total
    }

    /// Aggregate fault/retransmission counters across every channel since
    /// the last [`begin_measurement`](Self::begin_measurement), or `None`
    /// when the fault subsystem is disabled.
    pub fn fault_totals(&self) -> Option<FaultStats> {
        let mut total: Option<FaultStats> = None;
        for r in &self.routers {
            for o in r.outputs.iter().flatten() {
                if let Some(f) = &o.fault {
                    total
                        .get_or_insert_with(FaultStats::default)
                        .accumulate(&f.stats());
                }
            }
        }
        total
    }

    /// Network-wide router micro-operation counts (buffer reads/writes,
    /// crossbar traversals, arbitrations) since construction.
    pub fn activity(&self) -> crate::ActivityCounters {
        crate::ActivityCounters::total(self.routers.iter().map(|r| &r.activity))
    }

    /// Mean channel level across the network (diagnostic).
    pub fn mean_channel_level(&self) -> f64 {
        let mut sum = 0usize;
        let mut n = 0usize;
        for r in &self.routers {
            for o in r.outputs.iter().flatten() {
                sum += o.channel.level();
                n += 1;
            }
        }
        if n == 0 {
            0.0
        } else {
            sum as f64 / n as f64
        }
    }

    /// Snapshot of the output port `port` of router `node`, or `None` if
    /// that port has no channel (local port or mesh boundary).
    pub fn output_stats(&self, node: NodeId, port: PortId) -> Option<OutputPortStats> {
        self.routers[node].output_stats(port, self.time)
    }

    /// Snapshot of the input port `port` of router `node`.
    pub fn input_stats(&self, node: NodeId, port: PortId) -> InputPortStats {
        self.routers[node].input_stats(port)
    }

    /// The downstream `(router, input port)` of an output port, if wired.
    pub fn downstream(&self, node: NodeId, port: PortId) -> Option<(NodeId, PortId)> {
        if port == LOCAL_PORT {
            return None;
        }
        self.topo.downstream(node, port)
    }

    /// Flits currently inside routers (buffers and staging pipelines) and on
    /// wires — everything injected but neither queued at a source nor
    /// delivered.
    pub fn flits_in_network(&self) -> usize {
        let in_routers: usize = self.routers.iter().map(Router::flits_in_flight).sum();
        let on_wires: usize = self.flit_ring.iter().map(Vec::len).sum();
        in_routers + on_wires
    }

    /// Flits waiting in source queues, not yet inside the network.
    pub fn flits_in_source_queues(&self) -> usize {
        self.routers.iter().map(|r| r.source_queue.len()).sum()
    }
}

impl<T: Tracer> fmt::Debug for Network<T> {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        f.debug_struct("Network")
            .field("nodes", &self.topo.num_nodes())
            .field("time", &self.time)
            .field("in_network", &self.flits_in_network())
            .field("delivered", &self.stats.packets_delivered())
            .finish_non_exhaustive()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn small_net() -> Network {
        let mut cfg = NetworkConfig::paper_8x8();
        cfg.topology = Topology::mesh(4, 2).unwrap();
        Network::new(cfg).unwrap()
    }

    #[test]
    fn config_validation() {
        let mut cfg = NetworkConfig::paper_8x8();
        cfg.vcs = 0;
        assert_eq!(
            Network::new(cfg).err(),
            Some(NetworkError::NoVirtualChannels)
        );

        let mut cfg = NetworkConfig::paper_8x8();
        cfg.buf_per_port = 7;
        cfg.vcs = 2;
        assert!(matches!(
            Network::new(cfg).err(),
            Some(NetworkError::BadBufferSplit { .. })
        ));

        let mut cfg = NetworkConfig::paper_8x8();
        cfg.packet_len = 0;
        assert_eq!(
            Network::new(cfg).err(),
            Some(NetworkError::BadPacketLength(0))
        );

        let mut cfg = NetworkConfig::paper_8x8();
        cfg.initial_level = 10;
        assert!(matches!(
            Network::new(cfg).err(),
            Some(NetworkError::BadInitialLevel { .. })
        ));

        let mut cfg = NetworkConfig::paper_8x8();
        cfg.links_per_channel = 0;
        assert_eq!(Network::new(cfg).err(), Some(NetworkError::NoLinks));
    }

    #[test]
    fn single_packet_delivery_and_latency() {
        let mut net = small_net();
        net.inject(0, 15); // (0,0) -> (3,3), 6 hops
        let mut delivered_at = None;
        for _ in 0..2_000 {
            net.step();
            if net.stats().packets_delivered() == 1 && delivered_at.is_none() {
                delivered_at = Some(net.time());
            }
        }
        assert_eq!(net.stats().packets_delivered(), 1);
        assert_eq!(net.stats().flits_delivered(), 5);
        let latency = net.stats().latency().mean().unwrap();
        // 6 hops x ~13 cycles + serialization; must be in a plausible band.
        assert!(latency > 60.0, "latency {latency} too small");
        assert!(latency < 200.0, "latency {latency} too large");
        assert_eq!(net.flits_in_network(), 0);
        assert_eq!(net.flits_in_source_queues(), 0);
    }

    #[test]
    fn local_delivery_works() {
        let mut net = small_net();
        net.inject(5, 5);
        for _ in 0..200 {
            net.step();
        }
        assert_eq!(net.stats().packets_delivered(), 1);
    }

    #[test]
    fn flit_conservation_under_load() {
        let mut net = small_net();
        // Saturating random-ish traffic, deterministic pattern.
        for i in 0..400u64 {
            let src = (i * 7 % 16) as usize;
            let dest = (i * 11 % 16) as usize;
            net.inject(src, dest);
        }
        for _ in 0..300 {
            net.step();
            let injected = net.stats().flits_injected() as usize;
            let accounted = net.stats().flits_delivered() as usize
                + net.flits_in_network()
                + net.flits_in_source_queues();
            assert_eq!(injected, accounted, "flits leaked at t={}", net.time());
        }
        // Drain completely.
        for _ in 0..30_000 {
            net.step();
        }
        assert_eq!(net.stats().packets_delivered(), 400);
        assert_eq!(net.flits_in_network(), 0);
    }

    #[test]
    fn all_pairs_eventually_deliver() {
        let mut net = small_net();
        let n = net.topology().num_nodes();
        for src in 0..n {
            for dest in 0..n {
                net.inject(src, dest);
            }
        }
        for _ in 0..60_000 {
            net.step();
            if net.stats().packets_delivered() as usize == n * n {
                break;
            }
        }
        assert_eq!(net.stats().packets_delivered() as usize, n * n);
    }

    #[test]
    fn adaptive_routing_delivers_everything() {
        let mut cfg = NetworkConfig::paper_8x8();
        cfg.topology = Topology::mesh(4, 2).unwrap();
        cfg.routing = Routing::MinimalAdaptive;
        let mut net = Network::new(cfg).unwrap();
        let n = net.topology().num_nodes();
        for src in 0..n {
            for dest in 0..n {
                net.inject(src, dest);
            }
        }
        for _ in 0..60_000 {
            net.step();
            if net.stats().packets_delivered() as usize == n * n {
                break;
            }
        }
        assert_eq!(net.stats().packets_delivered() as usize, n * n);
    }

    #[test]
    fn torus_delivers_everything() {
        let mut cfg = NetworkConfig::paper_8x8();
        cfg.topology = Topology::torus(4, 2).unwrap();
        let mut net = Network::new(cfg).unwrap();
        let n = net.topology().num_nodes();
        for src in 0..n {
            for dest in 0..n {
                net.inject(src, dest);
            }
        }
        for _ in 0..80_000 {
            net.step();
            if net.stats().packets_delivered() as usize == n * n {
                break;
            }
        }
        assert_eq!(net.stats().packets_delivered() as usize, n * n);
    }

    #[test]
    fn power_accounting_at_full_speed() {
        let mut net = small_net();
        net.begin_measurement();
        net.run(10_000);
        // Every channel at top level: average power == max power.
        let avg = net.average_power_w();
        let max = net.max_power_w();
        assert!((avg - max).abs() / max < 1e-6, "avg {avg} vs max {max}");
        // 4x4 mesh: 2*4*3*2 = 48 channels * 1.6 W = 76.8 W.
        assert_eq!(net.channel_count(), 48);
        assert!((max - 76.8).abs() < 1e-9);
    }

    #[test]
    fn slow_links_slow_the_network_but_still_deliver() {
        let mut cfg = NetworkConfig::paper_8x8();
        cfg.topology = Topology::mesh(4, 2).unwrap();
        cfg.initial_level = 0; // 125 MHz links
        let mut net = Network::new(cfg).unwrap();
        net.inject(0, 15);
        for _ in 0..5_000 {
            net.step();
        }
        assert_eq!(net.stats().packets_delivered(), 1);
        let slow_latency = net.stats().latency().mean().unwrap();

        let mut fast = small_net();
        fast.inject(0, 15);
        for _ in 0..5_000 {
            fast.step();
        }
        let fast_latency = fast.stats().latency().mean().unwrap();
        // 125 MHz links serialize one flit per 8 cycles; the 13-stage router
        // pipeline is unchanged, so the gap is serialization-dominated:
        // ~7 extra cycles per hop for the head plus ~7 per body flit at the
        // destination.
        assert!(
            slow_latency > fast_latency + 20.0,
            "slow {slow_latency} vs fast {fast_latency}"
        );
        assert!(slow_latency < fast_latency * 4.0);
    }

    #[test]
    fn measurement_reset_rebases_energy() {
        let mut net = small_net();
        net.run(1_000);
        let e1 = net.energy_j();
        assert!(e1 > 0.0);
        net.begin_measurement();
        assert!(net.energy_j().abs() < 1e-12);
        net.run(1_000);
        assert!(net.energy_j() > 0.0);
    }

    #[test]
    fn activity_counters_track_flit_operations() {
        let mut net = small_net();
        // One 5-flit packet over 6 hops: every hop writes and reads each
        // flit once; the last router ejects (no crossbar-to-link traversal
        // counted for ejection) while intermediate hops traverse.
        net.inject(0, 15);
        for _ in 0..5_000 {
            net.step();
        }
        assert_eq!(net.stats().packets_delivered(), 1);
        let a = net.activity();
        // 7 routers touched (0..=15 along DOR), 5 flits each.
        assert_eq!(a.buffer_writes, 7 * 5);
        assert_eq!(a.buffer_reads, 7 * 5);
        // 6 inter-router traversals per flit (ejection is not a traversal).
        assert_eq!(a.crossbar_traversals, 6 * 5);
        assert!(a.sa_arbitrations >= a.buffer_reads);
        // Ejection at the destination needs no output VC, so 6 hops request.
        assert!(
            a.va_arbitrations >= 6,
            "one VA request per non-ejection hop"
        );
    }

    #[test]
    fn transition_totals_accumulate_under_a_policy() {
        use crate::policy::{LinkPolicy, WindowMeasures};
        use dvslink::DvsChannel;

        // A policy that steps down once, immediately.
        struct OneShotDown;
        impl LinkPolicy for OneShotDown {
            fn window_cycles(&self) -> u64 {
                200
            }
            fn on_window(&mut self, m: &WindowMeasures, ch: &mut DvsChannel) {
                let _ = ch.request_step_down(m.now);
            }
        }
        let mut cfg = NetworkConfig::paper_8x8();
        cfg.topology = Topology::mesh(4, 2).unwrap();
        let mut net = Network::with_policies(cfg, |_, _| Box::new(OneShotDown)).unwrap();
        net.run(30_000);
        let (energy, count) = net.transition_totals();
        assert!(count >= 48, "every channel transitions at least once");
        assert!(energy > 0.0);
        let stats = net.transition_stats();
        assert!(stats.initiated_down >= 48);
        assert!(stats.disabled_cycles > 0);
        assert_eq!(stats.initiated_up, 0);
    }

    #[test]
    fn deterministic_across_runs() {
        let run = || {
            let mut net = small_net();
            for i in 0..200u64 {
                net.inject((i % 16) as usize, ((i * 5 + 3) % 16) as usize);
            }
            net.run(5_000);
            (
                net.stats().packets_delivered(),
                net.stats().latency().mean(),
                net.flits_in_network(),
            )
        };
        assert_eq!(run(), run());
    }
}
