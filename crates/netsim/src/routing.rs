use crate::{Direction, NodeId, PortId, Topology, LOCAL_PORT};

/// Routing algorithm selection.
///
/// Both algorithms are minimal. `DimensionOrder` (the paper's deterministic
/// default) resolves dimensions in ascending order (X then Y on a 2-D mesh)
/// and is deadlock-free on meshes with any number of virtual channels.
/// `MinimalAdaptive` may choose any productive dimension; deadlock freedom
/// comes from an escape virtual channel (VC 0) restricted to the
/// dimension-order path, in the style of Duato's protocol.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, Default)]
pub enum Routing {
    /// Deterministic dimension-order (e-cube) routing.
    #[default]
    DimensionOrder,
    /// Minimal adaptive routing with a dimension-order escape channel.
    MinimalAdaptive,
}

impl Routing {
    /// The dimension-order output port from `node` toward `dest`
    /// ([`LOCAL_PORT`] when `node == dest`).
    pub fn dor_port(topo: &Topology, node: NodeId, dest: NodeId) -> PortId {
        for dim in 0..topo.dims() {
            if let Some(p) = productive_port(topo, node, dest, dim) {
                return p;
            }
        }
        LOCAL_PORT
    }

    /// All productive (minimal) output ports from `node` toward `dest`.
    ///
    /// Returns an empty vector when `node == dest` (eject locally instead).
    pub fn productive_ports(topo: &Topology, node: NodeId, dest: NodeId) -> Vec<PortId> {
        (0..topo.dims())
            .filter_map(|dim| productive_port(topo, node, dest, dim))
            .collect()
    }
}

/// The productive port along `dim`, or `None` if already aligned.
fn productive_port(topo: &Topology, node: NodeId, dest: NodeId, dim: u32) -> Option<PortId> {
    let c = topo.coord(node, dim);
    let d = topo.coord(dest, dim);
    if c == d {
        return None;
    }
    let dir = if topo.is_torus() {
        // Shortest way around the ring; ties go positive.
        let k = topo.radix();
        let fwd = (d + k - c) % k; // hops going positive
        if fwd <= k - fwd {
            Direction::Pos
        } else {
            Direction::Neg
        }
    } else if d > c {
        Direction::Pos
    } else {
        Direction::Neg
    };
    Some(topo.port(dim, dir))
}

#[cfg(test)]
mod tests {
    use super::*;

    fn mesh() -> Topology {
        Topology::mesh(8, 2).unwrap()
    }

    #[test]
    fn dor_resolves_x_before_y() {
        let t = mesh();
        // From (0,0) to (3,5): first move along X (dim 0, positive).
        let src = t.node_at(&[0, 0]);
        let dst = t.node_at(&[3, 5]);
        assert_eq!(Routing::dor_port(&t, src, dst), t.port(0, Direction::Pos));
        // Once X is aligned, move along Y.
        let mid = t.node_at(&[3, 0]);
        assert_eq!(Routing::dor_port(&t, mid, dst), t.port(1, Direction::Pos));
    }

    #[test]
    fn dor_at_destination_is_local() {
        let t = mesh();
        assert_eq!(Routing::dor_port(&t, 42, 42), LOCAL_PORT);
    }

    #[test]
    fn dor_route_always_reaches_destination() {
        let t = mesh();
        for src in [0, 7, 56, 63, 27] {
            for dst in t.nodes() {
                let mut at = src;
                let mut hops = 0;
                while at != dst {
                    let p = Routing::dor_port(&t, at, dst);
                    assert_ne!(p, LOCAL_PORT);
                    let (next, _) = t.downstream(at, p).expect("route must stay on mesh");
                    at = next;
                    hops += 1;
                    assert!(hops <= 14, "route too long from {src} to {dst}");
                }
                assert_eq!(hops, t.distance(src, dst));
            }
        }
    }

    #[test]
    fn productive_ports_cover_all_useful_dims() {
        let t = mesh();
        let src = t.node_at(&[2, 2]);
        let dst = t.node_at(&[5, 0]);
        let ports = Routing::productive_ports(&t, src, dst);
        assert_eq!(ports.len(), 2);
        assert!(ports.contains(&t.port(0, Direction::Pos)));
        assert!(ports.contains(&t.port(1, Direction::Neg)));
        // Aligned in one dim: only the other remains.
        let src2 = t.node_at(&[5, 2]);
        assert_eq!(
            Routing::productive_ports(&t, src2, dst),
            vec![t.port(1, Direction::Neg)]
        );
        // At destination: none.
        assert!(Routing::productive_ports(&t, dst, dst).is_empty());
    }

    #[test]
    fn productive_ports_each_reduce_distance() {
        let t = mesh();
        for &src in &[0usize, 9, 36, 63] {
            for dst in t.nodes() {
                for p in Routing::productive_ports(&t, src, dst) {
                    let (next, _) = t.downstream(src, p).unwrap();
                    assert_eq!(t.distance(next, dst) + 1, t.distance(src, dst));
                }
            }
        }
    }

    #[test]
    fn torus_routes_take_short_way_around() {
        let t = Topology::torus(8, 2).unwrap();
        let src = t.node_at(&[0, 0]);
        let dst = t.node_at(&[7, 0]);
        // One hop negative beats seven positive.
        assert_eq!(Routing::dor_port(&t, src, dst), t.port(0, Direction::Neg));
        // Distance 4 either way: tie goes positive.
        let dst4 = t.node_at(&[4, 0]);
        assert_eq!(Routing::dor_port(&t, src, dst4), t.port(0, Direction::Pos));
    }

    #[test]
    fn torus_dor_reaches_destination() {
        let t = Topology::torus(8, 2).unwrap();
        for src in [0, 63, 28] {
            for dst in t.nodes() {
                let mut at = src;
                let mut hops = 0;
                while at != dst {
                    let p = Routing::dor_port(&t, at, dst);
                    let (next, _) = t.downstream(at, p).unwrap();
                    at = next;
                    hops += 1;
                    assert!(hops <= 8, "route too long from {src} to {dst}");
                }
                assert_eq!(hops, t.distance(src, dst));
            }
        }
    }
}
