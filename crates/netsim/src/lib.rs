//! Flit-level interconnection-network simulator.
//!
//! This crate is the evaluation substrate of the HPCA 2003 link-DVS study:
//! a cycle-accurate, flit-level simulator of k-ary n-cube networks built
//! from pipelined virtual-channel routers with credit-based flow control,
//! where every inter-router channel is a [`dvslink::DvsChannel`] running in
//! its own clock domain.
//!
//! # Architecture
//!
//! - [`Topology`] describes a k-ary n-cube (mesh or torus) and the wiring of
//!   router ports.
//! - [`Router`](crate::router)s contain input ports with per-virtual-channel
//!   FIFOs, a virtual-channel allocator, a two-stage separable switch
//!   allocator, and output ports that serialize flits onto DVS channels at
//!   the channel's *current* frequency via exact integer rate accumulators.
//! - [`Network`] owns the routers, advances global time one router cycle at
//!   a time, delivers flits and credits with one-cycle wire latency, and
//!   invokes a per-output-port [`LinkPolicy`] at every history-window
//!   boundary with the window's traffic measures.
//! - [`NetStats`] aggregates packet latency (creation to tail ejection,
//!   including source queuing), throughput, and network link power.
//!
//! The simulator is deterministic: all arbitration is round-robin and the
//! only internal randomness is the optional link-fault subsystem
//! ([`NetworkConfig::faults`]), which draws from per-channel seed-derived
//! streams and is therefore bit-identical across runs and worker counts.
//!
//! # Example
//!
//! ```
//! use netsim::{Network, NetworkConfig};
//!
//! let mut net = Network::new(NetworkConfig::paper_8x8()).unwrap();
//! net.inject(0, 63); // one packet from corner to corner
//! for _ in 0..2_000 {
//!     net.step();
//! }
//! assert_eq!(net.stats().packets_delivered(), 1);
//! ```

#![forbid(unsafe_code)]
#![warn(missing_docs)]

mod flit;
mod network;
mod policy;
mod probe;
mod router;
mod routing;
mod snapshot;
mod stats;
mod timeline;
mod topology;

pub use obs;

pub use dvslink::{Cycles, EnergyLedger};
pub use faults::{FaultConfig, FaultConfigError, FaultStats, OutageConfig, RecoveryConfig};
pub use flit::{Flit, FlitKind, PacketId};
pub use network::{Network, NetworkConfig, NetworkError, SchedulerMode, SchedulerStats};
pub use obs::{
    BreakdownTotals, Event, EventKind, EventLog, EventMask, LatencyBreakdown, LinkId, NoopTracer,
    Tracer,
};
pub use policy::{LinkPolicy, PolicyObservation, StaticLevelPolicy, WindowMeasures};
pub use probe::{ChannelProbe, ProbeSample};
pub use router::{ActivityCounters, InputPortStats, OutputPortStats};
pub use routing::Routing;
pub use snapshot::{ChannelState, NetworkSnapshot};
pub use stats::{LatencyStats, NetStats};
pub use timeline::TimelineCollector;
pub use topology::{Direction, NodeId, PortId, Topology, TopologyError, LOCAL_PORT};
