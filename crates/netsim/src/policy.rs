use crate::Cycles;
use dvslink::DvsChannel;

/// Traffic measures gathered at one output port over one history window.
///
/// These are exactly the quantities the paper's policy hardware can observe
/// locally: how many flits the link relayed, how many link-clock slots were
/// available, and the occupancy of the *downstream* router's input buffers
/// as tracked by credit-based flow control.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct WindowMeasures {
    /// Router cycles in the window.
    pub window_cycles: u64,
    /// Flits sent over the link during the window.
    pub flits_sent: u64,
    /// Link-clock slots available while the link was operational.
    pub link_slots: u64,
    /// Sum over router cycles of occupied downstream buffer slots
    /// (capacity minus outstanding credits).
    pub buf_occupancy_sum: u64,
    /// Total downstream input-buffer capacity in flits.
    pub buf_capacity: u32,
    /// Cycle at which the window closed.
    pub now: Cycles,
}

impl WindowMeasures {
    /// Link utilization `LU` (paper Eq. 2): flits relayed over link-clock
    /// slots available. In `[0, 1]`; `0` when no slot was available.
    pub fn link_utilization(&self) -> f64 {
        if self.link_slots == 0 {
            0.0
        } else {
            self.flits_sent as f64 / self.link_slots as f64
        }
    }

    /// Input-buffer utilization `BU` (paper Eq. 3): mean downstream buffer
    /// occupancy over the window, normalized by capacity. In `[0, 1]`.
    pub fn buffer_utilization(&self) -> f64 {
        if self.window_cycles == 0 || self.buf_capacity == 0 {
            0.0
        } else {
            self.buf_occupancy_sum as f64
                / (self.window_cycles as f64 * f64::from(self.buf_capacity))
        }
    }
}

/// A policy's internal decision state after a window, exposed for tracing.
///
/// The tracer uses this to emit threshold-crossing and congestion-flip
/// events with the exact values the policy compared — the predicted
/// (history-smoothed) utilizations, not the raw window measures.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct PolicyObservation {
    /// Predicted link utilization the policy compared against thresholds.
    pub predicted_lu: f64,
    /// Predicted downstream buffer utilization (0 when unavailable).
    pub predicted_bu: f64,
    /// Active low threshold `T_L`.
    pub threshold_low: f64,
    /// Active high threshold `T_H`.
    pub threshold_high: f64,
    /// Whether the policy currently considers the downstream congested.
    pub congested: bool,
}

/// A per-output-port policy controlling one DVS channel.
///
/// The network calls [`on_window`](Self::on_window) every
/// [`window_cycles`](Self::window_cycles) router cycles with that window's
/// [`WindowMeasures`]; the policy may then request level transitions on the
/// channel. Implementations live in the `dvspolicy` crate; the simulator
/// only defines the interface (plus the trivial [`StaticLevelPolicy`]).
pub trait LinkPolicy {
    /// History window length `H` in router cycles.
    fn window_cycles(&self) -> u64;

    /// Observe one window's measures and optionally adjust the channel.
    fn on_window(&mut self, measures: &WindowMeasures, channel: &mut DvsChannel);

    /// The policy's decision state after the most recent window, for
    /// tracing. `None` (the default) means the policy exposes no internal
    /// state; the tracer then skips threshold-crossing events for it.
    fn observe(&self) -> Option<PolicyObservation> {
        None
    }
}

/// A policy that never changes the channel level — the paper's non-DVS
/// baseline when the channel starts at the top level.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct StaticLevelPolicy {
    window: u64,
}

impl StaticLevelPolicy {
    /// Create a static policy that still reports measures every `window`
    /// cycles (useful for probing a non-DVS network).
    ///
    /// # Panics
    ///
    /// Panics if `window` is zero.
    pub fn new(window: u64) -> Self {
        assert!(window > 0, "history window must be positive");
        Self { window }
    }
}

impl Default for StaticLevelPolicy {
    fn default() -> Self {
        Self::new(200)
    }
}

impl LinkPolicy for StaticLevelPolicy {
    fn window_cycles(&self) -> u64 {
        self.window
    }

    fn on_window(&mut self, _measures: &WindowMeasures, _channel: &mut DvsChannel) {}
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn link_utilization_bounds() {
        let m = WindowMeasures {
            window_cycles: 200,
            flits_sent: 25,
            link_slots: 50,
            buf_occupancy_sum: 0,
            buf_capacity: 128,
            now: 200,
        };
        assert!((m.link_utilization() - 0.5).abs() < 1e-12);
        let idle = WindowMeasures {
            flits_sent: 0,
            link_slots: 0,
            ..m
        };
        assert_eq!(idle.link_utilization(), 0.0);
    }

    #[test]
    fn buffer_utilization_normalizes_by_capacity_and_time() {
        let m = WindowMeasures {
            window_cycles: 100,
            flits_sent: 0,
            link_slots: 0,
            buf_occupancy_sum: 64 * 100,
            buf_capacity: 128,
            now: 100,
        };
        assert!((m.buffer_utilization() - 0.5).abs() < 1e-12);
        let empty = WindowMeasures {
            window_cycles: 0,
            ..m
        };
        assert_eq!(empty.buffer_utilization(), 0.0);
    }

    #[test]
    fn static_policy_never_touches_channel() {
        use dvslink::{RegulatorParams, TransitionTiming, VfTable};
        let mut ch = DvsChannel::new(
            VfTable::paper(),
            TransitionTiming::paper_conservative(),
            RegulatorParams::paper(),
            9,
        );
        let mut p = StaticLevelPolicy::default();
        assert_eq!(p.window_cycles(), 200);
        let m = WindowMeasures {
            window_cycles: 200,
            flits_sent: 0,
            link_slots: 200,
            buf_occupancy_sum: 0,
            buf_capacity: 128,
            now: 200,
        };
        p.on_window(&m, &mut ch);
        assert_eq!(ch.level(), 9);
        assert!(ch.is_stable());
    }

    #[test]
    #[should_panic(expected = "history window")]
    fn zero_window_panics() {
        let _ = StaticLevelPolicy::new(0);
    }
}
