//! Whole-network state snapshots for debugging, visualization, and the
//! figure harness: per-channel levels, utilizations, and buffer occupancy
//! collected in one pass.

use dvslink::EnergyLedger;
use faults::FaultStats;
use obs::Tracer;

use crate::{Cycles, Network, NodeId, PortId, LOCAL_PORT};

/// The state of one channel at snapshot time.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct ChannelState {
    /// Router owning the output port.
    pub node: NodeId,
    /// Output port index.
    pub port: PortId,
    /// Channel level.
    pub level: usize,
    /// Whether the link could transmit at snapshot time.
    pub operational: bool,
    /// Instantaneous channel power, watts.
    pub power_w: f64,
    /// Downstream buffer occupancy fraction in `[0, 1]` (credit-based
    /// estimate, includes flits in flight).
    pub occupancy: f64,
    /// Channel energy consumed since construction, in joules.
    pub energy_j: f64,
    /// The same energy split by cause; `ledger.total_j()` is bit-identical
    /// to `energy_j`.
    pub ledger: EnergyLedger,
    /// Cumulative cycles the link was disabled by DVS frequency locks.
    pub lock_stall_cycles: u64,
    /// Cumulative cycles lost to faults (outages, NACKs, recovery
    /// hold-off).
    pub fault_stall_cycles: u64,
    /// Fault/retry/residual-error counters (`None` when faults are
    /// disabled).
    pub fault: Option<FaultStats>,
}

/// A point-in-time view of every channel in a [`Network`].
///
/// # Example
///
/// ```
/// use netsim::{Network, NetworkConfig, NetworkSnapshot};
///
/// let net = Network::new(NetworkConfig::paper_8x8()).unwrap();
/// let snap = NetworkSnapshot::capture(&net);
/// assert_eq!(snap.channels().len(), 224);
/// assert_eq!(snap.level_histogram()[9], 224); // all at top level
/// ```
#[derive(Debug, Clone, PartialEq)]
pub struct NetworkSnapshot {
    time: Cycles,
    levels: usize,
    channels: Vec<ChannelState>,
}

impl NetworkSnapshot {
    /// Capture the state of every channel in `net`.
    pub fn capture<T: Tracer>(net: &Network<T>) -> Self {
        let topo = net.topology();
        let mut channels = Vec::with_capacity(topo.num_nodes() * (topo.ports_per_router() - 1));
        for node in topo.nodes() {
            for port in 0..topo.ports_per_router() {
                if port == LOCAL_PORT {
                    continue;
                }
                if let Some(s) = net.output_stats(node, port) {
                    channels.push(ChannelState {
                        node,
                        port,
                        level: s.level,
                        operational: s.operational,
                        power_w: s.power_w,
                        occupancy: if s.buf_capacity == 0 {
                            0.0
                        } else {
                            1.0 - f64::from(s.credits) / f64::from(s.buf_capacity)
                        },
                        energy_j: s.energy_j,
                        ledger: s.ledger,
                        lock_stall_cycles: s.cum_lock_stall,
                        fault_stall_cycles: s.cum_fault_stall,
                        fault: s.fault,
                    });
                }
            }
        }
        // Level count from any channel's table is not reachable here; use
        // the max observed level + 1 as a lower bound and let callers size
        // histograms via `level_histogram`, which always allocates 10+.
        let levels = channels
            .iter()
            .map(|c| c.level + 1)
            .max()
            .unwrap_or(1)
            .max(10);
        Self {
            time: net.time(),
            levels,
            channels,
        }
    }

    /// Cycle the snapshot was taken at.
    pub fn time(&self) -> Cycles {
        self.time
    }

    /// All channel states, in (node, port) order.
    pub fn channels(&self) -> &[ChannelState] {
        &self.channels
    }

    /// Count of channels per level (index = level).
    pub fn level_histogram(&self) -> Vec<usize> {
        let mut hist = vec![0usize; self.levels];
        for c in &self.channels {
            hist[c.level] += 1;
        }
        hist
    }

    /// Mean channel level.
    pub fn mean_level(&self) -> f64 {
        if self.channels.is_empty() {
            return 0.0;
        }
        self.channels.iter().map(|c| c.level as f64).sum::<f64>() / self.channels.len() as f64
    }

    /// Total instantaneous link power, watts.
    pub fn total_power_w(&self) -> f64 {
        self.channels.iter().map(|c| c.power_w).sum()
    }

    /// Total channel energy consumed since construction, joules.
    pub fn total_energy_j(&self) -> f64 {
        self.channels.iter().map(|c| c.energy_j).sum()
    }

    /// Network-wide energy ledger: per-cause sums over every channel.
    pub fn energy_ledger_totals(&self) -> EnergyLedger {
        let mut total = EnergyLedger::default();
        for c in &self.channels {
            total.active_j += c.ledger.active_j;
            total.idle_j += c.ledger.idle_j;
            total.transition_j += c.ledger.transition_j;
            total.retransmission_j += c.ledger.retransmission_j;
        }
        total
    }

    /// Channels currently unable to transmit (mid frequency-lock).
    pub fn disabled_channels(&self) -> usize {
        self.channels.iter().filter(|c| !c.operational).count()
    }

    /// Aggregate fault counters over every channel, or `None` when the
    /// fault subsystem is disabled.
    pub fn fault_totals(&self) -> Option<FaultStats> {
        let mut total: Option<FaultStats> = None;
        for c in &self.channels {
            if let Some(f) = &c.fault {
                total.get_or_insert_with(FaultStats::default).accumulate(f);
            }
        }
        total
    }

    /// The `n` channels with the highest downstream occupancy, most
    /// congested first.
    pub fn most_congested(&self, n: usize) -> Vec<ChannelState> {
        let mut sorted = self.channels.clone();
        sorted.sort_by(|a, b| {
            b.occupancy
                .partial_cmp(&a.occupancy)
                .expect("finite occupancy")
        });
        sorted.truncate(n);
        sorted
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::{NetworkConfig, Topology};

    fn net_4x4() -> Network {
        let mut cfg = NetworkConfig::paper_8x8();
        cfg.topology = Topology::mesh(4, 2).unwrap();
        Network::new(cfg).unwrap()
    }

    #[test]
    fn fresh_network_snapshot() {
        let net = net_4x4();
        let snap = NetworkSnapshot::capture(&net);
        assert_eq!(snap.channels().len(), 48);
        assert_eq!(snap.time(), 0);
        assert_eq!(snap.mean_level(), 9.0);
        assert_eq!(snap.level_histogram()[9], 48);
        assert_eq!(snap.disabled_channels(), 0);
        assert!((snap.total_power_w() - 48.0 * 1.6).abs() < 1e-9);
        // Nothing buffered yet.
        assert!(snap.channels().iter().all(|c| c.occupancy == 0.0));
    }

    #[test]
    fn congestion_ranking_reflects_load() {
        let mut net = net_4x4();
        // Hammer one path.
        for _ in 0..200 {
            net.inject(0, 3);
        }
        net.run(300);
        let snap = NetworkSnapshot::capture(&net);
        let top = snap.most_congested(3);
        assert_eq!(top.len(), 3);
        assert!(top[0].occupancy >= top[1].occupancy);
        assert!(
            top[0].occupancy > 0.0,
            "hot path must show buffered flits: {top:?}"
        );
        // The hottest channels lie on row 0 (X+ ports of routers 0..3).
        assert!(top[0].node < 4, "hot channel at node {}", top[0].node);
    }

    #[test]
    fn per_channel_ledger_splits_energy_bit_exactly() {
        let mut net = net_4x4();
        for _ in 0..50 {
            net.inject(0, 15);
        }
        net.run(500);
        let snap = NetworkSnapshot::capture(&net);
        for c in snap.channels() {
            assert_eq!(
                c.ledger.total_j().to_bits(),
                c.energy_j.to_bits(),
                "channel ({}, {}) ledger must split its energy exactly",
                c.node,
                c.port
            );
        }
        assert!(snap.total_energy_j() > 0.0);
        let totals = snap.energy_ledger_totals();
        assert!(
            totals.active_j > 0.0,
            "traffic must charge the active bucket"
        );
        assert!(totals.idle_j > 0.0);
    }

    #[test]
    fn histogram_counts_sum_to_channel_count() {
        let mut net = net_4x4();
        net.run(100);
        let snap = NetworkSnapshot::capture(&net);
        let total: usize = snap.level_histogram().iter().sum();
        assert_eq!(total, snap.channels().len());
    }
}
