use obs::{BreakdownTotals, LatencyBreakdown};

use crate::Cycles;

/// Running latency aggregate (cycles from packet creation to tail ejection),
/// with a power-of-two histogram for percentile estimates.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct LatencyStats {
    sum: u128,
    count: u64,
    min: Cycles,
    max: Cycles,
    /// `buckets[i]` counts latencies in `[2^i, 2^(i+1))` (bucket 0 holds 0
    /// and 1).
    buckets: [u64; 40],
}

impl Default for LatencyStats {
    fn default() -> Self {
        Self::new()
    }
}

impl LatencyStats {
    /// An empty aggregate.
    pub fn new() -> Self {
        Self {
            sum: 0,
            count: 0,
            min: Cycles::MAX,
            max: 0,
            buckets: [0; 40],
        }
    }

    /// Record one packet latency.
    pub fn record(&mut self, latency: Cycles) {
        self.sum += u128::from(latency);
        self.count += 1;
        self.min = self.min.min(latency);
        self.max = self.max.max(latency);
        let bucket = (u64::BITS - latency.max(1).leading_zeros() - 1).min(39) as usize;
        self.buckets[bucket] += 1;
    }

    /// Estimate the latency at quantile `q` in `[0, 1]` (geometric midpoint
    /// of the histogram bucket containing it, clamped to the recorded
    /// `[min, max]`), or `None` if empty.
    ///
    /// The clamp keeps the estimate inside the observed range where the raw
    /// midpoint would leave it: an all-zero sample estimates 0 rather than
    /// `√2`, and a sample confined to the top of a bucket (or to the
    /// open-ended bucket 39) can no longer exceed `max` or undershoot
    /// `min`. Clamping only moves the estimate toward the exact order
    /// statistic, so the `√2` accuracy bound is preserved.
    ///
    /// # Panics
    ///
    /// Panics if `q` is not within `[0, 1]`.
    pub fn quantile(&self, q: f64) -> Option<f64> {
        assert!((0.0..=1.0).contains(&q), "quantile must be in [0, 1]");
        if self.count == 0 {
            return None;
        }
        let target = (q * self.count as f64).ceil().max(1.0) as u64;
        let mut seen = 0;
        for (i, &c) in self.buckets.iter().enumerate() {
            seen += c;
            if seen >= target {
                let lo = (1u64 << i) as f64;
                let est = lo * std::f64::consts::SQRT_2;
                return Some(est.clamp(self.min as f64, self.max as f64));
            }
        }
        Some(self.max as f64)
    }

    /// Number of packets recorded.
    pub fn count(&self) -> u64 {
        self.count
    }

    /// Exact sum of all recorded latencies, in cycles.
    pub fn sum(&self) -> u128 {
        self.sum
    }

    /// Mean latency in cycles, or `None` if nothing was recorded.
    pub fn mean(&self) -> Option<f64> {
        (self.count > 0).then(|| self.sum as f64 / self.count as f64)
    }

    /// Smallest recorded latency, or `None` if empty.
    pub fn min(&self) -> Option<Cycles> {
        (self.count > 0).then_some(self.min)
    }

    /// Largest recorded latency, or `None` if empty.
    pub fn max(&self) -> Option<Cycles> {
        (self.count > 0).then_some(self.max)
    }
}

/// Network-level counters over the current measurement interval.
#[derive(Debug, Clone, Copy, Default, PartialEq)]
pub struct NetStats {
    packets_injected: u64,
    flits_injected: u64,
    packets_delivered: u64,
    flits_delivered: u64,
    latency: LatencyStats,
    breakdown: BreakdownTotals,
    measurement_start: Cycles,
}

impl NetStats {
    pub(crate) fn new() -> Self {
        Self {
            latency: LatencyStats::new(),
            ..Self::default()
        }
    }

    pub(crate) fn on_inject(&mut self, flits: usize) {
        self.packets_injected += 1;
        self.flits_injected += flits as u64;
    }

    pub(crate) fn on_flit_delivered(&mut self) {
        self.flits_delivered += 1;
    }

    pub(crate) fn on_packet_delivered(&mut self, latency: Cycles, breakdown: &LatencyBreakdown) {
        self.packets_delivered += 1;
        self.latency.record(latency);
        self.breakdown.record(breakdown);
    }

    pub(crate) fn reset(&mut self, now: Cycles) {
        *self = Self::new();
        self.measurement_start = now;
    }

    /// Packets injected (created) since the measurement started.
    pub fn packets_injected(&self) -> u64 {
        self.packets_injected
    }

    /// Flits injected since the measurement started.
    pub fn flits_injected(&self) -> u64 {
        self.flits_injected
    }

    /// Packets fully delivered (tail ejected) since the measurement started.
    pub fn packets_delivered(&self) -> u64 {
        self.packets_delivered
    }

    /// Flits ejected since the measurement started.
    pub fn flits_delivered(&self) -> u64 {
        self.flits_delivered
    }

    /// Latency aggregate over delivered packets.
    pub fn latency(&self) -> &LatencyStats {
        &self.latency
    }

    /// Summed latency attribution over delivered packets;
    /// `latency_breakdown().total()` equals `latency().sum()` exactly.
    pub fn latency_breakdown(&self) -> &BreakdownTotals {
        &self.breakdown
    }

    /// Cycle at which the current measurement interval began.
    pub fn measurement_start(&self) -> Cycles {
        self.measurement_start
    }

    /// Delivered-packet throughput in packets/cycle over the measurement
    /// interval ending at `now`. Returns 0 for an empty interval.
    pub fn throughput_packets_per_cycle(&self, now: Cycles) -> f64 {
        let dt = now.saturating_sub(self.measurement_start);
        if dt == 0 {
            0.0
        } else {
            self.packets_delivered as f64 / dt as f64
        }
    }

    /// Offered load actually accepted in packets/cycle (injected packets over
    /// the interval).
    pub fn injection_rate_packets_per_cycle(&self, now: Cycles) -> f64 {
        let dt = now.saturating_sub(self.measurement_start);
        if dt == 0 {
            0.0
        } else {
            self.packets_injected as f64 / dt as f64
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn latency_aggregate() {
        let mut l = LatencyStats::new();
        assert_eq!(l.mean(), None);
        assert_eq!(l.min(), None);
        assert_eq!(l.max(), None);
        assert_eq!(l.quantile(0.5), None);
        l.record(10);
        l.record(30);
        assert_eq!(l.count(), 2);
        assert_eq!(l.mean(), Some(20.0));
        assert_eq!(l.min(), Some(10));
        assert_eq!(l.max(), Some(30));
    }

    #[test]
    fn quantiles_are_order_of_magnitude_accurate() {
        let mut l = LatencyStats::new();
        for _ in 0..900 {
            l.record(100);
        }
        for _ in 0..100 {
            l.record(100_000);
        }
        let p50 = l.quantile(0.5).unwrap();
        assert!(p50 > 50.0 && p50 < 200.0, "p50 {p50}");
        let p99 = l.quantile(0.99).unwrap();
        assert!(p99 > 50_000.0 && p99 < 200_000.0, "p99 {p99}");
        let p0 = l.quantile(0.0).unwrap();
        assert!(p0 <= p50);
    }

    #[test]
    #[should_panic(expected = "quantile")]
    fn out_of_range_quantile_panics() {
        let _ = LatencyStats::new().quantile(1.5);
    }

    #[test]
    fn net_stats_counts_and_throughput() {
        let mut s = NetStats::new();
        s.on_inject(5);
        s.on_inject(5);
        for _ in 0..5 {
            s.on_flit_delivered();
        }
        let b = LatencyBreakdown {
            source_queue: 10,
            buffer: 20,
            pipeline: 50,
            serialization: 15,
            lock: 5,
            retransmission: 0,
        };
        s.on_packet_delivered(100, &b);
        assert_eq!(s.packets_injected(), 2);
        assert_eq!(s.latency_breakdown().packets, 1);
        assert_eq!(
            s.latency_breakdown().total(),
            s.latency().sum() as u64,
            "breakdown totals track the latency sum"
        );
        assert_eq!(s.flits_injected(), 10);
        assert_eq!(s.packets_delivered(), 1);
        assert_eq!(s.flits_delivered(), 5);
        assert!((s.throughput_packets_per_cycle(200) - 0.005).abs() < 1e-12);
        assert!((s.injection_rate_packets_per_cycle(200) - 0.01).abs() < 1e-12);
        assert_eq!(s.throughput_packets_per_cycle(0), 0.0);
    }

    #[test]
    fn reset_rebases_measurement() {
        let mut s = NetStats::new();
        s.on_inject(5);
        s.reset(500);
        assert_eq!(s.packets_injected(), 0);
        assert_eq!(s.measurement_start(), 500);
        s.on_packet_delivered(42, &LatencyBreakdown::default());
        assert!((s.throughput_packets_per_cycle(1000) - 1.0 / 500.0).abs() < 1e-12);
    }
}
