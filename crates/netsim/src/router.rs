use std::collections::VecDeque;

use dvslink::{ChannelPhase, DvsChannel, EnergyLedger};
use faults::{ChannelFaultModel, FaultStats, TransmitOutcome};
use obs::{Event, LinkId, Tracer};

use crate::policy::{LinkPolicy, WindowMeasures};
use crate::{Cycles, Flit, NodeId, PortId, Routing, Topology, LOCAL_PORT};

/// Emit DVS phase-change events for one `advance` of a channel: entering
/// the frequency-lock window (links disabled) and completing a transition.
fn phase_events<T: Tracer>(
    tracer: &mut T,
    link: LinkId,
    now: Cycles,
    pre: ChannelPhase,
    post: ChannelPhase,
    level: usize,
) {
    match (pre, post) {
        (
            ChannelPhase::VoltageRamp { .. } | ChannelPhase::Stable,
            ChannelPhase::FreqLock { target, until },
        ) => {
            tracer.record(Event::DvsLock {
                t: now,
                link,
                target,
                until,
            });
        }
        (
            ChannelPhase::VoltageRamp { .. } | ChannelPhase::FreqLock { .. },
            ChannelPhase::Stable,
        ) => {
            tracer.record(Event::DvsComplete {
                t: now,
                link,
                level,
            });
        }
        _ => {}
    }
}

/// Wire latency of a flit crossing in router cycles: one cycle on the wire
/// plus one cycle for the downstream buffer write. Serialization at slow
/// V/f levels is modeled by the per-port rate accumulator, so this latency
/// is level-independent; the network sizes its delivery rings from it (see
/// `network::max_wire_latency`).
pub(crate) const FLIT_WIRE_LATENCY: Cycles = 2;

/// Wire latency of a credit return in router cycles.
pub(crate) const CREDIT_WIRE_LATENCY: Cycles = 1;

/// A flit on a wire, due to arrive at a router input buffer.
#[derive(Debug, Clone, Copy)]
pub(crate) struct FlitWire {
    pub arrival: Cycles,
    pub router: NodeId,
    pub in_port: PortId,
    pub vc: usize,
    pub flit: Flit,
}

/// A credit on a wire, due back at an upstream output port.
#[derive(Debug, Clone, Copy)]
pub(crate) struct CreditWire {
    pub arrival: Cycles,
    pub router: NodeId,
    pub out_port: PortId,
    pub vc: usize,
}

/// A packet that finished ejecting (tail flit left the network).
#[derive(Debug, Clone, Copy)]
pub(crate) struct Delivery {
    pub flit: Flit,
    pub ejected_at: Cycles,
}

/// A flit parked in an output port's staging buffer between winning switch
/// allocation and transmitting on the link, with the stamps the latency
/// attribution needs: when it was staged and the port's stall counters at
/// that instant (deltas at transmit time attribute the egress interval).
#[derive(Debug, Clone, Copy)]
struct StagedFlit {
    /// First cycle the flit may transmit (switch grant + pipeline depth).
    ready_at: Cycles,
    /// Downstream VC the flit was allocated.
    out_vc: usize,
    /// Cycle the flit won switch allocation (egress interval start).
    sa_at: Cycles,
    /// Port's `cum_lock_stall` when staged.
    lock_stall0: u64,
    /// Port's `cum_fault_stall` when staged.
    fault_stall0: u64,
    flit: Flit,
}

#[derive(Debug, Clone, Copy, PartialEq, Eq)]
enum VcState {
    /// No packet owns this VC.
    Idle,
    /// Head routed; waiting for an output VC.
    Waiting { out_port: PortId, on_dor_path: bool },
    /// Output VC allocated; flits may traverse.
    Active { out_port: PortId, out_vc: usize },
}

#[derive(Debug)]
struct VirtualChannel {
    fifo: VecDeque<(Flit, Cycles)>,
    cap: usize,
    state: VcState,
}

impl VirtualChannel {
    fn new(cap: usize) -> Self {
        Self {
            fifo: VecDeque::with_capacity(cap),
            cap,
            state: VcState::Idle,
        }
    }

    fn has_space(&self) -> bool {
        self.fifo.len() < self.cap
    }
}

#[derive(Debug)]
pub(crate) struct InputPort {
    vcs: Vec<VirtualChannel>,
    /// Cumulative sum of (departure − arrival) over all departed flits.
    pub(crate) cum_age_sum: u64,
    /// Cumulative departed-flit count.
    pub(crate) cum_departures: u64,
    /// Cumulative sum over cycles of occupied slots (for probes).
    pub(crate) cum_occupancy_sum: u64,
}

impl InputPort {
    fn new(vcs: usize, cap_per_vc: usize) -> Self {
        Self {
            vcs: (0..vcs).map(|_| VirtualChannel::new(cap_per_vc)).collect(),
            cum_age_sum: 0,
            cum_departures: 0,
            cum_occupancy_sum: 0,
        }
    }

    fn occupancy(&self) -> usize {
        self.vcs.iter().map(|v| v.fifo.len()).sum()
    }
}

/// Cumulative counts of router micro-operations, for the router-core
/// activity analysis the paper uses to argue router power barely changes
/// with DVS (§4.2: a flit staying longer "can potentially trigger more
/// arbitrations" but "does not increase buffer read/write power, nor
/// crossbar power").
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq)]
pub struct ActivityCounters {
    /// Flits written into input buffers (wire arrivals + injections).
    pub buffer_writes: u64,
    /// Flits read out of input buffers (switch-allocation grants).
    pub buffer_reads: u64,
    /// Flits moved through the crossbar to an output (excludes ejection).
    pub crossbar_traversals: u64,
    /// Switch-allocator input nominations considered.
    pub sa_arbitrations: u64,
    /// Virtual-channel-allocator requests considered.
    pub va_arbitrations: u64,
}

impl ActivityCounters {
    fn add(&mut self, other: &ActivityCounters) {
        self.buffer_writes += other.buffer_writes;
        self.buffer_reads += other.buffer_reads;
        self.crossbar_traversals += other.crossbar_traversals;
        self.sa_arbitrations += other.sa_arbitrations;
        self.va_arbitrations += other.va_arbitrations;
    }

    /// Sum a collection of counters.
    pub fn total<'a>(counters: impl IntoIterator<Item = &'a ActivityCounters>) -> ActivityCounters {
        let mut out = ActivityCounters::default();
        for c in counters {
            out.add(c);
        }
        out
    }
}

/// Read-only snapshot of one input port, for probes and tests.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct InputPortStats {
    /// Flits currently buffered across all VCs.
    pub occupancy: usize,
    /// Total buffer capacity in flits.
    pub capacity: usize,
    /// Cumulative sum of flit residence times (cycles).
    pub cum_age_sum: u64,
    /// Cumulative count of flits that left this port's buffers.
    pub cum_departures: u64,
    /// Cumulative per-cycle occupancy sum.
    pub cum_occupancy_sum: u64,
}

pub(crate) struct OutputPort {
    pub(crate) channel: DvsChannel,
    pub(crate) policy: Box<dyn LinkPolicy>,
    /// Fault injection + recovery state (None when faults are disabled; the
    /// hot path then skips the fault logic entirely).
    pub(crate) fault: Option<ChannelFaultModel>,
    next_window: Cycles,
    /// Cached `channel.busy_until()` (or `MAX` when stable) so the hot loop
    /// can skip `advance` entirely until a phase boundary is due.
    next_transition: Cycles,
    /// Serialization accumulator in freq_x9 units; a link slot opens when it
    /// reaches 9000 (one router-clock's worth of the maximum link rate).
    acc: u32,
    staging: VecDeque<StagedFlit>,
    staging_cap: usize,
    credits: Vec<u32>,
    vc_holder: Vec<Option<(PortId, usize)>>,
    sa_rr: usize,
    va_rr: usize,
    pub(crate) downstream: (NodeId, PortId),
    buf_capacity_total: u32,
    /// Last observed policy LU region (-1 below T_L, 0 in band, +1 above
    /// T_H) and congestion litmus, for edge-triggered trace events. Only
    /// maintained when the tracer is enabled.
    last_lu_region: Option<i8>,
    last_congested: Option<bool>,
    // Cumulative counters; policy windows and probes take deltas.
    pub(crate) cum_flits: u64,
    pub(crate) cum_slots: u64,
    pub(crate) cum_occ_sum: u64,
    /// Cycles a staged flit waited because a DVS frequency lock disabled
    /// the link (realized stalls only — disabled idle cycles don't count).
    /// At most one stall counter increments per cycle, so staged-flit
    /// deltas partition the egress interval exactly.
    pub(crate) cum_lock_stall: u64,
    /// Cycles the link could not transmit (or wasted a crossing) because of
    /// faults: outages, fail-stop, NACKed transmissions, and recovery
    /// hold-off.
    pub(crate) cum_fault_stall: u64,
    snap_flits: u64,
    snap_slots: u64,
    snap_occ_sum: u64,
    snap_cycle: Cycles,
}

impl OutputPort {
    /// Counter drift `k` consecutive idle cycles produce on this port, in
    /// closed form: `(cum_slots delta, final rate accumulator, cum_occ_sum
    /// delta)`. Valid only while the port is quiescent — empty staging, no
    /// fault model, and no DVS phase boundary inside the interval (the
    /// scheduler wakes the router at `next_transition`, so the channel's
    /// phase, frequency, and operability are constant across the `k`
    /// cycles). Mirrors the per-cycle tail of `link_phase` exactly:
    /// `acc` saturates at 9000 once the first slot opens (idle slots do not
    /// bank bandwidth), after which every cycle opens a slot, and the
    /// downstream-occupancy integral advances by the (constant) occupied
    /// slot count each cycle.
    fn idle_projection(&self, k: u64) -> (u64, u32, u64) {
        let occupied = self.buf_capacity_total - self.credits.iter().sum::<u32>();
        let occ = k * u64::from(occupied);
        if !self.channel.is_operational() {
            return (0, self.acc, occ);
        }
        let f = self.channel.freq_x9();
        if f == 0 {
            // Defensive: `VfTable` validation rejects zero frequencies, but
            // match the per-cycle arithmetic anyway (a primed accumulator
            // opens a slot every cycle and re-pins itself at 9000).
            return if self.acc >= 9000 {
                (k, 9000, occ)
            } else {
                (0, self.acc, occ)
            };
        }
        // First slot opens on idle cycle j0 = ceil((9000 - acc) / f),
        // clamped to 1 (the accumulator adds before it checks); every idle
        // cycle from then on opens one.
        let need = 9000u32.saturating_sub(self.acc);
        let j0 = u64::from(need.div_ceil(f).max(1));
        if k >= j0 {
            (k - j0 + 1, 9000, occ)
        } else {
            // k < j0 <= 9000, and acc + k*f < 9000: no overflow.
            (0, self.acc + k as u32 * f, occ)
        }
    }
}

impl std::fmt::Debug for OutputPort {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.debug_struct("OutputPort")
            .field("level", &self.channel.level())
            .field("credits", &self.credits)
            .field("staged", &self.staging.len())
            .field("cum_flits", &self.cum_flits)
            .finish_non_exhaustive()
    }
}

/// Read-only snapshot of one output port and its channel.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct OutputPortStats {
    /// Current channel level (frequency index).
    pub level: usize,
    /// Whether the channel can transmit right now.
    pub operational: bool,
    /// Instantaneous channel power in watts.
    pub power_w: f64,
    /// Cumulative flits sent over the link.
    pub cum_flits: u64,
    /// Cumulative link-clock slots that were available.
    pub cum_slots: u64,
    /// Cumulative per-cycle downstream occupancy sum.
    pub cum_occ_sum: u64,
    /// Outstanding credits summed over VCs.
    pub credits: u32,
    /// Total downstream buffer capacity.
    pub buf_capacity: u32,
    /// Current link frequency in units of MHz/9 (9000 = full rate, one
    /// flit per router cycle).
    pub freq_x9: u32,
    /// Channel energy consumed since construction, in joules (transmission
    /// + leakage + transition overhead).
    pub energy_j: f64,
    /// The same energy split by cause; `ledger.total_j()` is bit-identical
    /// to `energy_j` (both come from the channel's ledger).
    pub ledger: EnergyLedger,
    /// Cumulative flit-cycles stalled behind DVS frequency locks (realized
    /// stalls: cycles a staged flit waited on a lock-disabled link).
    pub cum_lock_stall: u64,
    /// Cumulative flit-cycles lost to faults: outages, dead links, NACKed
    /// crossings, and recovery hold-off, counted while a flit waited.
    pub cum_fault_stall: u64,
    /// Fault/retry/residual-error counters (None when faults are disabled).
    pub fault: Option<FaultStats>,
}

pub(crate) struct Router {
    pub(crate) id: NodeId,
    pub(crate) inputs: Vec<InputPort>,
    pub(crate) outputs: Vec<Option<OutputPort>>,
    pub(crate) source_queue: VecDeque<Flit>,
    inj_vc: Option<usize>,
    sa_in_rr: Vec<usize>,
    routing: Routing,
    pipeline_extra: Cycles,
    /// Flits currently in input buffers (kept incrementally so idle routers
    /// can skip allocation entirely).
    buffered: usize,
    // Per-cycle scratch buffers, kept here to avoid re-allocating in the
    // allocation hot path.
    sa_requests: Vec<Option<(usize, PortId, usize)>>,
    sa_grants: Vec<(PortId, usize)>,
    va_requests: Vec<(PortId, usize, PortId, bool)>,
    pub(crate) activity: ActivityCounters,
    // Active-set scheduler state (see DESIGN.md §9). Maintained only under
    // `SchedulerMode::ActiveSet`; the full-scan schedule ignores it.
    /// Router must run every cycle: it has buffered/staged flits, pending
    /// source injections, or an arrival just woke it.
    pub(crate) hot: bool,
    /// Router may never be skipped: its channels carry stateful per-cycle
    /// fault processes that cannot be replayed in closed form.
    pub(crate) always_hot: bool,
    /// Earliest cycle a quiescent router must still run: the next history
    /// window boundary or DVS phase completion over its output ports.
    pub(crate) next_due: Cycles,
    /// Counters reflect every cycle `< processed_until`; a quiescent router
    /// skipped past it owes the idle drift of `[processed_until, now)`,
    /// applied in closed form by [`Router::catch_up`] (or projected
    /// read-only by [`Router::output_stats`]).
    pub(crate) processed_until: Cycles,
}

pub(crate) struct RouterParams {
    pub vcs: usize,
    pub buf_per_port: usize,
    pub staging_cap: usize,
    pub routing: Routing,
    pub pipeline_extra: Cycles,
}

impl Router {
    pub(crate) fn new(
        id: NodeId,
        topo: &Topology,
        params: &RouterParams,
        mut make_channel: impl FnMut(
            NodeId,
            PortId,
        )
            -> (DvsChannel, Box<dyn LinkPolicy>, Option<ChannelFaultModel>),
    ) -> Self {
        let ports = topo.ports_per_router();
        let cap_per_vc = params.buf_per_port / params.vcs;
        let inputs = (0..ports)
            .map(|_| InputPort::new(params.vcs, cap_per_vc))
            .collect();
        let outputs = (0..ports)
            .map(|p| {
                if p == LOCAL_PORT {
                    return None;
                }
                let downstream = topo.downstream(id, p)?;
                let (channel, policy, fault) = make_channel(id, p);
                // Stagger window phases across ports: synchronized windows
                // would align every channel's transitions (and their
                // link-disabled lock intervals) network-wide, a measurement
                // artifact no physical network would show.
                let h = policy.window_cycles();
                let next_window = h + (id as u64 * 31 + p as u64 * 7) % h;
                Some(OutputPort {
                    channel,
                    policy,
                    fault,
                    next_window,
                    next_transition: Cycles::MAX,
                    acc: 0,
                    staging: VecDeque::with_capacity(params.staging_cap),
                    staging_cap: params.staging_cap,
                    credits: vec![cap_per_vc as u32; params.vcs],
                    vc_holder: vec![None; params.vcs],
                    sa_rr: 0,
                    va_rr: 0,
                    downstream,
                    buf_capacity_total: (cap_per_vc * params.vcs) as u32,
                    last_lu_region: None,
                    last_congested: None,
                    cum_flits: 0,
                    cum_slots: 0,
                    cum_occ_sum: 0,
                    cum_lock_stall: 0,
                    cum_fault_stall: 0,
                    snap_flits: 0,
                    snap_slots: 0,
                    snap_occ_sum: 0,
                    snap_cycle: 0,
                })
            })
            .collect::<Vec<Option<OutputPort>>>();
        let always_hot = outputs
            .iter()
            .flatten()
            .any(|o: &OutputPort| o.fault.is_some());
        let next_due = outputs
            .iter()
            .flatten()
            .map(|o| o.next_window.min(o.next_transition))
            .min()
            .unwrap_or(Cycles::MAX);
        Self {
            id,
            inputs,
            outputs,
            source_queue: VecDeque::new(),
            inj_vc: None,
            sa_in_rr: vec![0; ports],
            routing: params.routing,
            pipeline_extra: params.pipeline_extra,
            buffered: 0,
            sa_requests: vec![None; ports],
            sa_grants: Vec::with_capacity(ports),
            va_requests: Vec::with_capacity(ports * params.vcs),
            activity: ActivityCounters::default(),
            hot: always_hot,
            always_hot,
            next_due,
            processed_until: 0,
        }
    }

    /// True when this router has per-cycle work beyond idle counter drift:
    /// pending source injections, buffered flits, or staged flits. A router
    /// for which this is false (and that owns no fault model) mutates state
    /// each cycle only through the closed-form drift `idle_projection`
    /// replays, so the active-set scheduler may skip it until an arrival or
    /// its `next_due` wakes it.
    pub(crate) fn has_work(&self) -> bool {
        !self.source_queue.is_empty()
            || self.buffered > 0
            || self.outputs.iter().flatten().any(|o| !o.staging.is_empty())
    }

    /// Earliest cycle a quiescent router must still run: the next history
    /// window boundary or DVS phase completion over its output ports.
    pub(crate) fn compute_next_due(&self) -> Cycles {
        self.outputs
            .iter()
            .flatten()
            .map(|o| o.next_window.min(o.next_transition))
            .min()
            .unwrap_or(Cycles::MAX)
    }

    /// Replay the skipped idle cycles `[processed_until, now)` in closed
    /// form, committing the counter drift the full-scan schedule would have
    /// accumulated one cycle at a time. Must run before anything at `now`
    /// mutates the router (arrivals change credits; the projection depends
    /// on the pre-arrival credit state). Idempotent: a second call at the
    /// same cycle is a no-op.
    pub(crate) fn catch_up(&mut self, now: Cycles) {
        let k = now.saturating_sub(self.processed_until);
        if k == 0 {
            return;
        }
        debug_assert!(
            !self.always_hot && self.source_queue.is_empty() && self.buffered == 0,
            "router {} skipped {} cycles while non-quiescent",
            self.id,
            k
        );
        for out in self.outputs.iter_mut().flatten() {
            debug_assert!(out.staging.is_empty() && out.fault.is_none());
            debug_assert!(now <= out.next_window && now <= out.next_transition);
            let (slots, acc, occ) = out.idle_projection(k);
            out.cum_slots += slots;
            out.cum_occ_sum += occ;
            out.acc = acc;
        }
        self.processed_until = now;
    }

    /// Deliver a flit arriving from an upstream link (or fail loudly if the
    /// upstream credit accounting ever let a flit through without space).
    pub(crate) fn receive_flit(&mut self, in_port: PortId, vc: usize, flit: Flit, now: Cycles) {
        let ch = &mut self.inputs[in_port].vcs[vc];
        debug_assert!(
            flit.crc_valid(),
            "link-level CRC violated: router {} port {in_port} received a corrupt flit",
            self.id
        );
        debug_assert!(
            ch.has_space(),
            "credit protocol violated: router {} port {in_port} vc {vc} overflow",
            self.id
        );
        ch.fifo.push_back((flit, now));
        self.buffered += 1;
        self.activity.buffer_writes += 1;
    }

    pub(crate) fn receive_credit(&mut self, out_port: PortId, vc: usize) {
        let out = self.outputs[out_port]
            .as_mut()
            .expect("credit arrived for a non-existent output port");
        out.credits[vc] += 1;
    }

    /// Move up to one flit per cycle from the source queue into the local
    /// input port (injection bandwidth = one flit/cycle, matching the
    /// channel bandwidth).
    pub(crate) fn inject_from_source<T: Tracer>(&mut self, now: Cycles, tracer: &mut T) {
        let Some(&front) = self.source_queue.front() else {
            return;
        };
        let mut front = front;
        let local = &mut self.inputs[LOCAL_PORT];
        let vc = match self.inj_vc {
            Some(vc) => vc,
            None => {
                // New packet: put it in the local VC with the most room.
                let Some((vc, _)) = local
                    .vcs
                    .iter()
                    .enumerate()
                    .filter(|(_, v)| v.has_space())
                    .max_by_key(|(_, v)| v.cap - v.fifo.len())
                else {
                    return;
                };
                vc
            }
        };
        if !local.vcs[vc].has_space() {
            return; // stall; source queuing time keeps accruing
        }
        // Everything between creation and injection is source queuing.
        front.delay.source_queue = (now - front.created_at) as u32;
        local.vcs[vc].fifo.push_back((front, now));
        self.buffered += 1;
        self.activity.buffer_writes += 1;
        if T::ENABLED {
            tracer.record(Event::FlitInject {
                t: now,
                node: self.id,
                packet: front.packet,
                seq: front.seq,
            });
        }
        self.source_queue.pop_front();
        self.inj_vc = if front.is_tail() { None } else { Some(vc) };
    }

    /// Close any history windows that end at `now`, invoking the policies.
    fn close_windows<T: Tracer>(&mut self, now: Cycles, tracer: &mut T) {
        let id = self.id;
        for (port, slot) in self.outputs.iter_mut().enumerate() {
            let Some(out) = slot else { continue };
            if now >= out.next_window {
                let measures = WindowMeasures {
                    window_cycles: now - out.snap_cycle,
                    flits_sent: out.cum_flits - out.snap_flits,
                    link_slots: out.cum_slots - out.snap_slots,
                    buf_occupancy_sum: out.cum_occ_sum - out.snap_occ_sum,
                    buf_capacity: out.buf_capacity_total,
                    now,
                };
                let pre =
                    T::ENABLED.then(|| (out.channel.phase(), out.channel.meter().transition_j()));
                out.channel.advance(now);
                let mid = T::ENABLED.then(|| (out.channel.phase(), out.channel.level()));
                out.policy.on_window(&measures, &mut out.channel);
                out.next_transition = out.channel.busy_until().unwrap_or(Cycles::MAX);
                if T::ENABLED {
                    let link = LinkId { node: id, port };
                    let (pre_phase, pre_tj) = pre.expect("captured when enabled");
                    let (mid_phase, mid_level) = mid.expect("captured when enabled");
                    // Progress the channel made during `advance`.
                    phase_events(tracer, link, now, pre_phase, out.channel.phase(), mid_level);
                    let observation = out.policy.observe();
                    // A transition the policy just initiated: the channel was
                    // stable going into `on_window` and is ramping coming out.
                    if matches!(mid_phase, ChannelPhase::Stable)
                        && !matches!(out.channel.phase(), ChannelPhase::Stable)
                    {
                        if let Some(to) = out.channel.target_level() {
                            tracer.record(Event::DvsRequest {
                                t: now,
                                link,
                                from: mid_level,
                                to,
                                lu: measures.link_utilization(),
                                bu: measures.buffer_utilization(),
                                congested: observation.is_some_and(|o| o.congested),
                            });
                        }
                    }
                    // Edge-triggered policy-state events: where the predicted
                    // LU sits relative to the active threshold band, and the
                    // congestion litmus.
                    if let Some(o) = observation {
                        let region: i8 = if o.predicted_lu > o.threshold_high {
                            1
                        } else if o.predicted_lu < o.threshold_low {
                            -1
                        } else {
                            0
                        };
                        if out.last_lu_region != Some(region) {
                            if region != 0 && out.last_lu_region.is_some() {
                                tracer.record(Event::ThresholdCrossing {
                                    t: now,
                                    link,
                                    lu: o.predicted_lu,
                                    low: o.threshold_low,
                                    high: o.threshold_high,
                                    up: region > 0,
                                });
                            }
                            out.last_lu_region = Some(region);
                        }
                        if out.last_congested != Some(o.congested) {
                            if out.last_congested.is_some() {
                                tracer.record(Event::CongestionFlip {
                                    t: now,
                                    link,
                                    congested: o.congested,
                                });
                            }
                            out.last_congested = Some(o.congested);
                        }
                    }
                    let charged = out.channel.meter().transition_j() - pre_tj;
                    if charged > 0.0 {
                        tracer.record(Event::TransitionEnergy {
                            t: now,
                            link,
                            energy_j: charged,
                        });
                    }
                }
                out.snap_flits = out.cum_flits;
                out.snap_slots = out.cum_slots;
                out.snap_occ_sum = out.cum_occ_sum;
                out.snap_cycle = now;
                out.next_window = now + out.policy.window_cycles();
            }
        }
    }

    /// One router cycle: close due history windows, run allocation (switch,
    /// then VC), and transmit on the links. Routers only interact through
    /// next-cycle wires, so the network can run each router's full cycle
    /// back-to-back.
    pub(crate) fn cycle<T: Tracer>(
        &mut self,
        topo: &Topology,
        now: Cycles,
        credit_wires: &mut Vec<CreditWire>,
        flit_wires: &mut Vec<FlitWire>,
        deliveries: &mut Vec<Delivery>,
        tracer: &mut T,
    ) {
        debug_assert_eq!(
            self.processed_until, now,
            "router {} cycled without catching up",
            self.id
        );
        if now > 0 {
            self.close_windows(now, tracer);
        }
        if self.buffered > 0 {
            self.switch_allocation(topo, now, credit_wires, deliveries);
            self.vc_allocation(topo, now, tracer);
        }
        self.link_phase(now, flit_wires, tracer);
        self.processed_until = now + 1;
    }

    fn switch_allocation(
        &mut self,
        topo: &Topology,
        now: Cycles,
        credit_wires: &mut Vec<CreditWire>,
        deliveries: &mut Vec<Delivery>,
    ) {
        let ports = self.inputs.len();
        let vcs = self.inputs[0].vcs.len();
        // Stage 1: each input port nominates one VC (round-robin).
        // sa_requests[p] = (vc, out_port, out_vc)
        self.sa_requests.iter_mut().for_each(|r| *r = None);
        for p in 0..ports {
            let start = self.sa_in_rr[p];
            for i in 0..vcs {
                let vc = (start + i) % vcs;
                let chan = &self.inputs[p].vcs[vc];
                let VcState::Active { out_port, out_vc } = chan.state else {
                    continue;
                };
                if chan.fifo.is_empty() {
                    continue;
                }
                if out_port != LOCAL_PORT {
                    let out = self.outputs[out_port]
                        .as_ref()
                        .expect("active VC routes to real port");
                    if out.credits[out_vc] == 0 || out.staging.len() >= out.staging_cap {
                        continue;
                    }
                }
                self.sa_requests[p] = Some((vc, out_port, out_vc));
                self.activity.sa_arbitrations += 1;
                break;
            }
        }
        // Stage 2: each output port grants one input port (round-robin);
        // the local ejection port grants everyone (immediate ejection).
        self.sa_grants.clear();
        for out_port in 0..ports {
            if out_port == LOCAL_PORT {
                continue;
            }
            let requests = &self.sa_requests;
            let Some(out) = self.outputs[out_port].as_mut() else {
                continue;
            };
            let start = out.sa_rr;
            for i in 0..ports {
                let p = (start + i) % ports;
                if let Some((vc, rp, _)) = requests[p] {
                    if rp == out_port {
                        self.sa_grants.push((p, vc));
                        out.sa_rr = (p + 1) % ports;
                        break;
                    }
                }
            }
        }
        for (p, req) in self.sa_requests.iter().enumerate() {
            if let Some((vc, rp, _)) = req {
                if *rp == LOCAL_PORT {
                    self.sa_grants.push((p, *vc));
                }
            }
        }

        for g in 0..self.sa_grants.len() {
            let (in_port, in_vc) = self.sa_grants[g];
            let (out_port, out_vc) = match self.inputs[in_port].vcs[in_vc].state {
                VcState::Active { out_port, out_vc } => (out_port, out_vc),
                _ => unreachable!("granted VC must be active"),
            };
            let (mut flit, arrived) = self.inputs[in_port].vcs[in_vc]
                .fifo
                .pop_front()
                .expect("granted VC has a flit");
            self.buffered -= 1;
            self.activity.buffer_reads += 1;
            self.sa_in_rr[in_port] = (in_vc + 1) % vcs;
            let input = &mut self.inputs[in_port];
            input.cum_age_sum += now - arrived;
            input.cum_departures += 1;
            // Time buffered waiting for VC allocation, credits, and switch
            // arbitration at this hop (the ejection hop included).
            flit.delay.buffer += (now - arrived) as u32;
            if flit.is_tail() {
                input.vcs[in_vc].state = VcState::Idle;
            }
            // Return the freed buffer slot upstream (non-local inputs only).
            if in_port != LOCAL_PORT {
                // Input port p faces the direction the upstream router lies
                // in, so following p as an output port reaches upstream; the
                // matching "input port" there is its output port facing us.
                if let Some((up_node, up_out)) = topo.downstream(self.id, in_port) {
                    credit_wires.push(CreditWire {
                        arrival: now + CREDIT_WIRE_LATENCY,
                        router: up_node,
                        out_port: up_out,
                        vc: in_vc,
                    });
                }
            }
            if out_port == LOCAL_PORT {
                deliveries.push(Delivery {
                    flit,
                    ejected_at: now,
                });
            } else {
                let out = self.outputs[out_port].as_mut().expect("real output port");
                out.credits[out_vc] -= 1;
                if flit.is_tail() {
                    out.vc_holder[out_vc] = None;
                }
                out.staging.push_back(StagedFlit {
                    ready_at: now + self.pipeline_extra,
                    out_vc,
                    sa_at: now,
                    lock_stall0: out.cum_lock_stall,
                    fault_stall0: out.cum_fault_stall,
                    flit,
                });
                self.activity.crossbar_traversals += 1;
            }
        }
    }

    fn vc_allocation<T: Tracer>(&mut self, topo: &Topology, now: Cycles, tracer: &mut T) {
        let ports = self.inputs.len();
        let vcs = self.inputs[0].vcs.len();
        // Route computation for idle VCs with a fresh packet at the front,
        // then collect output-VC requests as (in_port, in_vc, out_port, on_dor).
        self.va_requests.clear();
        for p in 0..ports {
            for vc in 0..vcs {
                let front_dest = match self.inputs[p].vcs[vc].fifo.front() {
                    Some((f, _)) => f.dest,
                    None => continue,
                };
                let state = self.inputs[p].vcs[vc].state;
                match state {
                    VcState::Idle => {
                        let (out_port, on_dor) = self.compute_route(topo, front_dest);
                        self.inputs[p].vcs[vc].state = VcState::Waiting {
                            out_port,
                            on_dor_path: on_dor,
                        };
                        if out_port == LOCAL_PORT {
                            // Ejection needs no output VC.
                            self.inputs[p].vcs[vc].state = VcState::Active {
                                out_port: LOCAL_PORT,
                                out_vc: 0,
                            };
                        } else {
                            self.va_requests.push((p, vc, out_port, on_dor));
                        }
                    }
                    VcState::Waiting {
                        out_port,
                        on_dor_path,
                    } => {
                        self.va_requests.push((p, vc, out_port, on_dor_path));
                    }
                    VcState::Active { .. } => {}
                }
            }
        }
        self.activity.va_arbitrations += self.va_requests.len() as u64;
        // Grant free output VCs, one requester at a time per output port.
        // Requests are gathered in (in_port, in_vc) order; each output port
        // starts from a rotating offset among its own requesters for
        // fairness.
        for out_port in 1..ports {
            let requests = &self.va_requests;
            let inputs = &mut self.inputs;
            let Some(out) = self.outputs[out_port].as_mut() else {
                continue;
            };
            let n_here = requests.iter().filter(|r| r.2 == out_port).count();
            if n_here == 0 {
                continue;
            }
            let skip = out.va_rr % n_here;
            let mut granted_any = false;
            for (in_port, in_vc, on_dor) in requests
                .iter()
                .filter(|r| r.2 == out_port)
                .cycle()
                .skip(skip)
                .take(n_here)
                .map(|r| (r.0, r.1, r.3))
            {
                // Escape VC 0 is reserved for the dimension-order path under
                // adaptive routing (Duato-style deadlock freedom).
                let first_vc = usize::from(self.routing == Routing::MinimalAdaptive && !on_dor);
                let mut granted = false;
                for out_vc in first_vc..vcs {
                    if out.vc_holder[out_vc].is_none() {
                        out.vc_holder[out_vc] = Some((in_port, in_vc));
                        inputs[in_port].vcs[in_vc].state = VcState::Active { out_port, out_vc };
                        granted = true;
                        break;
                    }
                }
                if granted {
                    granted_any = true;
                }
            }
            if granted_any {
                out.va_rr = out.va_rr.wrapping_add(1);
            }
        }
        if T::ENABLED {
            // Requests still Waiting after the grant pass stalled this cycle.
            let id = self.id;
            for &(in_port, in_vc, out_port, _) in &self.va_requests {
                if matches!(
                    self.inputs[in_port].vcs[in_vc].state,
                    VcState::Waiting { .. }
                ) {
                    tracer.record(Event::VcAllocStall {
                        t: now,
                        link: LinkId {
                            node: id,
                            port: out_port,
                        },
                        in_port,
                        in_vc,
                    });
                }
            }
        }
    }

    fn compute_route(&self, topo: &Topology, dest: NodeId) -> (PortId, bool) {
        if dest == self.id {
            return (LOCAL_PORT, true);
        }
        let dor = Routing::dor_port(topo, self.id, dest);
        match self.routing {
            Routing::DimensionOrder => (dor, true),
            Routing::MinimalAdaptive => {
                let candidates = Routing::productive_ports(topo, self.id, dest);
                // Choose the productive port with the most downstream room;
                // prefer the dimension-order port on ties.
                let best = candidates
                    .iter()
                    .copied()
                    .max_by_key(|&p| {
                        let room: u32 = self.outputs[p]
                            .as_ref()
                            .map(|o| o.credits.iter().sum())
                            .unwrap_or(0);
                        (room, usize::from(p == dor))
                    })
                    .unwrap_or(dor);
                (best, best == dor)
            }
        }
    }

    /// Link phase: advance each channel, open link-clock slots via the rate
    /// accumulator, and transmit ready staged flits downstream.
    fn link_phase<T: Tracer>(
        &mut self,
        now: Cycles,
        flit_wires: &mut Vec<FlitWire>,
        tracer: &mut T,
    ) {
        let id = self.id;
        let pipeline_extra = self.pipeline_extra;
        for (port, slot) in self.outputs.iter_mut().enumerate() {
            let Some(out) = slot else { continue };
            if now >= out.next_transition {
                let pre =
                    T::ENABLED.then(|| (out.channel.phase(), out.channel.meter().transition_j()));
                out.channel.advance(now);
                out.next_transition = out.channel.busy_until().unwrap_or(Cycles::MAX);
                if let Some((pre_phase, pre_tj)) = pre {
                    let link = LinkId { node: id, port };
                    phase_events(
                        tracer,
                        link,
                        now,
                        pre_phase,
                        out.channel.phase(),
                        out.channel.level(),
                    );
                    let charged = out.channel.meter().transition_j() - pre_tj;
                    if charged > 0.0 {
                        tracer.record(Event::TransitionEnergy {
                            t: now,
                            link,
                            energy_j: charged,
                        });
                    }
                }
            }
            if let Some(f) = out.fault.as_mut() {
                let pre_outages = T::ENABLED.then(|| f.stats().outages);
                f.tick(now);
                if let Some(pre) = pre_outages {
                    if f.stats().outages > pre {
                        tracer.record(Event::OutageStart {
                            t: now,
                            link: LinkId { node: id, port },
                        });
                    }
                }
            }
            let link_up = out.fault.as_ref().is_none_or(|f| f.link_up(now));
            if out.channel.is_operational() && link_up {
                out.acc = out.acc.saturating_add(out.channel.freq_x9());
                if out.acc >= 9000 {
                    out.cum_slots += 1;
                    let holding_off = out.fault.as_ref().is_some_and(|f| f.holding_off(now));
                    let ready =
                        !holding_off && matches!(out.staging.front(), Some(s) if s.ready_at <= now);
                    if ready {
                        // Every transmission attempt occupies the slot and
                        // counts as link activity, whether or not the flit
                        // survives the crossing; only a delivered flit leaves
                        // the staging buffer (the retransmission buffer is the
                        // staging FIFO itself — a corrupted flit stays at the
                        // front until acknowledged or the link fail-stops).
                        out.cum_flits += 1;
                        out.acc -= 9000;
                        let level = out.channel.level();
                        let outcome = out
                            .fault
                            .as_mut()
                            .map_or(TransmitOutcome::Deliver { residual: false }, |f| {
                                f.on_transmit(now, level)
                            });
                        match outcome {
                            TransmitOutcome::Deliver { residual } => {
                                if T::ENABLED && residual {
                                    tracer.record(Event::FaultResidual {
                                        t: now,
                                        link: LinkId { node: id, port },
                                    });
                                }
                                let staged = out.staging.pop_front().expect("front checked");
                                let mut flit = staged.flit;
                                // Attribute the egress interval [sa_at, now]:
                                // stall-counter deltas give the lock and fault
                                // shares (at most one increments per cycle, so
                                // the residual is non-negative); the pipeline
                                // claims its fixed depth from the rest and the
                                // remainder is serialization at the current
                                // link rate. The two wire/buffer-write cycles
                                // ride with the pipeline component.
                                let egress = (now - staged.sa_at) as u32;
                                let d_lock = (out.cum_lock_stall - staged.lock_stall0) as u32;
                                let d_fault = (out.cum_fault_stall - staged.fault_stall0) as u32;
                                let residual = egress - d_lock - d_fault;
                                let pipe = residual.min(pipeline_extra as u32);
                                flit.delay.pipeline += pipe + 2;
                                flit.delay.serialization += residual - pipe;
                                flit.delay.lock += d_lock;
                                flit.delay.retransmission += d_fault;
                                // The crossing's wire energy moves from the
                                // idle to the active ledger bucket.
                                out.channel.charge_flit_transmission(now);
                                let (node, in_port) = out.downstream;
                                flit_wires.push(FlitWire {
                                    arrival: now + FLIT_WIRE_LATENCY,
                                    router: node,
                                    in_port,
                                    vc: staged.out_vc,
                                    flit,
                                });
                            }
                            TransmitOutcome::Nack => {
                                // Detected corruption: the flit is resent from
                                // the retransmission (staging) buffer after the
                                // ACK round trip; the wasted crossing still
                                // burned link energy.
                                out.cum_fault_stall += 1;
                                out.channel.charge_retransmission(now);
                                if T::ENABLED {
                                    tracer.record(Event::FaultNack {
                                        t: now,
                                        link: LinkId { node: id, port },
                                    });
                                }
                            }
                            TransmitOutcome::FailStop => {
                                // Retry budget exhausted: the link is dead and
                                // `link_up` stays false from the next cycle on.
                                out.cum_fault_stall += 1;
                                if T::ENABLED {
                                    tracer.record(Event::FaultFailStop {
                                        t: now,
                                        link: LinkId { node: id, port },
                                    });
                                }
                            }
                        }
                    } else {
                        out.acc = 9000; // idle slots do not bank extra bandwidth
                        if holding_off && !out.staging.is_empty() {
                            // Post-NACK recovery hold: the slot was usable but
                            // the fault protocol kept a waiting flit quiet.
                            out.cum_fault_stall += 1;
                        }
                    }
                }
            } else if !out.staging.is_empty() {
                // A flit is waiting behind a link that cannot transmit. The
                // counters record only *realized* stalls (a disabled idle
                // link costs no latency); any staged flit's egress interval
                // has a non-empty staging queue throughout, so staged-flit
                // deltas still partition the interval exactly.
                if !out.channel.is_operational() {
                    // Frequency lock: the link is disabled while the
                    // receiver re-acquires the clock.
                    out.cum_lock_stall += 1;
                } else {
                    // Outage or fail-stop: the link is down.
                    out.cum_fault_stall += 1;
                }
            }
            let occupied = out.buf_capacity_total - out.credits.iter().sum::<u32>();
            out.cum_occ_sum += u64::from(occupied);
        }
        if self.buffered > 0 {
            for input in &mut self.inputs {
                input.cum_occupancy_sum += input.occupancy() as u64;
            }
        }
    }

    pub(crate) fn input_stats(&self, port: PortId) -> InputPortStats {
        let input = &self.inputs[port];
        InputPortStats {
            occupancy: input.occupancy(),
            capacity: input.vcs.iter().map(|v| v.cap).sum(),
            cum_age_sum: input.cum_age_sum,
            cum_departures: input.cum_departures,
            cum_occupancy_sum: input.cum_occupancy_sum,
        }
    }

    pub(crate) fn output_stats(&self, port: PortId, now: Cycles) -> Option<OutputPortStats> {
        let out = self.outputs[port].as_ref()?;
        // Under the active-set schedule a quiescent router may not have
        // executed cycles `[processed_until, now)` yet; project the idle
        // drift those cycles owe so read-out is bit-identical to the
        // full-scan schedule (which always has `processed_until == now`).
        let k = now.saturating_sub(self.processed_until);
        let (slots, _, occ) = if k > 0 {
            out.idle_projection(k)
        } else {
            (0, 0, 0)
        };
        Some(OutputPortStats {
            level: out.channel.level(),
            operational: out.channel.is_operational(),
            power_w: out.channel.power_w(),
            cum_flits: out.cum_flits,
            cum_slots: out.cum_slots + slots,
            cum_occ_sum: out.cum_occ_sum + occ,
            credits: out.credits.iter().sum(),
            buf_capacity: out.buf_capacity_total,
            freq_x9: out.channel.freq_x9(),
            energy_j: out.channel.energy_total_at(now),
            ledger: out.channel.ledger_at(now),
            cum_lock_stall: out.cum_lock_stall,
            cum_fault_stall: out.cum_fault_stall,
            fault: out.fault.as_ref().map(ChannelFaultModel::stats),
        })
    }

    /// Total flits currently inside this router (buffers + staging),
    /// excluding the source queue.
    pub(crate) fn flits_in_flight(&self) -> usize {
        let buffered: usize = self.inputs.iter().map(InputPort::occupancy).sum();
        let staged: usize = self.outputs.iter().flatten().map(|o| o.staging.len()).sum();
        buffered + staged
    }
}
