use crate::{Cycles, NodeId};

/// Unique identifier of a packet within one simulation.
pub type PacketId = u64;

/// The role of a flit within its packet.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub enum FlitKind {
    /// First flit; carries routing information.
    Head,
    /// Interior flit.
    Body,
    /// Last flit; releases the wormhole path.
    Tail,
}

/// A flow-control unit: the fixed-size segment of a packet that moves
/// through the network one buffer slot and one link slot at a time.
///
/// Every flit carries its packet's identity and timing so the simulator can
/// account latency without a side table (5 flits per packet makes the
/// duplication cheap, and it keeps flits `Copy`).
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct Flit {
    /// Packet this flit belongs to.
    pub packet: PacketId,
    /// Position within the packet.
    pub kind: FlitKind,
    /// Sequence number within the packet (head = 0).
    pub seq: u8,
    /// Injecting node.
    pub src: NodeId,
    /// Destination node.
    pub dest: NodeId,
    /// Cycle the packet was created (start of source queuing).
    pub created_at: Cycles,
}

impl Flit {
    /// Whether this is the head flit.
    pub fn is_head(&self) -> bool {
        self.kind == FlitKind::Head
    }

    /// Whether this is the tail flit.
    pub fn is_tail(&self) -> bool {
        self.kind == FlitKind::Tail
    }
}

/// Build the `len` flits of one packet, head first.
///
/// A single-flit packet gets a lone `Tail` flit that also acts as the head
/// (the router treats the *first* flit of a packet as routable regardless).
///
/// # Panics
///
/// Panics if `len == 0` or `len > 255`.
pub fn make_packet(
    packet: PacketId,
    src: NodeId,
    dest: NodeId,
    created_at: Cycles,
    len: usize,
) -> Vec<Flit> {
    assert!(len > 0 && len <= 255, "packet length must be in 1..=255");
    (0..len)
        .map(|i| Flit {
            packet,
            kind: if i == 0 && len > 1 {
                FlitKind::Head
            } else if i + 1 == len {
                FlitKind::Tail
            } else {
                FlitKind::Body
            },
            seq: i as u8,
            src,
            dest,
            created_at,
        })
        .collect()
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn five_flit_packet_layout() {
        let flits = make_packet(7, 1, 2, 100, 5);
        assert_eq!(flits.len(), 5);
        assert_eq!(flits[0].kind, FlitKind::Head);
        assert!(flits[0].is_head());
        assert_eq!(flits[1].kind, FlitKind::Body);
        assert_eq!(flits[2].kind, FlitKind::Body);
        assert_eq!(flits[3].kind, FlitKind::Body);
        assert_eq!(flits[4].kind, FlitKind::Tail);
        assert!(flits[4].is_tail());
        for (i, f) in flits.iter().enumerate() {
            assert_eq!(f.seq as usize, i);
            assert_eq!(f.packet, 7);
            assert_eq!((f.src, f.dest, f.created_at), (1, 2, 100));
        }
    }

    #[test]
    fn single_flit_packet_is_tail() {
        let flits = make_packet(1, 0, 1, 0, 1);
        assert_eq!(flits.len(), 1);
        assert_eq!(flits[0].kind, FlitKind::Tail);
        assert_eq!(flits[0].seq, 0);
    }

    #[test]
    fn two_flit_packet_is_head_and_tail() {
        let flits = make_packet(1, 0, 1, 0, 2);
        assert_eq!(flits[0].kind, FlitKind::Head);
        assert_eq!(flits[1].kind, FlitKind::Tail);
    }

    #[test]
    #[should_panic(expected = "packet length")]
    fn zero_length_packet_panics() {
        let _ = make_packet(1, 0, 1, 0, 0);
    }
}
