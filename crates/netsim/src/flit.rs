use obs::LatencyBreakdown;

use crate::{Cycles, NodeId};

/// Unique identifier of a packet within one simulation.
pub type PacketId = u64;

/// The role of a flit within its packet.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub enum FlitKind {
    /// First flit; carries routing information.
    Head,
    /// Interior flit.
    Body,
    /// Last flit; releases the wormhole path.
    Tail,
}

/// A flow-control unit: the fixed-size segment of a packet that moves
/// through the network one buffer slot and one link slot at a time.
///
/// Every flit carries its packet's identity and timing so the simulator can
/// account latency without a side table (5 flits per packet makes the
/// duplication cheap, and it keeps flits `Copy`).
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct Flit {
    /// Packet this flit belongs to.
    pub packet: PacketId,
    /// Position within the packet.
    pub kind: FlitKind,
    /// Sequence number within the packet (head = 0).
    pub seq: u8,
    /// Injecting node.
    pub src: NodeId,
    /// Destination node.
    pub dest: NodeId,
    /// Cycle the packet was created (start of source queuing).
    pub created_at: Cycles,
    /// Link-level CRC-16 tag over the flit's identity fields, stamped at
    /// packetization. Receivers verify it on every link crossing; the
    /// fault model never delivers a detected-corrupt flit, so a delivered
    /// flit's tag always verifies (undetected corruption is, by
    /// definition, a pattern the CRC cannot see and is accounted as a
    /// residual error instead of mutating simulator state).
    pub crc: u16,
    /// Running latency attribution, updated as the flit moves: the
    /// components always sum to the cycles elapsed since `created_at` at
    /// each accounting point, so the tail flit's breakdown sums bit-exactly
    /// to the packet's measured latency at ejection. Not part of the
    /// link-level CRC — it is bookkeeping, not transmitted identity.
    pub delay: LatencyBreakdown,
}

impl Flit {
    /// Whether this is the head flit.
    pub fn is_head(&self) -> bool {
        self.kind == FlitKind::Head
    }

    /// Whether this is the tail flit.
    pub fn is_tail(&self) -> bool {
        self.kind == FlitKind::Tail
    }

    /// Whether the CRC tag matches the flit's identity fields.
    pub fn crc_valid(&self) -> bool {
        self.crc == identity_crc(self.packet, self.seq, self.src, self.dest, self.created_at)
    }
}

/// CRC-16/CCITT over a flit's identity fields.
fn identity_crc(packet: PacketId, seq: u8, src: NodeId, dest: NodeId, created_at: Cycles) -> u16 {
    let mut bytes = [0u8; 33];
    bytes[0..8].copy_from_slice(&packet.to_le_bytes());
    bytes[8] = seq;
    bytes[9..17].copy_from_slice(&(src as u64).to_le_bytes());
    bytes[17..25].copy_from_slice(&(dest as u64).to_le_bytes());
    bytes[25..33].copy_from_slice(&created_at.to_le_bytes());
    faults::crc16_ccitt(&bytes)
}

/// Build the `len` flits of one packet, head first.
///
/// A single-flit packet gets a lone `Tail` flit that also acts as the head
/// (the router treats the *first* flit of a packet as routable regardless).
///
/// # Panics
///
/// Panics if `len == 0` or `len > 255`.
pub fn make_packet(
    packet: PacketId,
    src: NodeId,
    dest: NodeId,
    created_at: Cycles,
    len: usize,
) -> Vec<Flit> {
    assert!(len > 0 && len <= 255, "packet length must be in 1..=255");
    (0..len)
        .map(|i| Flit {
            packet,
            kind: if i == 0 && len > 1 {
                FlitKind::Head
            } else if i + 1 == len {
                FlitKind::Tail
            } else {
                FlitKind::Body
            },
            seq: i as u8,
            src,
            dest,
            created_at,
            crc: identity_crc(packet, i as u8, src, dest, created_at),
            delay: LatencyBreakdown::default(),
        })
        .collect()
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn five_flit_packet_layout() {
        let flits = make_packet(7, 1, 2, 100, 5);
        assert_eq!(flits.len(), 5);
        assert_eq!(flits[0].kind, FlitKind::Head);
        assert!(flits[0].is_head());
        assert_eq!(flits[1].kind, FlitKind::Body);
        assert_eq!(flits[2].kind, FlitKind::Body);
        assert_eq!(flits[3].kind, FlitKind::Body);
        assert_eq!(flits[4].kind, FlitKind::Tail);
        assert!(flits[4].is_tail());
        for (i, f) in flits.iter().enumerate() {
            assert_eq!(f.seq as usize, i);
            assert_eq!(f.packet, 7);
            assert_eq!((f.src, f.dest, f.created_at), (1, 2, 100));
        }
    }

    #[test]
    fn single_flit_packet_is_tail() {
        let flits = make_packet(1, 0, 1, 0, 1);
        assert_eq!(flits.len(), 1);
        assert_eq!(flits[0].kind, FlitKind::Tail);
        assert_eq!(flits[0].seq, 0);
    }

    #[test]
    fn two_flit_packet_is_head_and_tail() {
        let flits = make_packet(1, 0, 1, 0, 2);
        assert_eq!(flits[0].kind, FlitKind::Head);
        assert_eq!(flits[1].kind, FlitKind::Tail);
    }

    #[test]
    #[should_panic(expected = "packet length")]
    fn zero_length_packet_panics() {
        let _ = make_packet(1, 0, 1, 0, 0);
    }

    #[test]
    fn crc_tags_verify_and_detect_tampering() {
        let flits = make_packet(99, 3, 60, 1234, 5);
        assert!(flits.iter().all(Flit::crc_valid));
        // Flits of one packet differ in seq, so their tags differ too.
        assert_ne!(flits[0].crc, flits[1].crc);
        let mut tampered = flits[2];
        tampered.dest = 61;
        assert!(!tampered.crc_valid());
        let mut reseq = flits[2];
        reseq.seq = 3;
        assert!(!reseq.crc_valid());
    }
}
