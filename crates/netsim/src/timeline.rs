//! Network-wide fixed-stride sampling: a [`TimelineCollector`] generalizes
//! [`ChannelProbe`] from one channel to every channel, filling an
//! [`obs::Timeline`] that the `obs` exporters turn into Perfetto traces and
//! figure-style CSVs.

use obs::{LinkId, Timeline, TimelineSample, Tracer};

use crate::{ChannelProbe, Cycles, Network};

/// Samples every channel of a [`Network`] on a fixed stride into bounded
/// per-link ring buffers.
///
/// Attach after construction (or after warm-up), then call
/// [`poll`](TimelineCollector::poll) from the simulation driver loop — it
/// does nothing until a full stride has elapsed, so polling every cycle
/// (or every few cycles) is fine. Reading the simulator's cumulative
/// counters perturbs nothing: a collected run is cycle-identical to an
/// uncollected one.
///
/// # Example
///
/// ```
/// use netsim::{Network, NetworkConfig, TimelineCollector};
///
/// let mut net = Network::new(NetworkConfig::paper_8x8()).unwrap();
/// let mut collector = TimelineCollector::new(&net, 50, 256);
/// net.inject(0, 63);
/// for _ in 0..500 {
///     net.step();
///     collector.poll(&net);
/// }
/// let timeline = collector.into_timeline();
/// assert_eq!(timeline.tracks().len(), 224);
/// assert_eq!(timeline.tracks()[0].len(), 10);
/// ```
#[derive(Debug)]
pub struct TimelineCollector {
    probes: Vec<(usize, ChannelProbe)>,
    stride: Cycles,
    next: Cycles,
    timeline: Timeline,
}

impl TimelineCollector {
    /// Attach to every channel of `net`, sampling every `stride` cycles and
    /// keeping the most recent `capacity` samples per channel.
    ///
    /// # Panics
    ///
    /// Panics if `stride` is zero.
    pub fn new<T: Tracer>(net: &Network<T>, stride: Cycles, capacity: usize) -> Self {
        assert!(stride > 0, "sampling stride must be positive");
        let mut timeline = Timeline::new(stride);
        let probes = ChannelProbe::all(net)
            .into_iter()
            .map(|p| {
                let id = LinkId {
                    node: p.node(),
                    port: p.port(),
                };
                (timeline.add_track(id, capacity), p)
            })
            .collect();
        Self {
            probes,
            stride,
            next: net.time() + stride,
            timeline,
        }
    }

    /// Sample all channels if a full stride has elapsed since the last
    /// sample; returns whether a sample was taken.
    pub fn poll<T: Tracer>(&mut self, net: &Network<T>) -> bool {
        if net.time() < self.next {
            return false;
        }
        for (idx, probe) in &mut self.probes {
            let s = probe.sample(net);
            self.timeline.push(
                *idx,
                TimelineSample {
                    start: s.start,
                    end: s.end,
                    link_utilization: s.link_utilization,
                    buffer_utilization: s.buffer_utilization,
                    level: s.level as u32,
                    freq_mhz: s.freq_mhz,
                    power_w: s.power_w,
                    energy_j: s.energy_j,
                    flits: s.flits_sent,
                },
            );
        }
        self.next = net.time() + self.stride;
        true
    }

    /// The collected timeline so far.
    pub fn timeline(&self) -> &Timeline {
        &self.timeline
    }

    /// Consume the collector and return the timeline.
    pub fn into_timeline(self) -> Timeline {
        self.timeline
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use obs::{EventKind, EventLog, EventMask};

    use crate::{NetworkConfig, Topology};

    fn cfg_4x4() -> NetworkConfig {
        let mut cfg = NetworkConfig::paper_8x8();
        cfg.topology = Topology::mesh(4, 2).unwrap();
        cfg
    }

    fn drive<T: Tracer>(net: &mut Network<T>, collector: &mut TimelineCollector) {
        // Continuous deterministic traffic so even the last retained
        // windows carry flits.
        for t in 0..2_000u64 {
            if t % 10 == 0 {
                net.inject((t * 7 % 16) as usize, ((t * 11 + 3) % 16) as usize);
            }
            net.step();
            collector.poll(net);
        }
    }

    #[test]
    fn collector_samples_all_channels_on_stride() {
        let mut net = Network::new(cfg_4x4()).unwrap();
        let mut collector = TimelineCollector::new(&net, 50, 16);
        drive(&mut net, &mut collector);
        let tl = collector.timeline();
        assert_eq!(tl.tracks().len(), 48);
        assert_eq!(tl.stride(), 50);
        for tr in tl.tracks() {
            // 2000 cycles / 50 stride = 40 samples, capped at 16 retained.
            assert_eq!(tr.len(), 16);
            assert_eq!(tr.dropped(), 24);
            for s in tr.samples() {
                assert_eq!(s.end - s.start, 50);
                assert!(s.link_utilization >= 0.0 && s.link_utilization <= 1.0);
                assert!(s.energy_j >= 0.0);
            }
        }
        // Somebody carried traffic.
        let total_flits: u64 = tl
            .tracks()
            .iter()
            .flat_map(|tr| tr.samples())
            .map(|s| s.flits)
            .sum();
        assert!(total_flits > 0);
    }

    #[test]
    fn tracing_does_not_perturb_the_simulation() {
        // The same workload must produce cycle-identical results whether
        // traced with an EventLog or untraced (NoopTracer): tracing is
        // observation, never interference.
        let run_noop = {
            let mut net = Network::new(cfg_4x4()).unwrap();
            let mut c = TimelineCollector::new(&net, 50, 16);
            drive(&mut net, &mut c);
            (
                net.stats().packets_delivered(),
                net.stats().latency().mean(),
                net.energy_j(),
            )
        };
        let run_traced = {
            let mut net = Network::with_tracer(
                cfg_4x4(),
                |_, _| Box::new(crate::StaticLevelPolicy::default()),
                EventLog::with_capacity(10_000),
            )
            .unwrap();
            let mut c = TimelineCollector::new(&net, 50, 16);
            drive(&mut net, &mut c);
            let log = net.tracer();
            assert!(log.count(EventKind::PacketInject) == 200);
            assert!(log.count(EventKind::FlitInject) > 0);
            assert!(log.count(EventKind::PacketDelivered) > 0);
            (
                net.stats().packets_delivered(),
                net.stats().latency().mean(),
                net.energy_j(),
            )
        };
        assert_eq!(run_noop, run_traced);
    }

    #[test]
    fn event_log_captures_dvs_transitions() {
        use crate::policy::{LinkPolicy, WindowMeasures};
        use dvslink::DvsChannel;

        struct OneShotDown;
        impl LinkPolicy for OneShotDown {
            fn window_cycles(&self) -> u64 {
                200
            }
            fn on_window(&mut self, m: &WindowMeasures, ch: &mut DvsChannel) {
                let _ = ch.request_step_down(m.now);
            }
        }
        let mut net = Network::with_tracer(
            cfg_4x4(),
            |_, _| Box::new(OneShotDown),
            EventLog::unbounded().with_mask(EventMask::DVS),
        )
        .unwrap();
        net.run(30_000);
        let log = net.into_tracer();
        // Every channel steps down at least once: request, lock, complete,
        // and the transition-energy charge must all be visible.
        assert!(log.count(EventKind::DvsRequest) >= 48);
        assert!(log.count(EventKind::DvsLock) >= 48);
        assert!(log.count(EventKind::DvsComplete) >= 48);
        assert!(log.count(EventKind::TransitionEnergy) >= 48);
        // Locks must precede their completions for the same link.
        let mut saw_lock = false;
        for e in log.events() {
            match e.kind() {
                EventKind::DvsLock => saw_lock = true,
                EventKind::DvsComplete => {
                    assert!(saw_lock, "completion before any lock");
                }
                _ => {}
            }
        }
    }
}
