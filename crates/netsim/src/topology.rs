use std::error::Error;
use std::fmt;

/// Index of a node (router) in the network, in `0..Topology::num_nodes()`.
pub type NodeId = usize;

/// Index of a router port. Port [`LOCAL_PORT`] (0) is the local
/// injection/ejection port; port `1 + 2·d + dir` connects dimension `d` in
/// direction `dir` (0 = positive, 1 = negative).
pub type PortId = usize;

/// The local injection/ejection port of every router.
pub const LOCAL_PORT: PortId = 0;

/// Direction along a dimension.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub enum Direction {
    /// Toward increasing coordinate.
    Pos,
    /// Toward decreasing coordinate.
    Neg,
}

impl Direction {
    /// The opposite direction.
    pub fn opposite(self) -> Self {
        match self {
            Direction::Pos => Direction::Neg,
            Direction::Neg => Direction::Pos,
        }
    }
}

/// Error constructing a [`Topology`].
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum TopologyError {
    /// Radix must be at least 2.
    RadixTooSmall,
    /// Dimension count must be at least 1.
    NoDimensions,
    /// `radix^dims` overflows the node index space.
    TooManyNodes,
}

impl fmt::Display for TopologyError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            TopologyError::RadixTooSmall => write!(f, "radix must be at least 2"),
            TopologyError::NoDimensions => write!(f, "dimension count must be at least 1"),
            TopologyError::TooManyNodes => write!(f, "radix^dims exceeds the supported node count"),
        }
    }
}

impl Error for TopologyError {}

/// A k-ary n-cube network topology: `dims` dimensions of radix `radix`,
/// either a mesh (no wraparound) or a torus.
///
/// # Example
///
/// ```
/// use netsim::{Direction, Topology};
///
/// let mesh = Topology::mesh(8, 2)?; // the paper's 8x8 mesh
/// assert_eq!(mesh.num_nodes(), 64);
/// assert_eq!(mesh.coord(10, 0), 2); // node 10 = (2, 1)
/// assert_eq!(mesh.coord(10, 1), 1);
/// assert_eq!(mesh.neighbor(0, 0, Direction::Neg), None); // mesh edge
/// # Ok::<(), netsim::TopologyError>(())
/// ```
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct Topology {
    radix: u32,
    dims: u32,
    wrap: bool,
    num_nodes: usize,
}

impl Topology {
    /// A `radix`-ary `dims`-cube without wraparound links (mesh).
    ///
    /// # Errors
    ///
    /// Returns [`TopologyError`] for radix < 2, zero dimensions, or node
    /// counts that overflow `usize`.
    pub fn mesh(radix: u32, dims: u32) -> Result<Self, TopologyError> {
        Self::new(radix, dims, false)
    }

    /// A `radix`-ary `dims`-cube with wraparound links (torus).
    ///
    /// # Errors
    ///
    /// Same conditions as [`Topology::mesh`].
    pub fn torus(radix: u32, dims: u32) -> Result<Self, TopologyError> {
        Self::new(radix, dims, true)
    }

    fn new(radix: u32, dims: u32, wrap: bool) -> Result<Self, TopologyError> {
        if radix < 2 {
            return Err(TopologyError::RadixTooSmall);
        }
        if dims == 0 {
            return Err(TopologyError::NoDimensions);
        }
        let mut num_nodes: usize = 1;
        for _ in 0..dims {
            num_nodes = num_nodes
                .checked_mul(radix as usize)
                .ok_or(TopologyError::TooManyNodes)?;
        }
        if num_nodes > u32::MAX as usize {
            return Err(TopologyError::TooManyNodes);
        }
        Ok(Self {
            radix,
            dims,
            wrap,
            num_nodes,
        })
    }

    /// Network radix `k`.
    pub fn radix(&self) -> u32 {
        self.radix
    }

    /// Dimension count `n`.
    pub fn dims(&self) -> u32 {
        self.dims
    }

    /// Whether wraparound links exist (torus).
    pub fn is_torus(&self) -> bool {
        self.wrap
    }

    /// Total number of nodes, `k^n`.
    pub fn num_nodes(&self) -> usize {
        self.num_nodes
    }

    /// Ports per router: one local port plus two per dimension.
    pub fn ports_per_router(&self) -> usize {
        1 + 2 * self.dims as usize
    }

    /// The coordinate of `node` along dimension `dim`.
    ///
    /// # Panics
    ///
    /// Panics if `node` or `dim` is out of range (`debug_assert`ed; release
    /// builds return a wrapped value for out-of-range nodes).
    pub fn coord(&self, node: NodeId, dim: u32) -> u32 {
        debug_assert!(node < self.num_nodes);
        debug_assert!(dim < self.dims);
        let mut v = node as u64;
        for _ in 0..dim {
            v /= u64::from(self.radix);
        }
        (v % u64::from(self.radix)) as u32
    }

    /// The node at the given coordinates (`coords.len()` must equal `dims`).
    ///
    /// # Panics
    ///
    /// Panics if the coordinate count or any coordinate is out of range.
    pub fn node_at(&self, coords: &[u32]) -> NodeId {
        assert_eq!(coords.len(), self.dims as usize, "wrong coordinate count");
        let mut id: usize = 0;
        for (d, &c) in coords.iter().enumerate().rev() {
            assert!(c < self.radix, "coordinate {c} out of range in dim {d}");
            id = id * self.radix as usize + c as usize;
        }
        id
    }

    /// The neighbor of `node` along `dim` in direction `dir`, or `None` at a
    /// mesh boundary.
    pub fn neighbor(&self, node: NodeId, dim: u32, dir: Direction) -> Option<NodeId> {
        let c = self.coord(node, dim);
        let stride = self.stride(dim);
        match dir {
            Direction::Pos => {
                if c + 1 < self.radix {
                    Some(node + stride)
                } else if self.wrap {
                    Some(node - stride * (self.radix as usize - 1))
                } else {
                    None
                }
            }
            Direction::Neg => {
                if c > 0 {
                    Some(node - stride)
                } else if self.wrap {
                    Some(node + stride * (self.radix as usize - 1))
                } else {
                    None
                }
            }
        }
    }

    /// The port index connecting a router to its neighbor along `dim` in
    /// direction `dir`.
    pub fn port(&self, dim: u32, dir: Direction) -> PortId {
        debug_assert!(dim < self.dims);
        1 + 2 * dim as usize + usize::from(dir == Direction::Neg)
    }

    /// The `(dimension, direction)` of a non-local port.
    ///
    /// # Panics
    ///
    /// Panics if `port` is [`LOCAL_PORT`] or out of range.
    pub fn port_dim_dir(&self, port: PortId) -> (u32, Direction) {
        assert!(
            port != LOCAL_PORT && port < self.ports_per_router(),
            "port {port} is not a network port"
        );
        let dim = ((port - 1) / 2) as u32;
        let dir = if (port - 1).is_multiple_of(2) {
            Direction::Pos
        } else {
            Direction::Neg
        };
        (dim, dir)
    }

    /// The input port on the *receiving* router for traffic leaving through
    /// `out_port`: the port facing back along the same dimension.
    pub fn opposite_port(&self, out_port: PortId) -> PortId {
        let (dim, dir) = self.port_dim_dir(out_port);
        self.port(dim, dir.opposite())
    }

    /// The downstream `(router, input port)` reached through `out_port` of
    /// `node`, or `None` if the port faces a mesh boundary.
    pub fn downstream(&self, node: NodeId, out_port: PortId) -> Option<(NodeId, PortId)> {
        let (dim, dir) = self.port_dim_dir(out_port);
        let next = self.neighbor(node, dim, dir)?;
        Some((next, self.opposite_port(out_port)))
    }

    /// Minimal hop distance between two nodes.
    pub fn distance(&self, a: NodeId, b: NodeId) -> u32 {
        (0..self.dims)
            .map(|d| {
                let ca = self.coord(a, d);
                let cb = self.coord(b, d);
                let diff = ca.abs_diff(cb);
                if self.wrap {
                    diff.min(self.radix - diff)
                } else {
                    diff
                }
            })
            .sum()
    }

    /// Iterate over all node ids.
    pub fn nodes(&self) -> std::ops::Range<NodeId> {
        0..self.num_nodes
    }

    /// Number of *directed* inter-router channels in the network.
    ///
    /// Each neighboring pair contributes one channel per direction; a torus
    /// adds the wraparound channels.
    pub fn num_channels(&self) -> usize {
        let k = self.radix as usize;
        let per_dim_lines = self.num_nodes / k;
        let per_line = if self.wrap { k } else { k - 1 };
        // directed: x2
        self.dims as usize * per_dim_lines * per_line * 2
    }

    fn stride(&self, dim: u32) -> usize {
        let mut s = 1usize;
        for _ in 0..dim {
            s *= self.radix as usize;
        }
        s
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn mesh_8x8_basics() {
        let t = Topology::mesh(8, 2).unwrap();
        assert_eq!(t.num_nodes(), 64);
        assert_eq!(t.ports_per_router(), 5);
        assert!(!t.is_torus());
        assert_eq!(t.num_channels(), 224); // 2 dims * 8 lines * 7 hops * 2 dirs
    }

    #[test]
    fn coords_roundtrip() {
        let t = Topology::mesh(8, 2).unwrap();
        for node in t.nodes() {
            let c = [t.coord(node, 0), t.coord(node, 1)];
            assert_eq!(t.node_at(&c), node);
        }
    }

    #[test]
    fn three_dim_coords_roundtrip() {
        let t = Topology::torus(4, 3).unwrap();
        assert_eq!(t.num_nodes(), 64);
        for node in t.nodes() {
            let c = [t.coord(node, 0), t.coord(node, 1), t.coord(node, 2)];
            assert_eq!(t.node_at(&c), node);
        }
    }

    #[test]
    fn mesh_boundaries_have_no_neighbors() {
        let t = Topology::mesh(8, 2).unwrap();
        assert_eq!(t.neighbor(0, 0, Direction::Neg), None);
        assert_eq!(t.neighbor(0, 1, Direction::Neg), None);
        assert_eq!(t.neighbor(7, 0, Direction::Pos), None);
        assert_eq!(t.neighbor(63, 0, Direction::Pos), None);
        assert_eq!(t.neighbor(63, 1, Direction::Pos), None);
        assert_eq!(t.neighbor(0, 0, Direction::Pos), Some(1));
        assert_eq!(t.neighbor(0, 1, Direction::Pos), Some(8));
    }

    #[test]
    fn torus_wraps() {
        let t = Topology::torus(8, 2).unwrap();
        assert_eq!(t.neighbor(0, 0, Direction::Neg), Some(7));
        assert_eq!(t.neighbor(7, 0, Direction::Pos), Some(0));
        assert_eq!(t.neighbor(0, 1, Direction::Neg), Some(56));
        assert_eq!(t.num_channels(), 256); // 2 * 8 * 8 * 2
    }

    #[test]
    fn ports_map_one_to_one() {
        let t = Topology::mesh(8, 2).unwrap();
        let mut seen = vec![false; t.ports_per_router()];
        seen[LOCAL_PORT] = true;
        for d in 0..2 {
            for dir in [Direction::Pos, Direction::Neg] {
                let p = t.port(d, dir);
                assert!(!seen[p], "port {p} assigned twice");
                seen[p] = true;
                assert_eq!(t.port_dim_dir(p), (d, dir));
            }
        }
        assert!(seen.iter().all(|&s| s));
    }

    #[test]
    fn opposite_port_faces_back() {
        let t = Topology::mesh(8, 2).unwrap();
        for p in 1..t.ports_per_router() {
            let opp = t.opposite_port(p);
            assert_ne!(opp, p);
            assert_eq!(t.opposite_port(opp), p);
        }
    }

    #[test]
    fn downstream_wiring_is_symmetric() {
        let t = Topology::mesh(8, 2).unwrap();
        for node in t.nodes() {
            for p in 1..t.ports_per_router() {
                if let Some((next, in_port)) = t.downstream(node, p) {
                    // Traffic back from `next` through the matching output
                    // port must land on `node`.
                    let back_out = in_port; // output port index mirrors input
                    let (back_node, back_in) = t.downstream(next, back_out).unwrap();
                    assert_eq!(back_node, node);
                    assert_eq!(back_in, p);
                }
            }
        }
    }

    #[test]
    fn distance_mesh_vs_torus() {
        let mesh = Topology::mesh(8, 2).unwrap();
        let torus = Topology::torus(8, 2).unwrap();
        // (0,0) to (7,7)
        assert_eq!(mesh.distance(0, 63), 14);
        assert_eq!(torus.distance(0, 63), 2);
        assert_eq!(mesh.distance(5, 5), 0);
    }

    #[test]
    fn invalid_parameters_rejected() {
        assert_eq!(Topology::mesh(1, 2), Err(TopologyError::RadixTooSmall));
        assert_eq!(Topology::mesh(8, 0), Err(TopologyError::NoDimensions));
        assert_eq!(Topology::mesh(2, 64), Err(TopologyError::TooManyNodes));
    }

    #[test]
    #[should_panic(expected = "not a network port")]
    fn local_port_has_no_dim() {
        let t = Topology::mesh(8, 2).unwrap();
        let _ = t.port_dim_dir(LOCAL_PORT);
    }
}
