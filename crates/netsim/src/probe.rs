use obs::Tracer;

use crate::{Cycles, Network, NodeId, PortId, Topology, LOCAL_PORT};

/// One sampled window of a probed channel.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct ProbeSample {
    /// First cycle of the sampled window.
    pub start: Cycles,
    /// One past the last cycle of the window.
    pub end: Cycles,
    /// Link utilization over the window (paper Eq. 2).
    pub link_utilization: f64,
    /// Downstream input-buffer utilization over the window (paper Eq. 3).
    pub buffer_utilization: f64,
    /// Mean downstream input-buffer age of flits departing in the window
    /// (paper Eq. 4), in cycles; 0 when nothing departed.
    pub buffer_age: f64,
    /// Channel level at sampling time.
    pub level: usize,
    /// Instantaneous channel power at sampling time, watts.
    pub power_w: f64,
    /// Link frequency at sampling time, MHz.
    pub freq_mhz: f64,
    /// Channel energy consumed during the window, joules.
    pub energy_j: f64,
    /// Flits sent during the window.
    pub flits_sent: u64,
}

/// Samples the traffic measures of one channel (an output port and the
/// input port downstream of it) at caller-chosen instants, independent of
/// the DVS policy's own history window.
///
/// This is the instrument behind the paper's Figs. 3–5: it reads the
/// simulator's cumulative counters and reports per-interval deltas, so
/// attaching a probe perturbs nothing.
///
/// # Example
///
/// ```
/// use netsim::{ChannelProbe, Network, NetworkConfig};
///
/// let mut net = Network::new(NetworkConfig::paper_8x8()).unwrap();
/// let mut probe = ChannelProbe::new(&net, 9, 1).expect("port 1 of router 9 exists");
/// net.inject(9, 14);
/// for _ in 0..50 {
///     net.step();
/// }
/// let sample = probe.sample(&net);
/// assert!(sample.link_utilization >= 0.0 && sample.link_utilization <= 1.0);
/// ```
#[derive(Debug, Clone)]
pub struct ChannelProbe {
    node: NodeId,
    port: PortId,
    down_node: NodeId,
    down_port: PortId,
    last_cycle: Cycles,
    last_flits: u64,
    last_slots: u64,
    last_occ_sum: u64,
    last_age_sum: u64,
    last_departures: u64,
    last_energy: f64,
}

impl ChannelProbe {
    /// Attach a probe to output port `port` of router `node`.
    ///
    /// Returns `None` if that port has no channel (local port or mesh
    /// boundary).
    pub fn new<T: Tracer>(net: &Network<T>, node: NodeId, port: PortId) -> Option<Self> {
        let stats = net.output_stats(node, port)?;
        let (down_node, down_port) = net.downstream(node, port)?;
        let din = net.input_stats(down_node, down_port);
        Some(Self {
            node,
            port,
            down_node,
            down_port,
            last_cycle: net.time(),
            last_flits: stats.cum_flits,
            last_slots: stats.cum_slots,
            last_occ_sum: stats.cum_occ_sum,
            last_age_sum: din.cum_age_sum,
            last_departures: din.cum_departures,
            last_energy: stats.energy_j,
        })
    }

    /// Attach one probe to every channel in `net`, in `(node, port)` order.
    ///
    /// This is the whole-network generalization the figure harnesses use
    /// instead of hand-rolled per-port probe loops; `TimelineCollector`
    /// builds on it to sample every channel on a fixed stride.
    pub fn all<T: Tracer>(net: &Network<T>) -> Vec<Self> {
        let topo: &Topology = net.topology();
        let mut probes = Vec::with_capacity(net.channel_count());
        for node in topo.nodes() {
            for port in 0..topo.ports_per_router() {
                if port == LOCAL_PORT {
                    continue;
                }
                if let Some(p) = Self::new(net, node, port) {
                    probes.push(p);
                }
            }
        }
        probes
    }

    /// The probed router.
    pub fn node(&self) -> NodeId {
        self.node
    }

    /// The probed output port.
    pub fn port(&self) -> PortId {
        self.port
    }

    /// Sample the interval since the previous call (or since attachment).
    ///
    /// # Panics
    ///
    /// Panics if the probed port disappeared (cannot happen on a fixed
    /// topology).
    pub fn sample<T: Tracer>(&mut self, net: &Network<T>) -> ProbeSample {
        let now = net.time();
        let out = net
            .output_stats(self.node, self.port)
            .expect("probed port exists");
        let din = net.input_stats(self.down_node, self.down_port);
        let window = now - self.last_cycle;
        let flits = out.cum_flits - self.last_flits;
        let slots = out.cum_slots - self.last_slots;
        let occ = out.cum_occ_sum - self.last_occ_sum;
        let ages = din.cum_age_sum - self.last_age_sum;
        let deps = din.cum_departures - self.last_departures;
        let sample = ProbeSample {
            start: self.last_cycle,
            end: now,
            link_utilization: if slots == 0 {
                0.0
            } else {
                flits as f64 / slots as f64
            },
            buffer_utilization: if window == 0 || out.buf_capacity == 0 {
                0.0
            } else {
                occ as f64 / (window as f64 * f64::from(out.buf_capacity))
            },
            buffer_age: if deps == 0 {
                0.0
            } else {
                ages as f64 / deps as f64
            },
            level: out.level,
            power_w: out.power_w,
            freq_mhz: f64::from(out.freq_x9) / 9.0,
            energy_j: out.energy_j - self.last_energy,
            flits_sent: flits,
        };
        self.last_cycle = now;
        self.last_flits = out.cum_flits;
        self.last_slots = out.cum_slots;
        self.last_occ_sum = out.cum_occ_sum;
        self.last_age_sum = din.cum_age_sum;
        self.last_departures = din.cum_departures;
        self.last_energy = out.energy_j;
        sample
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::{NetworkConfig, Topology};

    fn net_4x4() -> Network {
        let mut cfg = NetworkConfig::paper_8x8();
        cfg.topology = Topology::mesh(4, 2).unwrap();
        Network::new(cfg).unwrap()
    }

    #[test]
    fn probe_attaches_only_to_real_channels() {
        let net = net_4x4();
        assert!(ChannelProbe::new(&net, 0, 0).is_none(), "local port");
        assert!(
            ChannelProbe::new(&net, 0, 2).is_none(),
            "mesh boundary (X-)"
        );
        assert!(ChannelProbe::new(&net, 0, 1).is_some(), "X+ from corner");
    }

    #[test]
    fn idle_channel_samples_zero_utilization() {
        let mut net = net_4x4();
        let mut probe = ChannelProbe::new(&net, 5, 1).unwrap();
        net.run(100);
        let s = probe.sample(&net);
        assert_eq!(s.link_utilization, 0.0);
        assert_eq!(s.buffer_utilization, 0.0);
        assert_eq!(s.buffer_age, 0.0);
        assert_eq!(s.flits_sent, 0);
        assert_eq!((s.start, s.end), (0, 100));
    }

    #[test]
    fn busy_channel_shows_utilization_and_age() {
        let mut net = net_4x4();
        // Router 0's X+ port carries traffic 0 -> 3 (DOR goes X first).
        let mut probe = ChannelProbe::new(&net, 0, 1).unwrap();
        for _ in 0..40 {
            net.inject(0, 3);
        }
        net.run(400);
        let s = probe.sample(&net);
        assert!(s.link_utilization > 0.2, "lu = {}", s.link_utilization);
        assert!(s.link_utilization <= 1.0);
        assert!(s.flits_sent > 50);
        assert!(s.buffer_age >= 0.0);
        // Sampling again over an idle tail interval gives lower utilization.
        net.run(4_000);
        let s2 = probe.sample(&net);
        assert!(s2.link_utilization < s.link_utilization);
    }

    #[test]
    fn all_covers_every_channel_exactly_once() {
        let net = net_4x4();
        let probes = ChannelProbe::all(&net);
        assert_eq!(probes.len(), net.channel_count());
        let mut seen = std::collections::HashSet::new();
        for p in &probes {
            assert!(seen.insert((p.node(), p.port())), "duplicate probe");
            assert!(net.output_stats(p.node(), p.port()).is_some());
        }
    }

    #[test]
    fn sample_reports_power_frequency_and_energy() {
        let mut net = net_4x4();
        let mut probe = ChannelProbe::new(&net, 0, 1).unwrap();
        net.run(100);
        let s = probe.sample(&net);
        // Fresh paper config: every channel at the top level (1 GHz).
        assert!((s.freq_mhz - 1000.0).abs() < 1e-9, "freq {}", s.freq_mhz);
        assert!((s.power_w - 1.6).abs() < 1e-9, "power {}", s.power_w);
        // 100 cycles at 1.6 W = 160 nJ.
        assert!((s.energy_j - 160e-9).abs() < 1e-12, "energy {}", s.energy_j);
        // Energy is a per-window delta, not cumulative.
        net.run(100);
        let s2 = probe.sample(&net);
        assert!((s2.energy_j - 160e-9).abs() < 1e-12);
    }

    #[test]
    fn samples_partition_time() {
        let mut net = net_4x4();
        let mut probe = ChannelProbe::new(&net, 1, 1).unwrap();
        let mut last_end = 0;
        for _ in 0..5 {
            net.run(50);
            let s = probe.sample(&net);
            assert_eq!(s.start, last_end);
            assert_eq!(s.end, s.start + 50);
            last_end = s.end;
        }
    }
}
