//! Deterministic link-fault injection and recovery modeling.
//!
//! The paper's §2 premise is that DVS trades noise margin for power: lowering
//! a link's voltage raises its bit-error rate (BER). [`dvslink::NoiseModel`]
//! makes that trade-off *predictable*; this crate makes it *happen*. It
//! provides:
//!
//! - a per-channel, seed-derived fault stream ([`FaultRng`], SplitMix64 —
//!   the same discipline as the sweep runner's per-point seeding, so fault
//!   outcomes are bit-identical at any worker count);
//! - per-flit corruption draws at the BER the noise model predicts for the
//!   channel's *current* V/f level, with CRC-style detection (an
//!   `detection_bits`-wide syndrome; an all-zero syndrome models an
//!   undetected residual error) — see [`ChannelFaultModel`];
//! - a bounded-retry ACK/NACK recovery protocol with exponential backoff
//!   that degrades to a permanent fail-stop state when retries are
//!   exhausted;
//! - configurable transient link-outage episodes (geometric inter-arrival,
//!   fixed duration);
//! - the [`crc16_ccitt`] checksum used by the simulator to tag flits.
//!
//! The crate deliberately depends only on `dvslink` (for the V/f table and
//! noise model); `netsim` consumes it at each router output port.

#![forbid(unsafe_code)]
#![warn(missing_docs)]

mod config;
mod crc;
mod model;
mod rng;
mod stats;

pub use config::{FaultConfig, FaultConfigError, OutageConfig, RecoveryConfig};
pub use crc::crc16_ccitt;
pub use model::{ChannelFaultModel, TransmitOutcome};
pub use rng::FaultRng;
pub use stats::FaultStats;
