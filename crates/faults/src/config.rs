//! Fault-injection configuration.

use std::error::Error;
use std::fmt;

use dvslink::NoiseModel;

/// Transient link-outage episodes.
///
/// Outages model environmental upsets (supply droop, coupling bursts) that
/// take a channel down entirely for a bounded interval. Episodes are drawn
/// per channel from a geometric inter-arrival distribution, independent of
/// traffic, so their schedule is fixed by the fault seed alone.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct OutageConfig {
    /// Probability that a new outage begins on any given healthy cycle.
    pub rate_per_cycle: f64,
    /// Length of each outage in router cycles.
    pub duration_cycles: u64,
}

/// Link-level recovery (ACK/NACK retransmission) parameters.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct RecoveryConfig {
    /// Cycles from a corrupted transmission to the NACK arriving back at
    /// the sender (the earliest the retransmission can start).
    pub ack_round_trip_cycles: u64,
    /// Consecutive failed retransmissions of one flit tolerated before the
    /// channel fail-stops.
    pub max_retries: u32,
    /// Cap on the exponential-backoff shift: retry `n` waits
    /// `ack_round_trip_cycles << min(n - 1, backoff_cap)` cycles.
    pub backoff_cap: u32,
}

impl Default for RecoveryConfig {
    fn default() -> Self {
        Self {
            ack_round_trip_cycles: 4,
            max_retries: 8,
            backoff_cap: 6,
        }
    }
}

/// Configuration for the link-fault subsystem.
///
/// Construct with [`FaultConfig::new`] and customize with the `with_*`
/// builders:
///
/// ```
/// use faults::{FaultConfig, OutageConfig};
/// use dvslink::NoiseModel;
///
/// let noisy = NoiseModel { sigma_v: 0.18, ..NoiseModel::paper() };
/// let cfg = FaultConfig::new(0x11d5)
///     .with_noise(noisy)
///     .with_outage(OutageConfig { rate_per_cycle: 1e-5, duration_cycles: 200 });
/// assert!(cfg.validate().is_ok());
/// ```
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct FaultConfig {
    /// Seed for the per-channel fault streams (independent of the workload
    /// seed; per-channel streams are derived from `(seed, node, port)`).
    pub seed: u64,
    /// Noise model that maps each V/f level to a predicted BER.
    pub noise: NoiseModel,
    /// Multiplier applied to the predicted BER before converting to a
    /// per-flit corruption probability (accelerated-test knob; `1.0` is
    /// the model's prediction, `0.0` disables corruption entirely).
    pub ber_scale: f64,
    /// Bits per flit exposed to link noise.
    pub flit_bits: u32,
    /// Width of the CRC syndrome in bits (≤ 32). A corrupted flit goes
    /// *undetected* with probability `2^-detection_bits`; `0` models links
    /// with no error detection (every corruption is a residual error).
    pub detection_bits: u32,
    /// Optional transient-outage process.
    pub outage: Option<OutageConfig>,
    /// Retransmission protocol parameters.
    pub recovery: RecoveryConfig,
}

impl FaultConfig {
    /// Paper-noise defaults: 32-bit flits, 16-bit CRC, no outages,
    /// [`RecoveryConfig::default`] recovery.
    pub fn new(seed: u64) -> Self {
        Self {
            seed,
            noise: NoiseModel::paper(),
            ber_scale: 1.0,
            flit_bits: 32,
            detection_bits: 16,
            outage: None,
            recovery: RecoveryConfig::default(),
        }
    }

    /// Replace the noise model.
    #[must_use]
    pub fn with_noise(mut self, noise: NoiseModel) -> Self {
        self.noise = noise;
        self
    }

    /// Replace the BER multiplier.
    #[must_use]
    pub fn with_ber_scale(mut self, scale: f64) -> Self {
        self.ber_scale = scale;
        self
    }

    /// Enable transient outages.
    #[must_use]
    pub fn with_outage(mut self, outage: OutageConfig) -> Self {
        self.outage = Some(outage);
        self
    }

    /// Replace the recovery parameters.
    #[must_use]
    pub fn with_recovery(mut self, recovery: RecoveryConfig) -> Self {
        self.recovery = recovery;
        self
    }

    /// Replace the syndrome width.
    #[must_use]
    pub fn with_detection_bits(mut self, bits: u32) -> Self {
        self.detection_bits = bits;
        self
    }

    /// Check the configuration for internal consistency.
    ///
    /// # Errors
    ///
    /// Returns the first [`FaultConfigError`] found.
    pub fn validate(&self) -> Result<(), FaultConfigError> {
        if !self.ber_scale.is_finite() || self.ber_scale < 0.0 {
            return Err(FaultConfigError::InvalidBerScale);
        }
        if self.flit_bits == 0 {
            return Err(FaultConfigError::ZeroFlitBits);
        }
        if self.detection_bits > 32 {
            return Err(FaultConfigError::DetectionBitsTooWide);
        }
        if let Some(o) = &self.outage {
            if !o.rate_per_cycle.is_finite() || !(0.0..1.0).contains(&o.rate_per_cycle) {
                return Err(FaultConfigError::InvalidOutageRate);
            }
            if o.duration_cycles == 0 {
                return Err(FaultConfigError::ZeroOutageDuration);
            }
        }
        if self.recovery.ack_round_trip_cycles == 0 {
            return Err(FaultConfigError::ZeroAckRoundTrip);
        }
        Ok(())
    }
}

/// Rejection reasons from [`FaultConfig::validate`].
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
#[non_exhaustive]
pub enum FaultConfigError {
    /// `ber_scale` is negative, NaN, or infinite.
    InvalidBerScale,
    /// `flit_bits` is zero.
    ZeroFlitBits,
    /// `detection_bits` exceeds 32.
    DetectionBitsTooWide,
    /// Outage rate is not a probability in `[0, 1)`.
    InvalidOutageRate,
    /// Outage duration is zero cycles.
    ZeroOutageDuration,
    /// NACK round trip is zero cycles.
    ZeroAckRoundTrip,
}

impl fmt::Display for FaultConfigError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            Self::InvalidBerScale => write!(f, "ber_scale must be finite and non-negative"),
            Self::ZeroFlitBits => write!(f, "flit_bits must be at least 1"),
            Self::DetectionBitsTooWide => write!(f, "detection_bits must be at most 32"),
            Self::InvalidOutageRate => write!(f, "outage rate must lie in [0, 1)"),
            Self::ZeroOutageDuration => write!(f, "outage duration must be at least 1 cycle"),
            Self::ZeroAckRoundTrip => write!(f, "ack round trip must be at least 1 cycle"),
        }
    }
}

impl Error for FaultConfigError {}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn defaults_validate() {
        assert_eq!(FaultConfig::new(1).validate(), Ok(()));
    }

    #[test]
    fn bad_configs_are_rejected() {
        assert_eq!(
            FaultConfig::new(1).with_ber_scale(-1.0).validate(),
            Err(FaultConfigError::InvalidBerScale)
        );
        assert_eq!(
            FaultConfig::new(1).with_ber_scale(f64::NAN).validate(),
            Err(FaultConfigError::InvalidBerScale)
        );
        let mut cfg = FaultConfig::new(1);
        cfg.flit_bits = 0;
        assert_eq!(cfg.validate(), Err(FaultConfigError::ZeroFlitBits));
        assert_eq!(
            FaultConfig::new(1).with_detection_bits(33).validate(),
            Err(FaultConfigError::DetectionBitsTooWide)
        );
        assert_eq!(
            FaultConfig::new(1)
                .with_outage(OutageConfig {
                    rate_per_cycle: 1.0,
                    duration_cycles: 10,
                })
                .validate(),
            Err(FaultConfigError::InvalidOutageRate)
        );
        assert_eq!(
            FaultConfig::new(1)
                .with_outage(OutageConfig {
                    rate_per_cycle: 0.1,
                    duration_cycles: 0,
                })
                .validate(),
            Err(FaultConfigError::ZeroOutageDuration)
        );
        let mut cfg = FaultConfig::new(1);
        cfg.recovery.ack_round_trip_cycles = 0;
        assert_eq!(cfg.validate(), Err(FaultConfigError::ZeroAckRoundTrip));
    }

    #[test]
    fn error_messages_are_tidy() {
        let errors = [
            FaultConfigError::InvalidBerScale,
            FaultConfigError::ZeroFlitBits,
            FaultConfigError::DetectionBitsTooWide,
            FaultConfigError::InvalidOutageRate,
            FaultConfigError::ZeroOutageDuration,
            FaultConfigError::ZeroAckRoundTrip,
        ];
        for e in errors {
            let msg = e.to_string();
            assert!(!msg.is_empty());
            assert!(msg.chars().next().unwrap().is_lowercase());
            assert!(!msg.ends_with('.'));
        }
    }
}
