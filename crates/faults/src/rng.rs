//! SplitMix64 fault stream, seed-derived per channel.
//!
//! The sweep runner (`core::plan`) derives one RNG stream per operating
//! point from `(seed, rate, index)` so that worker count never changes
//! results. Fault injection follows the same discipline one level down:
//! each channel's fault stream is derived from `(fault seed, node, port)`
//! alone, and every draw is consumed in simulation order inside a
//! single-threaded `Network::step` loop — so corruption, retransmission,
//! and delivery counts are bit-identical at any `--jobs`.

/// One SplitMix64 stream of fault draws.
#[derive(Debug, Clone)]
pub struct FaultRng {
    state: u64,
}

const GAMMA: u64 = 0x9E37_79B9_7F4A_7C15;

fn mix(mut z: u64) -> u64 {
    z = (z ^ (z >> 30)).wrapping_mul(0xBF58_476D_1CE4_E5B9);
    z = (z ^ (z >> 27)).wrapping_mul(0x94D0_49BB_1331_11EB);
    z ^ (z >> 31)
}

impl FaultRng {
    /// A stream seeded directly with `seed`.
    pub fn new(seed: u64) -> Self {
        Self { state: seed }
    }

    /// The stream for one channel, derived from the experiment-level fault
    /// seed and the channel's `(node, port)` coordinates.
    ///
    /// Distinct channels get decorrelated streams; the same channel gets
    /// the same stream in every run with the same seed.
    pub fn for_channel(seed: u64, node: u64, port: u64) -> Self {
        let s = mix(seed.wrapping_add(GAMMA));
        let s = mix(s ^ node.wrapping_mul(0xA076_1D64_78BD_642F));
        let s = mix(s ^ port.wrapping_mul(0xE703_7ED1_A0B4_28DB));
        Self { state: s }
    }

    /// Next raw 64-bit draw.
    pub fn next_u64(&mut self) -> u64 {
        self.state = self.state.wrapping_add(GAMMA);
        mix(self.state)
    }

    /// Next draw in `[0, 1)` with 53 bits of precision.
    pub fn next_f64(&mut self) -> f64 {
        (self.next_u64() >> 11) as f64 * (1.0 / (1u64 << 53) as f64)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn streams_are_deterministic() {
        let mut a = FaultRng::for_channel(42, 3, 1);
        let mut b = FaultRng::for_channel(42, 3, 1);
        for _ in 0..100 {
            assert_eq!(a.next_u64(), b.next_u64());
        }
    }

    #[test]
    fn channels_are_decorrelated() {
        let mut a = FaultRng::for_channel(42, 3, 1);
        let mut b = FaultRng::for_channel(42, 3, 2);
        let mut c = FaultRng::for_channel(42, 4, 1);
        let (x, y, z) = (a.next_u64(), b.next_u64(), c.next_u64());
        assert_ne!(x, y);
        assert_ne!(x, z);
        assert_ne!(y, z);
    }

    #[test]
    fn f64_draws_are_in_unit_interval() {
        let mut r = FaultRng::new(7);
        let mut sum = 0.0;
        for _ in 0..10_000 {
            let u = r.next_f64();
            assert!((0.0..1.0).contains(&u));
            sum += u;
        }
        // Mean of 10k uniform draws is close to 1/2.
        assert!((sum / 10_000.0 - 0.5).abs() < 0.02);
    }
}
