//! Per-channel fault and recovery counters.

/// Fault, retry, and residual-error counters for one channel (or an
/// aggregate over channels — see [`FaultStats::accumulate`]).
///
/// All counters except `failed_links` are rebased when the network enters
/// its measurement window, mirroring `NetStats`.
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq)]
pub struct FaultStats {
    /// Transmission attempts (including retransmissions).
    pub transmitted: u64,
    /// Attempts corrupted by the noise process (detected + undetected).
    pub corrupted: u64,
    /// Retransmissions scheduled after a detected corruption.
    pub retransmissions: u64,
    /// Corrupted flits the CRC syndrome missed — delivered with bad
    /// payload (the reliability the guard is supposed to bound).
    pub residual_errors: u64,
    /// Transient outage episodes begun.
    pub outages: u64,
    /// Cycles spent inside outage episodes.
    pub outage_cycles: u64,
    /// Channels in the permanent fail-stop state (0 or 1 per channel;
    /// sums across an aggregate). Not rebased at measurement start.
    pub failed_links: u64,
}

impl FaultStats {
    /// Add `other`'s counters into `self`.
    pub fn accumulate(&mut self, other: &FaultStats) {
        self.transmitted += other.transmitted;
        self.corrupted += other.corrupted;
        self.retransmissions += other.retransmissions;
        self.residual_errors += other.residual_errors;
        self.outages += other.outages;
        self.outage_cycles += other.outage_cycles;
        self.failed_links += other.failed_links;
    }

    /// Sum a collection of per-channel stats.
    pub fn total<'a>(stats: impl IntoIterator<Item = &'a FaultStats>) -> FaultStats {
        let mut acc = FaultStats::default();
        for s in stats {
            acc.accumulate(s);
        }
        acc
    }

    /// Attempts that were delivered downstream (clean or with an
    /// undetected residual error).
    pub fn delivered_attempts(&self) -> u64 {
        self.transmitted - (self.corrupted - self.residual_errors)
    }

    /// Residual errors per delivered flit (`0` when nothing delivered).
    pub fn residual_error_rate(&self) -> f64 {
        let delivered = self.delivered_attempts();
        if delivered == 0 {
            0.0
        } else {
            self.residual_errors as f64 / delivered as f64
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn totals_accumulate() {
        let a = FaultStats {
            transmitted: 10,
            corrupted: 3,
            retransmissions: 2,
            residual_errors: 1,
            outages: 1,
            outage_cycles: 50,
            failed_links: 0,
        };
        let b = FaultStats {
            transmitted: 5,
            corrupted: 1,
            retransmissions: 1,
            residual_errors: 0,
            outages: 0,
            outage_cycles: 0,
            failed_links: 1,
        };
        let t = FaultStats::total([&a, &b]);
        assert_eq!(t.transmitted, 15);
        assert_eq!(t.corrupted, 4);
        assert_eq!(t.retransmissions, 3);
        assert_eq!(t.residual_errors, 1);
        assert_eq!(t.outages, 1);
        assert_eq!(t.outage_cycles, 50);
        assert_eq!(t.failed_links, 1);
        // 15 attempts, 4 corrupted of which 1 slipped through: 12 delivered.
        assert_eq!(t.delivered_attempts(), 12);
        assert!((t.residual_error_rate() - 1.0 / 12.0).abs() < 1e-12);
    }

    #[test]
    fn empty_rate_is_zero() {
        assert_eq!(FaultStats::default().residual_error_rate(), 0.0);
    }
}
