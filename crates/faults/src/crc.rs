//! CRC-16 used for link-level flit tagging.

/// CRC-16/CCITT-FALSE (polynomial 0x1021, init 0xFFFF) over `bytes`.
///
/// This is the checksum the simulator stamps on every flit at
/// packetization; the receiving router verifies it on ejection from the
/// link. The fault model guarantees that detected-corrupt flits are never
/// delivered (they are held for retransmission), so a delivered flit's tag
/// always verifies — the check is a protocol invariant, not a filter.
pub fn crc16_ccitt(bytes: &[u8]) -> u16 {
    let mut crc: u16 = 0xFFFF;
    for &b in bytes {
        crc ^= u16::from(b) << 8;
        for _ in 0..8 {
            if crc & 0x8000 != 0 {
                crc = (crc << 1) ^ 0x1021;
            } else {
                crc <<= 1;
            }
        }
    }
    crc
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn matches_check_value() {
        // CRC-16/CCITT-FALSE has check value 0x29B1 for "123456789".
        assert_eq!(crc16_ccitt(b"123456789"), 0x29B1);
    }

    #[test]
    fn distinguishes_inputs() {
        assert_ne!(crc16_ccitt(b"flit-a"), crc16_ccitt(b"flit-b"));
        assert_eq!(crc16_ccitt(b""), 0xFFFF);
    }
}
