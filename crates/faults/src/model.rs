//! Per-channel fault state machine.

use dvslink::{Cycles, VfTable};

use crate::config::FaultConfig;
use crate::rng::FaultRng;
use crate::stats::FaultStats;

/// What happened to one transmission attempt.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum TransmitOutcome {
    /// The flit crossed the link. `residual` is true when it was corrupted
    /// but the CRC syndrome missed it — the flit is delivered with a bad
    /// payload and counted as a residual error.
    Deliver {
        /// Whether the delivery carries an undetected error.
        residual: bool,
    },
    /// The flit was corrupted and detected; the sender holds it for
    /// retransmission after the NACK round trip plus backoff. The slot
    /// (and the wire energy of the retransmission) is consumed.
    Nack,
    /// Retries were exhausted; the channel is permanently fail-stopped.
    FailStop,
}

/// Fault state for one channel: the corruption/outage processes, the
/// retry protocol state, and the counters.
///
/// Owned by the router output port; the simulator calls [`tick`] once per
/// cycle, gates transmission on [`link_up`]/[`holding_off`], and reports
/// each attempt through [`on_transmit`].
///
/// [`tick`]: ChannelFaultModel::tick
/// [`link_up`]: ChannelFaultModel::link_up
/// [`holding_off`]: ChannelFaultModel::holding_off
/// [`on_transmit`]: ChannelFaultModel::on_transmit
#[derive(Debug, Clone)]
pub struct ChannelFaultModel {
    rng: FaultRng,
    /// Per-level probability that a flit-sized transfer is corrupted.
    p_flit: Vec<f64>,
    syndrome_mask: u64,
    ack_round_trip: u64,
    max_retries: u32,
    backoff_cap: u32,
    outage: Option<OutageState>,
    head_retries: u32,
    blocked_until: Cycles,
    failed: bool,
    stats: FaultStats,
}

#[derive(Debug, Clone)]
struct OutageState {
    rate: f64,
    duration: u64,
    next_at: Cycles,
    until: Cycles,
}

impl ChannelFaultModel {
    /// Build the fault state for channel `(node, port)` under `cfg`,
    /// precomputing per-flit corruption probabilities for every level of
    /// `table` from the noise model's BER prediction.
    pub fn new(cfg: &FaultConfig, table: &VfTable, node: u64, port: u64) -> Self {
        let mut rng = FaultRng::for_channel(cfg.seed, node, port);
        let p_flit = table
            .iter()
            .map(|level| {
                let ber = (cfg.noise.ber(level) * cfg.ber_scale).clamp(0.0, 1.0);
                // P(any of flit_bits bits flips) — exact, not the n·BER
                // approximation, so accelerated ber_scale values stay
                // probabilities.
                1.0 - (1.0 - ber).powi(cfg.flit_bits as i32)
            })
            .collect();
        let syndrome_mask = if cfg.detection_bits == 0 {
            0
        } else {
            u64::MAX >> (64 - cfg.detection_bits)
        };
        let outage = cfg.outage.filter(|o| o.rate_per_cycle > 0.0).map(|o| {
            let mut state = OutageState {
                rate: o.rate_per_cycle,
                duration: o.duration_cycles,
                next_at: 0,
                until: 0,
            };
            state.next_at = state.draw_gap(&mut rng);
            state
        });
        Self {
            rng,
            p_flit,
            syndrome_mask,
            ack_round_trip: cfg.recovery.ack_round_trip_cycles,
            max_retries: cfg.recovery.max_retries,
            backoff_cap: cfg.recovery.backoff_cap,
            outage,
            head_retries: 0,
            blocked_until: 0,
            failed: false,
            stats: FaultStats::default(),
        }
    }

    /// Advance the outage process to `now`. Call once per cycle.
    pub fn tick(&mut self, now: Cycles) {
        let Some(o) = &mut self.outage else { return };
        if self.failed {
            return;
        }
        if now >= o.next_at && now >= o.until {
            o.until = now + o.duration;
            self.stats.outages += 1;
            let gap = o.draw_gap(&mut self.rng);
            o.next_at = o.until.saturating_add(gap);
        }
        if now < o.until {
            self.stats.outage_cycles += 1;
        }
    }

    /// Whether the link can carry flits at all (not fail-stopped, not in
    /// an outage episode).
    pub fn link_up(&self, now: Cycles) -> bool {
        !self.failed && self.outage.as_ref().is_none_or(|o| now >= o.until)
    }

    /// Whether the sender is waiting out a NACK round trip / backoff.
    pub fn holding_off(&self, now: Cycles) -> bool {
        now < self.blocked_until
    }

    /// Report a transmission attempt of the head flit at V/f level
    /// `level`; returns what the link did with it and updates the retry
    /// state and counters.
    pub fn on_transmit(&mut self, now: Cycles, level: usize) -> TransmitOutcome {
        debug_assert!(!self.failed, "transmit on a fail-stopped channel");
        self.stats.transmitted += 1;
        let u = self.rng.next_f64();
        if u >= self.p_flit[level] {
            self.head_retries = 0;
            return TransmitOutcome::Deliver { residual: false };
        }
        self.stats.corrupted += 1;
        let syndrome = self.rng.next_u64() & self.syndrome_mask;
        if syndrome == 0 {
            // The corruption pattern aliases to a valid codeword: the CRC
            // check passes downstream and the error escapes.
            self.stats.residual_errors += 1;
            self.head_retries = 0;
            return TransmitOutcome::Deliver { residual: true };
        }
        if self.head_retries >= self.max_retries {
            self.failed = true;
            return TransmitOutcome::FailStop;
        }
        self.head_retries += 1;
        self.stats.retransmissions += 1;
        let shift = (self.head_retries - 1).min(self.backoff_cap);
        self.blocked_until = now + (self.ack_round_trip << shift);
        TransmitOutcome::Nack
    }

    /// Whether the channel has fail-stopped.
    pub fn is_failed(&self) -> bool {
        self.failed
    }

    /// Current counters (with `failed_links` derived from the fail-stop
    /// flag).
    pub fn stats(&self) -> FaultStats {
        FaultStats {
            failed_links: u64::from(self.failed),
            ..self.stats
        }
    }

    /// Zero the counters (measurement-window rebase). The fail-stop flag
    /// and the outage/retry schedules are untouched.
    pub fn reset_stats(&mut self) {
        self.stats = FaultStats::default();
    }
}

impl OutageState {
    /// Geometric gap (in cycles) until the next outage begins.
    fn draw_gap(&mut self, rng: &mut FaultRng) -> u64 {
        // Inverse-CDF sampling: skip = floor(ln(1-u) / ln(1-p)). Drawn
        // once per episode, so outage schedules are traffic-independent.
        let u = rng.next_f64();
        let gap = ((1.0 - u).ln() / (1.0 - self.rate).ln()).floor();
        if gap >= u64::MAX as f64 {
            u64::MAX
        } else {
            1 + gap as u64
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::config::{OutageConfig, RecoveryConfig};

    fn model(cfg: &FaultConfig) -> ChannelFaultModel {
        ChannelFaultModel::new(cfg, &VfTable::paper(), 0, 0)
    }

    #[test]
    fn paper_noise_never_corrupts_in_practice() {
        // Paper BER ≤ 1e-15: a million flits at the lowest level should
        // all cross clean.
        let mut m = model(&FaultConfig::new(3));
        for t in 0..1_000_000u64 {
            assert_eq!(
                m.on_transmit(t, 0),
                TransmitOutcome::Deliver { residual: false }
            );
        }
        let s = m.stats();
        assert_eq!(s.transmitted, 1_000_000);
        assert_eq!(s.corrupted, 0);
    }

    #[test]
    fn scaled_ber_corrupts_and_retries() {
        // Force p_flit to 1: every attempt corrupts; detected ones NACK
        // with exponential backoff, then the channel fail-stops.
        let cfg = FaultConfig::new(9)
            .with_ber_scale(f64::INFINITY)
            .with_recovery(RecoveryConfig {
                ack_round_trip_cycles: 4,
                max_retries: 3,
                backoff_cap: 6,
            });
        let mut m = model(&cfg);
        let mut now = 0;
        let mut outcomes = Vec::new();
        loop {
            while m.holding_off(now) {
                now += 1;
            }
            let o = m.on_transmit(now, 0);
            outcomes.push(o);
            if o == TransmitOutcome::FailStop {
                break;
            }
            assert!(outcomes.len() < 100, "never fail-stopped");
        }
        // With a 16-bit syndrome, undetected corruption is ~1.5e-5 per
        // attempt — overwhelmingly we see Nack, Nack, Nack, FailStop.
        let s = m.stats();
        assert!(m.is_failed());
        assert_eq!(s.failed_links, 1);
        assert_eq!(s.corrupted, s.transmitted);
        assert!(s.retransmissions <= 3);
        assert!(!m.link_up(now));
    }

    #[test]
    fn backoff_grows_exponentially() {
        let cfg = FaultConfig::new(1)
            .with_ber_scale(f64::INFINITY)
            .with_recovery(RecoveryConfig {
                ack_round_trip_cycles: 2,
                max_retries: 10,
                backoff_cap: 3,
            });
        let mut m = model(&cfg);
        let mut delays = Vec::new();
        let mut now = 0;
        for _ in 0..6 {
            match m.on_transmit(now, 0) {
                TransmitOutcome::Nack => {
                    delays.push(m.blocked_until - now);
                    now = m.blocked_until;
                }
                TransmitOutcome::Deliver { .. } => {} // rare undetected alias
                TransmitOutcome::FailStop => break,
            }
        }
        // 2, 4, 8, 16, then capped at 16 (shift cap 3).
        assert!(delays.starts_with(&[2, 4, 8, 16]));
        assert!(delays.iter().all(|&d| d <= 16));
    }

    #[test]
    fn zero_detection_bits_means_every_corruption_escapes() {
        let cfg = FaultConfig::new(5)
            .with_ber_scale(f64::INFINITY)
            .with_detection_bits(0);
        let mut m = model(&cfg);
        for t in 0..100 {
            assert_eq!(
                m.on_transmit(t, 0),
                TransmitOutcome::Deliver { residual: true }
            );
        }
        let s = m.stats();
        assert_eq!(s.residual_errors, 100);
        assert_eq!(s.retransmissions, 0);
    }

    #[test]
    fn outages_follow_the_seeded_schedule() {
        let cfg = FaultConfig::new(17).with_outage(OutageConfig {
            rate_per_cycle: 0.01,
            duration_cycles: 25,
        });
        let mut a = model(&cfg);
        let mut b = model(&cfg);
        let mut down_cycles = 0u64;
        for t in 0..10_000 {
            a.tick(t);
            b.tick(t);
            assert_eq!(a.link_up(t), b.link_up(t));
            if !a.link_up(t) {
                down_cycles += 1;
            }
        }
        let s = a.stats();
        assert_eq!(s, b.stats());
        assert!(s.outages > 0, "expected at least one outage in 10k cycles");
        assert_eq!(s.outage_cycles, down_cycles);
        // Each episode contributes at most its 25-cycle duration (the last
        // one may be truncated by the end of the run).
        assert!(s.outage_cycles <= s.outages * 25);
    }

    #[test]
    fn stats_reset_keeps_fail_state() {
        let cfg = FaultConfig::new(2)
            .with_ber_scale(f64::INFINITY)
            .with_recovery(RecoveryConfig {
                ack_round_trip_cycles: 1,
                max_retries: 0,
                backoff_cap: 0,
            });
        let mut m = model(&cfg);
        // max_retries = 0: the first detected corruption fail-stops.
        let mut now = 0;
        while m.on_transmit(now, 0) != TransmitOutcome::FailStop {
            now += 100;
        }
        assert!(m.is_failed());
        m.reset_stats();
        let s = m.stats();
        assert_eq!(s.transmitted, 0);
        assert_eq!(s.failed_links, 1, "fail-stop survives a stats rebase");
    }
}
