//! Descriptive statistics for traffic series.
//!
//! The paper argues qualitatively from snapshots (its Figs. 8–9) that the
//! two-level workload has high spatial and temporal variance; these
//! utilities quantify that: index of dispersion, autocorrelation, and
//! peak-to-mean ratios for binned injection counts, and coefficient of
//! variation for spatial distributions. The `fig09_temporal_variance`
//! bench and the traffic tests use them to *check* burstiness instead of
//! eyeballing it.

/// Arithmetic mean; 0 for an empty series.
pub fn mean(series: &[f64]) -> f64 {
    if series.is_empty() {
        0.0
    } else {
        series.iter().sum::<f64>() / series.len() as f64
    }
}

/// Population variance; 0 for an empty series.
pub fn variance(series: &[f64]) -> f64 {
    if series.is_empty() {
        return 0.0;
    }
    let m = mean(series);
    series.iter().map(|v| (v - m) * (v - m)).sum::<f64>() / series.len() as f64
}

/// Index of dispersion (variance-to-mean ratio) of a count series.
///
/// A Poisson process has IDC = 1 at every bin size; long-range-dependent
/// traffic has IDC growing with the bin size. Returns `None` when the mean
/// is zero.
pub fn index_of_dispersion(series: &[f64]) -> Option<f64> {
    let m = mean(series);
    (m > 0.0).then(|| variance(series) / m)
}

/// Coefficient of variation (σ/µ). Returns `None` when the mean is zero.
pub fn coefficient_of_variation(series: &[f64]) -> Option<f64> {
    let m = mean(series);
    (m > 0.0).then(|| variance(series).sqrt() / m)
}

/// Peak-to-mean ratio. Returns `None` when the mean is zero.
pub fn peak_to_mean(series: &[f64]) -> Option<f64> {
    let m = mean(series);
    if m <= 0.0 {
        return None;
    }
    Some(series.iter().copied().fold(f64::MIN, f64::max) / m)
}

/// Sample autocorrelation at `lag` (biased estimator, the standard one for
/// ACF plots). Returns `None` when the series is shorter than `lag + 2` or
/// has zero variance.
pub fn autocorrelation(series: &[f64], lag: usize) -> Option<f64> {
    if series.len() < lag + 2 {
        return None;
    }
    let m = mean(series);
    let denom: f64 = series.iter().map(|v| (v - m) * (v - m)).sum();
    if denom <= 0.0 {
        return None;
    }
    let num: f64 = series
        .windows(lag + 1)
        .map(|w| (w[0] - m) * (w[lag] - m))
        .sum();
    Some(num / denom)
}

/// Aggregate a series into blocks of `m` samples (summing), the operation
/// behind variance–time analysis; trailing partial blocks are dropped.
///
/// # Panics
///
/// Panics if `m == 0`.
pub fn aggregate(series: &[f64], m: usize) -> Vec<f64> {
    assert!(m > 0, "block size must be positive");
    series
        .chunks_exact(m)
        .map(|c| c.iter().sum::<f64>())
        .collect()
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::{OnOffParams, SelfSimilarSource};

    #[test]
    fn basic_moments() {
        let s = [1.0, 2.0, 3.0, 4.0];
        assert_eq!(mean(&s), 2.5);
        assert!((variance(&s) - 1.25).abs() < 1e-12);
        assert_eq!(mean(&[]), 0.0);
        assert_eq!(variance(&[]), 0.0);
    }

    #[test]
    fn dispersion_of_constant_series_is_zero() {
        let s = [3.0; 100];
        assert_eq!(index_of_dispersion(&s), Some(0.0));
        assert_eq!(coefficient_of_variation(&s), Some(0.0));
        assert_eq!(peak_to_mean(&s), Some(1.0));
        assert_eq!(index_of_dispersion(&[0.0; 4]), None);
    }

    #[test]
    fn autocorrelation_of_alternating_series_is_negative_at_lag_one() {
        let s: Vec<f64> = (0..100)
            .map(|i| if i % 2 == 0 { 1.0 } else { -1.0 })
            .collect();
        let r1 = autocorrelation(&s, 1).unwrap();
        assert!(r1 < -0.9, "lag-1 ACF {r1}");
        let r2 = autocorrelation(&s, 2).unwrap();
        assert!(r2 > 0.9, "lag-2 ACF {r2}");
        assert_eq!(autocorrelation(&s, 0).unwrap(), 1.0);
    }

    #[test]
    fn autocorrelation_edge_cases() {
        assert_eq!(autocorrelation(&[1.0, 2.0], 5), None);
        assert_eq!(autocorrelation(&[2.0; 50], 1), None, "zero variance");
    }

    #[test]
    fn aggregate_sums_blocks() {
        let s = [1.0, 2.0, 3.0, 4.0, 5.0];
        assert_eq!(aggregate(&s, 2), vec![3.0, 7.0]);
        assert_eq!(aggregate(&s, 5), vec![15.0]);
        assert!(aggregate(&s, 6).is_empty());
    }

    #[test]
    #[should_panic(expected = "block size")]
    fn zero_block_size_panics() {
        let _ = aggregate(&[1.0], 0);
    }

    #[test]
    fn self_similar_traffic_has_growing_dispersion() {
        // The defining fingerprint of LRD: the index of dispersion grows
        // with the aggregation scale, where Poisson stays flat.
        let mut src = SelfSimilarSource::new(64, 0.1, OnOffParams::paper(), 21);
        let bins = 16_384usize;
        let mut series = vec![0f64; bins];
        for (b, slot) in series.iter_mut().enumerate() {
            for t in (b as u64 * 100)..((b as u64 + 1) * 100) {
                *slot += f64::from(src.emissions_until(t));
            }
        }
        let idc_fine = index_of_dispersion(&series).unwrap();
        let coarse = aggregate(&series, 64);
        let idc_coarse = index_of_dispersion(&coarse).unwrap();
        assert!(
            idc_coarse > 3.0 * idc_fine,
            "IDC must grow with scale: fine {idc_fine}, coarse {idc_coarse}"
        );
    }

    #[test]
    fn self_similar_traffic_has_long_memory() {
        let mut src = SelfSimilarSource::new(64, 0.1, OnOffParams::paper(), 5);
        let bins = 8_192usize;
        let mut series = vec![0f64; bins];
        for (b, slot) in series.iter_mut().enumerate() {
            for t in (b as u64 * 200)..((b as u64 + 1) * 200) {
                *slot += f64::from(src.emissions_until(t));
            }
        }
        // Positive autocorrelation persisting across decades of lag.
        for lag in [1usize, 10, 100] {
            let r = autocorrelation(&series, lag).unwrap();
            assert!(r > 0.05, "ACF at lag {lag} = {r} too small for LRD");
        }
    }
}
