//! Two-level self-similar workload generation for interconnection networks.
//!
//! Reproduces the traffic model of the HPCA 2003 link-DVS paper (§4.3):
//!
//! 1. **Task level** — concurrent communication task sessions arrive as a
//!    Poisson process, are placed on random source nodes, pick destinations
//!    by a *sphere of locality* (nearby nodes are preferred), and last for a
//!    uniformly distributed duration.
//! 2. **Packet level** — within each session, packet injections are
//!    self-similar: the superposition of many ON/OFF sources whose ON and
//!    OFF period lengths are Pareto-distributed with the shapes Leland et
//!    al. measured on real Ethernet traffic (1.4 ON / 1.2 OFF).
//!
//! The crate also provides the classic short-range-dependent baselines the
//! paper contrasts against (uniform random and permutation traffic) and
//! Hurst-exponent estimators (rescaled-range and variance–time) to verify
//! that generated traces really are long-range dependent.
//!
//! All generators implement [`Workload`]: a network driver calls
//! [`Workload::poll`] once per router cycle and receives the
//! `(source, destination)` pairs of the packets created that cycle.
//!
//! # Example
//!
//! ```
//! use netsim::Topology;
//! use trafficgen::{TaskModelConfig, TaskWorkload, Workload};
//!
//! let topo = Topology::mesh(8, 2)?;
//! let cfg = TaskModelConfig::paper_100_tasks();
//! let mut wl = TaskWorkload::new(cfg, &topo, 0.5, 42); // 0.5 packets/cycle
//! let mut count = 0;
//! for now in 0..10_000 {
//!     wl.poll(now, &mut |_src, _dest| count += 1);
//! }
//! assert!(count > 0);
//! # Ok::<(), netsim::TopologyError>(())
//! ```

#![forbid(unsafe_code)]
#![warn(missing_docs)]

mod hurst;
mod onoff;
mod pareto;
mod patterns;
pub mod stats;
mod tasks;
mod trace;

pub use hurst::{rs_hurst, variance_time_hurst};
pub use netsim::Cycles;
pub use onoff::{OnOffParams, SelfSimilarSource};
pub use pareto::Pareto;
pub use patterns::{HotspotWorkload, Permutation, PermutationWorkload, UniformRandomWorkload};
pub use tasks::{TaskModelConfig, TaskWorkload};
pub use trace::{Trace, TraceEntry, TraceWorkload};

use netsim::NodeId;

/// A packet-injection process driven one router cycle at a time.
pub trait Workload {
    /// Emit every packet created at cycle `now` through `sink(src, dest)`.
    ///
    /// Implementations must be called with strictly increasing `now`.
    fn poll(&mut self, now: Cycles, sink: &mut dyn FnMut(NodeId, NodeId));
}
