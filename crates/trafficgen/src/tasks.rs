use std::cmp::Reverse;
use std::collections::BinaryHeap;

use netsim::{NodeId, Topology};
use rand::rngs::SmallRng;
use rand::{Rng, SeedableRng};

use crate::{Cycles, OnOffParams, SelfSimilarSource, Workload};

/// Configuration of the two-level task workload model (paper §4.3).
#[derive(Debug, Clone, PartialEq)]
pub struct TaskModelConfig {
    /// Mean number of concurrently active task sessions (paper: 50 or 100).
    pub mean_concurrent_tasks: f64,
    /// Mean task duration in cycles (paper: 10 µs to 1 ms, i.e. 10⁴–10⁶).
    pub mean_duration: Cycles,
    /// Durations are uniform in `mean · [1−jitter, 1+jitter]`.
    pub duration_jitter: f64,
    /// Per-task rate weights are uniform in `[1−spread, 1+spread]`
    /// ("average packet injection rate ... uniformly distributed within a
    /// specified range").
    pub rate_spread: f64,
    /// Sphere-of-locality radius in hops.
    pub locality_radius: u32,
    /// Probability a task's destination falls inside the sphere.
    pub locality_prob: f64,
    /// ON/OFF sources multiplexed per task (paper: 128).
    pub sources_per_task: usize,
    /// Pareto ON/OFF parameters.
    pub on_off: OnOffParams,
}

impl TaskModelConfig {
    /// The paper's 100-task workload with 1 ms mean duration.
    pub fn paper_100_tasks() -> Self {
        Self {
            mean_concurrent_tasks: 100.0,
            mean_duration: 1_000_000,
            duration_jitter: 0.5,
            rate_spread: 0.5,
            locality_radius: 4,
            locality_prob: 0.5,
            sources_per_task: 128,
            on_off: OnOffParams::paper(),
        }
    }

    /// The paper's 50-task workload with 1 ms mean duration.
    pub fn paper_50_tasks() -> Self {
        Self {
            mean_concurrent_tasks: 50.0,
            ..Self::paper_100_tasks()
        }
    }

    /// Builder-style override of the mean task duration (the paper sweeps
    /// 10 µs–1 ms to vary temporal burstiness).
    pub fn with_mean_duration(mut self, cycles: Cycles) -> Self {
        self.mean_duration = cycles;
        self
    }
}

impl Default for TaskModelConfig {
    fn default() -> Self {
        Self::paper_100_tasks()
    }
}

#[derive(Debug)]
struct Task {
    src: NodeId,
    dest: NodeId,
    traffic: SelfSimilarSource,
    generation: u64,
}

#[derive(Debug, Clone, Copy, PartialEq, Eq, PartialOrd, Ord)]
enum Event {
    /// A new task session arrives.
    Arrival,
    /// Task in `slot` (if generation matches) ends.
    End { slot: usize, generation: u64 },
    /// Task in `slot` (if generation matches) has pending packet emissions.
    Emit { slot: usize, generation: u64 },
}

/// The paper's two-level workload: Poisson task sessions placed on random
/// source nodes, each a communication flow to one destination drawn from
/// Reed & Grunwald's *sphere of locality* (near the source with probability
/// `locality_prob`, else uniform), injecting a self-similar packet stream
/// for the task's duration.
///
/// A task is a point-to-point session: its whole stream follows one path,
/// which is what gives the per-link utilization signal the DVS policy needs
/// to track load (and what produces the paper's Fig. 8 spatial variance).
///
/// Construction pre-populates the expected steady-state task count (with
/// randomized residual durations) so short simulations do not need to wait
/// ~1 task lifetime for the population to build up.
#[derive(Debug)]
pub struct TaskWorkload {
    cfg: TaskModelConfig,
    topo: Topology,
    rng: SmallRng,
    tasks: Vec<Option<Task>>,
    free_slots: Vec<usize>,
    heap: BinaryHeap<Reverse<(Cycles, Event)>>,
    next_generation: u64,
    arrival_rate: f64,
    per_task_rate: f64,
    active: usize,
    last_poll: Option<Cycles>,
    /// Per-node list of nodes within the locality radius (precomputed).
    nearby: Vec<Vec<NodeId>>,
}

impl TaskWorkload {
    /// Create a workload targeting `aggregate_rate` packets/cycle across the
    /// whole network.
    ///
    /// # Panics
    ///
    /// Panics if `aggregate_rate` is not finite and positive, or if the
    /// configuration is degenerate (no tasks, zero duration, probabilities
    /// outside `[0, 1]`).
    pub fn new(cfg: TaskModelConfig, topo: &Topology, aggregate_rate: f64, seed: u64) -> Self {
        assert!(
            aggregate_rate.is_finite() && aggregate_rate > 0.0,
            "aggregate rate must be positive"
        );
        assert!(
            cfg.mean_concurrent_tasks >= 1.0,
            "need at least one task on average"
        );
        assert!(cfg.mean_duration > 0, "mean duration must be positive");
        assert!(
            (0.0..=1.0).contains(&cfg.locality_prob),
            "locality probability must be in [0, 1]"
        );
        assert!(
            (0.0..1.0).contains(&cfg.duration_jitter),
            "duration jitter must be in [0, 1)"
        );
        assert!(
            (0.0..1.0).contains(&cfg.rate_spread),
            "rate spread must be in [0, 1)"
        );
        let arrival_rate = cfg.mean_concurrent_tasks / cfg.mean_duration as f64;
        let per_task_rate = aggregate_rate / cfg.mean_concurrent_tasks;
        let nearby = (0..topo.num_nodes())
            .map(|s| {
                (0..topo.num_nodes())
                    .filter(|&d| d != s && topo.distance(s, d) <= cfg.locality_radius)
                    .collect()
            })
            .collect();
        let mut wl = Self {
            cfg,
            topo: topo.clone(),
            rng: SmallRng::seed_from_u64(seed),
            tasks: Vec::new(),
            free_slots: Vec::new(),
            heap: BinaryHeap::new(),
            next_generation: 0,
            arrival_rate,
            per_task_rate,
            active: 0,
            last_poll: None,
            nearby,
        };
        // Steady-state pre-population with residual lifetimes.
        let initial = wl.cfg.mean_concurrent_tasks.round() as usize;
        for _ in 0..initial {
            let dur = wl.sample_duration();
            let residual = ((dur as f64) * wl.rng.gen::<f64>()).ceil() as Cycles;
            wl.spawn_task(0, residual.max(1));
        }
        let first = wl.sample_exponential();
        wl.heap.push(Reverse((first, Event::Arrival)));
        wl
    }

    /// Number of currently active task sessions.
    pub fn active_tasks(&self) -> usize {
        self.active
    }

    /// The task arrival rate implied by Little's law, in tasks/cycle.
    pub fn arrival_rate(&self) -> f64 {
        self.arrival_rate
    }

    fn sample_exponential(&mut self) -> Cycles {
        let u: f64 = 1.0 - self.rng.gen::<f64>();
        let dt = -u.ln() / self.arrival_rate;
        dt.ceil().max(1.0) as Cycles
    }

    fn sample_duration(&mut self) -> Cycles {
        let j = self.cfg.duration_jitter;
        let f = 1.0 - j + 2.0 * j * self.rng.gen::<f64>();
        ((self.cfg.mean_duration as f64) * f).round().max(1.0) as Cycles
    }

    fn pick_destination(&mut self, src: NodeId) -> NodeId {
        let n = self.topo.num_nodes();
        if self.rng.gen::<f64>() < self.cfg.locality_prob {
            let nearby = &self.nearby[src];
            if !nearby.is_empty() {
                return nearby[self.rng.gen_range(0..nearby.len())];
            }
        }
        loop {
            let d = self.rng.gen_range(0..n);
            if d != src {
                return d;
            }
        }
    }

    fn spawn_task(&mut self, now: Cycles, duration: Cycles) {
        let src = self.rng.gen_range(0..self.topo.num_nodes());
        let dest = self.pick_destination(src);
        let spread = self.cfg.rate_spread;
        let weight = 1.0 - spread + 2.0 * spread * self.rng.gen::<f64>();
        let rate = (self.per_task_rate * weight).max(1e-9);
        let seed = self.rng.gen::<u64>();
        let traffic =
            SelfSimilarSource::new(self.cfg.sources_per_task, rate, self.cfg.on_off, seed)
                .with_origin(now);
        let generation = self.next_generation;
        self.next_generation += 1;
        let slot = match self.free_slots.pop() {
            Some(s) => s,
            None => {
                self.tasks.push(None);
                self.tasks.len() - 1
            }
        };
        let first_emit = now.max(traffic.next_event());
        self.tasks[slot] = Some(Task {
            src,
            dest,
            traffic,
            generation,
        });
        self.active += 1;
        self.heap
            .push(Reverse((now + duration, Event::End { slot, generation })));
        self.heap
            .push(Reverse((first_emit, Event::Emit { slot, generation })));
    }
}

impl Workload for TaskWorkload {
    fn poll(&mut self, now: Cycles, sink: &mut dyn FnMut(NodeId, NodeId)) {
        if let Some(last) = self.last_poll {
            debug_assert!(now > last, "poll must be called with increasing time");
        }
        self.last_poll = Some(now);
        while let Some(&Reverse((t, ev))) = self.heap.peek() {
            if t > now {
                break;
            }
            self.heap.pop();
            match ev {
                Event::Arrival => {
                    let dur = self.sample_duration();
                    self.spawn_task(now, dur);
                    let next = now + self.sample_exponential();
                    self.heap.push(Reverse((next, Event::Arrival)));
                }
                Event::End { slot, generation } => {
                    if self.tasks[slot]
                        .as_ref()
                        .is_some_and(|t| t.generation == generation)
                    {
                        self.tasks[slot] = None;
                        self.free_slots.push(slot);
                        self.active -= 1;
                    }
                }
                Event::Emit { slot, generation } => {
                    let Some(task) = self.tasks[slot].as_mut() else {
                        continue;
                    };
                    if task.generation != generation {
                        continue;
                    }
                    let n = task.traffic.emissions_until(now);
                    let (src, dest) = (task.src, task.dest);
                    let next = task.traffic.next_event();
                    for _ in 0..n {
                        sink(src, dest);
                    }
                    self.heap
                        .push(Reverse((next, Event::Emit { slot, generation })));
                }
            }
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn topo() -> Topology {
        Topology::mesh(8, 2).unwrap()
    }

    #[test]
    fn population_hovers_near_mean() {
        let cfg = TaskModelConfig {
            mean_concurrent_tasks: 20.0,
            mean_duration: 50_000,
            ..TaskModelConfig::paper_100_tasks()
        };
        let mut wl = TaskWorkload::new(cfg, &topo(), 0.1, 7);
        assert_eq!(wl.active_tasks(), 20);
        let mut sum = 0usize;
        let mut samples = 0usize;
        for t in 0..500_000u64 {
            wl.poll(t, &mut |_, _| {});
            if t % 1000 == 0 {
                sum += wl.active_tasks();
                samples += 1;
            }
        }
        let mean = sum as f64 / samples as f64;
        assert!((mean - 20.0).abs() < 6.0, "mean population {mean}");
    }

    #[test]
    fn aggregate_rate_is_in_band() {
        let cfg = TaskModelConfig {
            mean_concurrent_tasks: 30.0,
            mean_duration: 100_000,
            ..TaskModelConfig::paper_100_tasks()
        };
        let target = 0.2;
        let mut wl = TaskWorkload::new(cfg, &topo(), target, 3);
        let horizon = 1_000_000u64;
        let mut count = 0u64;
        for t in 0..horizon {
            wl.poll(t, &mut |_, _| count += 1);
        }
        let rate = count as f64 / horizon as f64;
        // Heavy-tailed sources: allow a factor-2 band around the target.
        assert!(rate > target * 0.5 && rate < target * 2.0, "rate {rate}");
    }

    #[test]
    fn destinations_prefer_the_sphere_of_locality() {
        let cfg = TaskModelConfig {
            mean_concurrent_tasks: 50.0,
            mean_duration: 10_000,
            locality_radius: 2,
            locality_prob: 0.9,
            ..TaskModelConfig::paper_100_tasks()
        };
        let t = topo();
        let mut wl = TaskWorkload::new(cfg, &t, 0.5, 11);
        let mut near = 0usize;
        let mut far = 0usize;
        for now in 0..300_000u64 {
            wl.poll(now, &mut |s, d| {
                if t.distance(s, d) <= 2 {
                    near += 1;
                } else {
                    far += 1;
                }
            });
        }
        assert!(near + far > 1000, "not enough packets generated");
        // Under uniform destinations, <= ~20% of pairs are within 2 hops.
        let frac = near as f64 / (near + far) as f64;
        assert!(frac > 0.5, "locality fraction {frac} too small");
    }

    #[test]
    fn sources_and_destinations_differ_and_are_in_range() {
        let mut wl = TaskWorkload::new(
            TaskModelConfig {
                mean_duration: 20_000,
                ..TaskModelConfig::paper_50_tasks()
            },
            &topo(),
            0.5,
            19,
        );
        for now in 0..100_000u64 {
            wl.poll(now, &mut |s, d| {
                assert!(s < 64 && d < 64);
                assert_ne!(s, d);
            });
        }
    }

    #[test]
    fn deterministic_for_same_seed() {
        let run = |seed: u64| {
            let mut wl = TaskWorkload::new(
                TaskModelConfig {
                    mean_duration: 20_000,
                    mean_concurrent_tasks: 10.0,
                    ..TaskModelConfig::paper_100_tasks()
                },
                &topo(),
                0.2,
                seed,
            );
            let mut log = Vec::new();
            for now in 0..50_000u64 {
                wl.poll(now, &mut |s, d| log.push((now, s, d)));
            }
            log
        };
        assert_eq!(run(5), run(5));
        assert_ne!(run(5), run(6));
    }

    #[test]
    #[should_panic(expected = "aggregate rate")]
    fn bad_rate_panics() {
        let _ = TaskWorkload::new(TaskModelConfig::paper_100_tasks(), &topo(), -1.0, 0);
    }
}
