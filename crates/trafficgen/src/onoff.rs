use std::cmp::Reverse;
use std::collections::BinaryHeap;

use rand::rngs::SmallRng;
use rand::{Rng, SeedableRng};

use crate::{Cycles, Pareto};

/// Parameters of the Pareto ON/OFF periods that make aggregate traffic
/// self-similar.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct OnOffParams {
    /// Pareto shape of ON period lengths (paper: 1.4).
    pub shape_on: f64,
    /// Pareto shape of OFF period lengths (paper: 1.2).
    pub shape_off: f64,
    /// Pareto location (minimum) of ON periods, in cycles.
    pub scale_on: f64,
    /// Pareto location (minimum) of OFF periods, in cycles.
    pub scale_off: f64,
}

impl OnOffParams {
    /// The paper's shapes (from Leland et al.'s Ethernet measurements) with
    /// period scales sized so a task-level source emits a handful of packets
    /// per ON burst at typical per-task rates.
    pub fn paper() -> Self {
        Self {
            shape_on: 1.4,
            shape_off: 1.2,
            scale_on: 1_000.0,
            scale_off: 3_000.0,
        }
    }

    /// Expected fraction of time a source spends ON.
    ///
    /// # Panics
    ///
    /// Panics if either shape is ≤ 1 (infinite mean period).
    pub fn duty_cycle(&self) -> f64 {
        let on = Pareto::new(self.shape_on, self.scale_on)
            .mean()
            .expect("ON shape must exceed 1 for a finite mean");
        let off = Pareto::new(self.shape_off, self.scale_off)
            .mean()
            .expect("OFF shape must exceed 1 for a finite mean");
        on / (on + off)
    }
}

impl Default for OnOffParams {
    fn default() -> Self {
        Self::paper()
    }
}

#[derive(Debug, Clone, Copy)]
struct SourceState {
    on: bool,
    /// Time the current ON/OFF phase ends.
    phase_end: f64,
    /// Next emission time (meaningful while ON).
    next_emit: f64,
}

/// The superposition of `n` Pareto ON/OFF sources: a self-similar packet
/// arrival process (Leland et al.; paper §4.3).
///
/// Each source emits one packet every `gap` cycles while ON. Multiplexing
/// many heavy-tailed sources preserves burstiness across time scales, unlike
/// a Poisson process of the same mean rate.
///
/// The process is event-driven internally; drive it with
/// [`emissions_until`](Self::emissions_until) once per cycle (or less often)
/// and it does work only when events actually fire.
#[derive(Debug, Clone)]
pub struct SelfSimilarSource {
    params: OnOffParams,
    on_dist: Pareto,
    off_dist: Pareto,
    gap: f64,
    sources: Vec<SourceState>,
    heap: BinaryHeap<Reverse<(Cycles, u32)>>,
    rng: SmallRng,
    effective_rate: f64,
    /// Absolute cycle the process starts at; internal event times are
    /// relative to it.
    origin: Cycles,
}

impl SelfSimilarSource {
    /// Create the superposition of `sources` ON/OFF sources targeting an
    /// aggregate mean rate of `rate` packets per cycle.
    ///
    /// The per-source emission gap is `duty / (rate / sources)` cycles,
    /// clamped to at least one cycle; if the clamp binds, the achievable
    /// rate (see [`effective_rate`](Self::effective_rate)) is lower than
    /// requested.
    ///
    /// # Panics
    ///
    /// Panics if `sources == 0`, `rate` is not finite and positive, or a
    /// shape parameter is ≤ 1.
    pub fn new(sources: usize, rate: f64, params: OnOffParams, seed: u64) -> Self {
        assert!(sources > 0, "at least one source is required");
        assert!(rate.is_finite() && rate > 0.0, "rate must be positive");
        let duty = params.duty_cycle();
        let per_source = rate / sources as f64;
        let gap = (duty / per_source).max(1.0);
        let effective_rate = duty / gap * sources as f64;
        let on_dist = Pareto::new(params.shape_on, params.scale_on);
        let off_dist = Pareto::new(params.shape_off, params.scale_off);
        let mut rng = SmallRng::seed_from_u64(seed);
        let mut heap = BinaryHeap::with_capacity(sources);
        let states = (0..sources)
            .map(|i| {
                // Start OFF with a randomized residual so the ensemble begins
                // near steady state instead of synchronized.
                let residual = off_dist.sample(&mut rng) * rng.gen::<f64>();
                let s = SourceState {
                    on: false,
                    phase_end: residual,
                    next_emit: f64::INFINITY,
                };
                heap.push(Reverse((residual.ceil() as Cycles, i as u32)));
                s
            })
            .collect();
        Self {
            params,
            on_dist,
            off_dist,
            gap,
            sources: states,
            heap,
            rng,
            effective_rate,
            origin: 0,
        }
    }

    /// Shift the process to start at absolute cycle `origin`: the first
    /// event cannot fire before it, and no emissions accumulate for time
    /// before it. Use when a source is created mid-simulation (e.g. a task
    /// session arriving at `origin`).
    pub fn with_origin(mut self, origin: Cycles) -> Self {
        self.origin = origin;
        self
    }

    /// The ON/OFF parameters in use.
    pub fn params(&self) -> &OnOffParams {
        &self.params
    }

    /// The mean rate this process actually achieves, in packets/cycle.
    pub fn effective_rate(&self) -> f64 {
        self.effective_rate
    }

    /// Cycle of the next internal event (emission or phase toggle), in
    /// absolute time.
    pub fn next_event(&self) -> Cycles {
        self.heap
            .peek()
            .map(|Reverse((t, _))| t.saturating_add(self.origin))
            .unwrap_or(Cycles::MAX)
    }

    /// Process all events up to and including absolute cycle `now`; returns
    /// how many packets the ensemble emitted.
    pub fn emissions_until(&mut self, now: Cycles) -> u32 {
        if now < self.origin {
            return 0;
        }
        let now = now - self.origin;
        let mut emitted = 0;
        while let Some(&Reverse((t, idx))) = self.heap.peek() {
            if t > now {
                break;
            }
            self.heap.pop();
            let i = idx as usize;
            let s = self.sources[i];
            let next = if s.on {
                if s.next_emit <= s.phase_end {
                    // Emission event.
                    emitted += 1;
                    let mut st = s;
                    st.next_emit += self.gap;
                    self.sources[i] = st;
                    st.next_emit.min(st.phase_end)
                } else {
                    // ON phase ends; go OFF.
                    let off = self.off_dist.sample(&mut self.rng);
                    let mut st = s;
                    st.on = false;
                    st.phase_end += off;
                    st.next_emit = f64::INFINITY;
                    self.sources[i] = st;
                    st.phase_end
                }
            } else {
                // OFF phase ends; go ON with a random emission phase.
                let on = self.on_dist.sample(&mut self.rng);
                let start = s.phase_end;
                let mut st = s;
                st.on = true;
                st.phase_end = start + on;
                st.next_emit = start + self.gap * self.rng.gen::<f64>();
                self.sources[i] = st;
                st.next_emit.min(st.phase_end)
            };
            self.heap.push(Reverse((next.ceil() as Cycles, idx)));
        }
        emitted
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn paper_params_duty_cycle() {
        let p = OnOffParams::paper();
        // mean ON = 1000*3.5 = 3500, mean OFF = 3000*6 = 18000.
        assert!((p.duty_cycle() - 3500.0 / 21500.0).abs() < 1e-12);
    }

    #[test]
    fn mean_rate_is_close_to_target() {
        let mut src = SelfSimilarSource::new(64, 0.05, OnOffParams::paper(), 42);
        assert!((src.effective_rate() - 0.05).abs() < 1e-9);
        let horizon: Cycles = 4_000_000;
        let mut total = 0u64;
        for t in 0..horizon {
            total += u64::from(src.emissions_until(t));
        }
        let rate = total as f64 / horizon as f64;
        // Heavy tails converge slowly; accept a wide but meaningful band.
        assert!(rate > 0.02 && rate < 0.10, "rate {rate} too far from 0.05");
    }

    #[test]
    fn gap_clamp_reduces_effective_rate() {
        // One source can emit at most 1 packet/cycle * duty.
        let src = SelfSimilarSource::new(1, 10.0, OnOffParams::paper(), 1);
        let duty = OnOffParams::paper().duty_cycle();
        assert!((src.effective_rate() - duty).abs() < 1e-12);
    }

    #[test]
    fn deterministic_for_same_seed() {
        let run = |seed| {
            let mut s = SelfSimilarSource::new(16, 0.02, OnOffParams::paper(), seed);
            (0..100_000u64)
                .map(|t| u64::from(s.emissions_until(t)))
                .sum::<u64>()
        };
        assert_eq!(run(9), run(9));
        assert_ne!(run(9), run(10));
    }

    #[test]
    fn traffic_is_bursty_not_uniform() {
        // Compare the variance of per-1000-cycle counts against a Poisson
        // process of the same rate: self-similar traffic must be overdispersed.
        let mut src = SelfSimilarSource::new(32, 0.05, OnOffParams::paper(), 5);
        let bins = 2_000usize;
        let bin_len = 1_000u64;
        let mut counts = vec![0f64; bins];
        for (b, c) in counts.iter_mut().enumerate() {
            let end = (b as u64 + 1) * bin_len;
            for t in (b as u64 * bin_len)..end {
                *c += f64::from(src.emissions_until(t));
            }
        }
        let mean = counts.iter().sum::<f64>() / bins as f64;
        let var = counts.iter().map(|c| (c - mean) * (c - mean)).sum::<f64>() / bins as f64;
        // Poisson would give var ~= mean; require clear overdispersion.
        assert!(var > 2.0 * mean, "var {var} vs mean {mean} not bursty");
    }

    #[test]
    fn next_event_is_monotone_under_polling() {
        let mut src = SelfSimilarSource::new(8, 0.01, OnOffParams::paper(), 3);
        let mut last = 0;
        for t in 0..50_000u64 {
            src.emissions_until(t);
            let ne = src.next_event();
            assert!(ne > t, "next event {ne} not in the future at {t}");
            assert!(ne >= last.min(ne));
            last = ne;
        }
    }

    #[test]
    #[should_panic(expected = "at least one source")]
    fn zero_sources_panics() {
        let _ = SelfSimilarSource::new(0, 1.0, OnOffParams::paper(), 0);
    }

    #[test]
    #[should_panic(expected = "rate")]
    fn bad_rate_panics() {
        let _ = SelfSimilarSource::new(1, 0.0, OnOffParams::paper(), 0);
    }
}
