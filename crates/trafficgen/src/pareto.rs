use rand::Rng;

/// A Pareto distribution with shape `β` and location (scale) `a`
/// (paper Eq. 7): `P[X ≤ x] = 1 − (a/x)^β` for `x ≥ a`.
///
/// Heavy-tailed for small shapes: the mean is finite only for `β > 1` and
/// the variance only for `β > 2`, which is exactly why Pareto ON/OFF periods
/// with `1 < β < 2` produce long-range-dependent aggregate traffic.
///
/// # Example
///
/// ```
/// use rand::SeedableRng;
/// use trafficgen::Pareto;
///
/// let p = Pareto::new(1.4, 100.0);
/// let mut rng = rand::rngs::SmallRng::seed_from_u64(1);
/// let x = p.sample(&mut rng);
/// assert!(x >= 100.0);
/// ```
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct Pareto {
    shape: f64,
    scale: f64,
}

impl Pareto {
    /// Create a Pareto distribution.
    ///
    /// # Panics
    ///
    /// Panics if `shape` or `scale` is not finite and positive.
    pub fn new(shape: f64, scale: f64) -> Self {
        assert!(shape.is_finite() && shape > 0.0, "shape must be positive");
        assert!(scale.is_finite() && scale > 0.0, "scale must be positive");
        Self { shape, scale }
    }

    /// Shape parameter `β`.
    pub fn shape(&self) -> f64 {
        self.shape
    }

    /// Location parameter `a` (the distribution's minimum).
    pub fn scale(&self) -> f64 {
        self.scale
    }

    /// Mean `a·β/(β−1)`, or `None` when `β ≤ 1` (infinite mean).
    pub fn mean(&self) -> Option<f64> {
        (self.shape > 1.0).then(|| self.scale * self.shape / (self.shape - 1.0))
    }

    /// Draw one sample by inverse-CDF: `a / U^(1/β)` with `U ∈ (0, 1]`.
    pub fn sample<R: Rng + ?Sized>(&self, rng: &mut R) -> f64 {
        let u: f64 = 1.0 - rng.gen::<f64>(); // (0, 1]
        self.scale / u.powf(1.0 / self.shape)
    }

    /// The cumulative distribution function at `x`.
    pub fn cdf(&self, x: f64) -> f64 {
        if x < self.scale {
            0.0
        } else {
            1.0 - (self.scale / x).powf(self.shape)
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use rand::rngs::SmallRng;
    use rand::SeedableRng;

    #[test]
    fn samples_respect_location_bound() {
        let p = Pareto::new(1.2, 50.0);
        let mut rng = SmallRng::seed_from_u64(7);
        for _ in 0..10_000 {
            assert!(p.sample(&mut rng) >= 50.0);
        }
    }

    #[test]
    fn empirical_mean_matches_theory() {
        // Use a light tail (finite variance) so the sample mean converges.
        let p = Pareto::new(3.0, 10.0);
        let mut rng = SmallRng::seed_from_u64(11);
        let n = 200_000;
        let sum: f64 = (0..n).map(|_| p.sample(&mut rng)).sum();
        let mean = sum / n as f64;
        let expect = p.mean().unwrap(); // 15
        assert!(
            (mean - expect).abs() / expect < 0.02,
            "mean {mean} vs {expect}"
        );
    }

    #[test]
    fn heavy_tail_has_no_finite_mean() {
        assert_eq!(Pareto::new(1.0, 1.0).mean(), None);
        assert_eq!(Pareto::new(0.5, 1.0).mean(), None);
        assert!(Pareto::new(1.4, 1.0).mean().is_some());
    }

    #[test]
    fn cdf_matches_definition() {
        let p = Pareto::new(2.0, 4.0);
        assert_eq!(p.cdf(3.0), 0.0);
        assert_eq!(p.cdf(4.0), 0.0);
        assert!((p.cdf(8.0) - 0.75).abs() < 1e-12);
        assert!(p.cdf(1e9) > 0.999);
    }

    #[test]
    fn empirical_cdf_agrees() {
        let p = Pareto::new(1.4, 100.0);
        let mut rng = SmallRng::seed_from_u64(3);
        let n = 100_000;
        let below: usize = (0..n).filter(|_| p.sample(&mut rng) <= 300.0).count();
        let expect = p.cdf(300.0);
        let got = below as f64 / n as f64;
        assert!((got - expect).abs() < 0.01, "cdf {got} vs {expect}");
    }

    #[test]
    #[should_panic(expected = "shape")]
    fn invalid_shape_panics() {
        let _ = Pareto::new(0.0, 1.0);
    }

    #[test]
    #[should_panic(expected = "scale")]
    fn invalid_scale_panics() {
        let _ = Pareto::new(1.0, f64::NAN);
    }
}
