//! Hurst-exponent estimators for validating long-range dependence.
//!
//! A second-order self-similar process has autocorrelations decaying as
//! `k^{-β}` with `0 < β < 1` (paper Eq. 6), equivalently a Hurst exponent
//! `H = 1 − β/2` in `(0.5, 1)`. Short-range-dependent traffic (e.g.
//! Poisson) has `H = 0.5`. Both estimators here are the standard graphical
//! methods turned into least-squares fits.

/// Least-squares slope of `y` against `x`.
fn slope(xs: &[f64], ys: &[f64]) -> Option<f64> {
    if xs.len() != ys.len() || xs.len() < 2 {
        return None;
    }
    let n = xs.len() as f64;
    let mx = xs.iter().sum::<f64>() / n;
    let my = ys.iter().sum::<f64>() / n;
    let mut num = 0.0;
    let mut den = 0.0;
    for (x, y) in xs.iter().zip(ys) {
        num += (x - mx) * (y - my);
        den += (x - mx) * (x - mx);
    }
    (den > 0.0).then(|| num / den)
}

/// Estimate the Hurst exponent by the variance–time method.
///
/// The series is aggregated over block sizes `m` (powers of two); for a
/// self-similar process the variance of the aggregated means scales as
/// `m^{2H−2}`, so the log–log slope gives `H = 1 + slope/2`.
///
/// Returns `None` when the series is too short (< 64 samples) or degenerate
/// (zero variance).
pub fn variance_time_hurst(series: &[f64]) -> Option<f64> {
    if series.len() < 64 {
        return None;
    }
    let mut xs = Vec::new();
    let mut ys = Vec::new();
    let mut m = 1usize;
    while series.len() / m >= 8 {
        let blocks = series.len() / m;
        let means: Vec<f64> = (0..blocks)
            .map(|b| series[b * m..(b + 1) * m].iter().sum::<f64>() / m as f64)
            .collect();
        let mean = means.iter().sum::<f64>() / blocks as f64;
        let var = means.iter().map(|v| (v - mean) * (v - mean)).sum::<f64>() / blocks as f64;
        if var > 0.0 {
            xs.push((m as f64).ln());
            ys.push(var.ln());
        }
        m *= 2;
    }
    let s = slope(&xs, &ys)?;
    Some((1.0 + s / 2.0).clamp(0.0, 1.0))
}

/// Estimate the Hurst exponent by the rescaled-range (R/S) method.
///
/// For each block size `n`, the series is cut into blocks; each block's
/// range of cumulative mean-adjusted sums is divided by its standard
/// deviation, and `E[R/S] ~ c·n^H` gives `H` as the log–log slope.
///
/// Returns `None` when the series is too short (< 64 samples) or degenerate.
pub fn rs_hurst(series: &[f64]) -> Option<f64> {
    if series.len() < 64 {
        return None;
    }
    let mut xs = Vec::new();
    let mut ys = Vec::new();
    let mut n = 8usize;
    while n <= series.len() / 4 {
        let blocks = series.len() / n;
        let mut rs_sum = 0.0;
        let mut rs_count = 0usize;
        for b in 0..blocks {
            let block = &series[b * n..(b + 1) * n];
            let mean = block.iter().sum::<f64>() / n as f64;
            let mut cum = 0.0;
            let mut max = f64::MIN;
            let mut min = f64::MAX;
            let mut var = 0.0;
            for &v in block {
                cum += v - mean;
                max = max.max(cum);
                min = min.min(cum);
                var += (v - mean) * (v - mean);
            }
            let std = (var / n as f64).sqrt();
            if std > 0.0 {
                rs_sum += (max - min) / std;
                rs_count += 1;
            }
        }
        if rs_count > 0 {
            xs.push((n as f64).ln());
            ys.push((rs_sum / rs_count as f64).ln());
        }
        n *= 2;
    }
    let s = slope(&xs, &ys)?;
    Some(s.clamp(0.0, 1.0))
}

#[cfg(test)]
mod tests {
    use super::*;
    use rand::rngs::SmallRng;
    use rand::{Rng, SeedableRng};

    fn white_noise(n: usize, seed: u64) -> Vec<f64> {
        let mut rng = SmallRng::seed_from_u64(seed);
        (0..n).map(|_| rng.gen::<f64>()).collect()
    }

    #[test]
    fn white_noise_has_h_near_half() {
        let series = white_noise(65_536, 2);
        let h_vt = variance_time_hurst(&series).unwrap();
        assert!((h_vt - 0.5).abs() < 0.1, "variance-time H = {h_vt}");
        let h_rs = rs_hurst(&series).unwrap();
        assert!((h_rs - 0.5).abs() < 0.12, "R/S H = {h_rs}");
    }

    #[test]
    fn heavy_tailed_on_off_traffic_is_lrd() {
        // Counts per 100-cycle bin from our own self-similar generator must
        // show H clearly above 0.5 on both estimators.
        use crate::{OnOffParams, SelfSimilarSource};
        let mut src = SelfSimilarSource::new(64, 0.1, OnOffParams::paper(), 13);
        let bins = 32_768usize;
        let bin_len = 100u64;
        let mut series = vec![0f64; bins];
        for (b, slot) in series.iter_mut().enumerate() {
            for t in (b as u64 * bin_len)..((b as u64 + 1) * bin_len) {
                *slot += f64::from(src.emissions_until(t));
            }
        }
        let h_vt = variance_time_hurst(&series).unwrap();
        assert!(h_vt > 0.6, "variance-time H = {h_vt} not LRD");
        let h_rs = rs_hurst(&series).unwrap();
        assert!(h_rs > 0.6, "R/S H = {h_rs} not LRD");
    }

    #[test]
    fn short_or_degenerate_series_yield_none() {
        assert_eq!(variance_time_hurst(&[1.0; 10]), None);
        assert_eq!(rs_hurst(&[1.0; 10]), None);
        let constant = vec![3.0; 1024];
        assert_eq!(variance_time_hurst(&constant), None);
        assert_eq!(rs_hurst(&constant), None);
    }

    #[test]
    fn estimates_are_clamped_to_unit_interval() {
        // A strongly trending series pushes raw estimates above 1; the
        // public API clamps.
        let series: Vec<f64> = (0..4096).map(|i| i as f64).collect();
        let h = variance_time_hurst(&series).unwrap();
        assert!((0.0..=1.0).contains(&h));
        let h2 = rs_hurst(&series).unwrap();
        assert!((0.0..=1.0).contains(&h2));
    }
}
