use netsim::{NodeId, Topology};
use rand::rngs::SmallRng;
use rand::{Rng, SeedableRng};

use crate::{Cycles, Workload};

/// Uniform random traffic: every cycle each node injects a packet with
/// probability `rate / num_nodes`, destination uniform over the other nodes.
///
/// This is the classic short-range-dependent baseline; it has neither
/// spatial nor temporal variance beyond what the topology imposes.
#[derive(Debug, Clone)]
pub struct UniformRandomWorkload {
    num_nodes: usize,
    p_inject: f64,
    rng: SmallRng,
}

impl UniformRandomWorkload {
    /// Create uniform random traffic at `rate` packets/cycle network-wide.
    ///
    /// # Panics
    ///
    /// Panics if `num_nodes < 2` or the per-node probability
    /// `rate / num_nodes` exceeds 1.
    pub fn new(num_nodes: usize, rate: f64, seed: u64) -> Self {
        assert!(num_nodes >= 2, "need at least two nodes");
        let p_inject = rate / num_nodes as f64;
        assert!(
            (0.0..=1.0).contains(&p_inject),
            "per-node injection probability {p_inject} outside [0, 1]"
        );
        Self {
            num_nodes,
            p_inject,
            rng: SmallRng::seed_from_u64(seed),
        }
    }
}

impl Workload for UniformRandomWorkload {
    fn poll(&mut self, _now: Cycles, sink: &mut dyn FnMut(NodeId, NodeId)) {
        for src in 0..self.num_nodes {
            if self.rng.gen::<f64>() < self.p_inject {
                let mut dest = self.rng.gen_range(0..self.num_nodes - 1);
                if dest >= src {
                    dest += 1;
                }
                sink(src, dest);
            }
        }
    }
}

/// Classic permutation traffic patterns: every source sends to one fixed
/// destination determined by a permutation of the address.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub enum Permutation {
    /// Complement every address bit (requires a power-of-two node count).
    BitComplement,
    /// Swap the two coordinates (requires a 2-D topology).
    Transpose,
    /// Reverse the address bits (requires a power-of-two node count).
    BitReverse,
    /// Send almost halfway around the lowest dimension (`⌈k/2⌉ − 1` hops
    /// positive) — the classic adversarial pattern for tori.
    Tornado,
    /// Send one hop in the positive direction of the lowest dimension
    /// (wrapping), the friendliest possible pattern.
    NearestNeighbor,
}

impl Permutation {
    /// The destination `self` maps `node` to on `topo`.
    ///
    /// # Panics
    ///
    /// Panics if the topology does not meet the pattern's requirement
    /// (power-of-two size for the bit patterns, 2 dimensions for transpose).
    pub fn apply(&self, topo: &Topology, node: NodeId) -> NodeId {
        let n = topo.num_nodes();
        match self {
            Permutation::BitComplement => {
                assert!(n.is_power_of_two(), "bit complement needs 2^m nodes");
                !node & (n - 1)
            }
            Permutation::Transpose => {
                assert_eq!(topo.dims(), 2, "transpose needs a 2-D topology");
                let (x, y) = (topo.coord(node, 0), topo.coord(node, 1));
                topo.node_at(&[y, x])
            }
            Permutation::BitReverse => {
                assert!(n.is_power_of_two(), "bit reverse needs 2^m nodes");
                let bits = n.trailing_zeros();
                let mut out = 0usize;
                for b in 0..bits {
                    if node & (1 << b) != 0 {
                        out |= 1 << (bits - 1 - b);
                    }
                }
                out
            }
            Permutation::Tornado => self.shift_dim0(topo, node, topo.radix().div_ceil(2) - 1),
            Permutation::NearestNeighbor => self.shift_dim0(topo, node, 1),
        }
    }

    fn shift_dim0(&self, topo: &Topology, node: NodeId, hops: u32) -> NodeId {
        let mut coords: Vec<u32> = (0..topo.dims()).map(|d| topo.coord(node, d)).collect();
        coords[0] = (coords[0] + hops) % topo.radix();
        topo.node_at(&coords)
    }
}

/// Hotspot traffic: a fraction of packets target one hot node, the rest a
/// uniform destination — the classic stress test for congestion handling
/// (and for DVS policies that must keep the hot path fast while everything
/// else sleeps).
#[derive(Debug, Clone)]
pub struct HotspotWorkload {
    num_nodes: usize,
    hotspot: NodeId,
    hot_fraction: f64,
    p_inject: f64,
    rng: SmallRng,
}

impl HotspotWorkload {
    /// Create hotspot traffic at `rate` packets/cycle network-wide, sending
    /// `hot_fraction` of packets to `hotspot`.
    ///
    /// # Panics
    ///
    /// Panics if `hotspot` is out of range, `hot_fraction` is outside
    /// `[0, 1]`, or the per-node injection probability exceeds 1.
    pub fn new(num_nodes: usize, hotspot: NodeId, hot_fraction: f64, rate: f64, seed: u64) -> Self {
        assert!(num_nodes >= 2, "need at least two nodes");
        assert!(hotspot < num_nodes, "hotspot {hotspot} out of range");
        assert!(
            (0.0..=1.0).contains(&hot_fraction),
            "hot fraction must be in [0, 1]"
        );
        let p_inject = rate / num_nodes as f64;
        assert!(
            (0.0..=1.0).contains(&p_inject),
            "per-node injection probability {p_inject} outside [0, 1]"
        );
        Self {
            num_nodes,
            hotspot,
            hot_fraction,
            p_inject,
            rng: SmallRng::seed_from_u64(seed),
        }
    }
}

impl Workload for HotspotWorkload {
    fn poll(&mut self, _now: Cycles, sink: &mut dyn FnMut(NodeId, NodeId)) {
        for src in 0..self.num_nodes {
            if self.rng.gen::<f64>() >= self.p_inject {
                continue;
            }
            let dest = if self.rng.gen::<f64>() < self.hot_fraction && src != self.hotspot {
                self.hotspot
            } else {
                let mut d = self.rng.gen_range(0..self.num_nodes - 1);
                if d >= src {
                    d += 1;
                }
                d
            };
            sink(src, dest);
        }
    }
}

/// Permutation traffic: Bernoulli injections (like
/// [`UniformRandomWorkload`]) toward each node's fixed permuted destination.
/// Sources whose permutation maps to themselves stay silent.
#[derive(Debug, Clone)]
pub struct PermutationWorkload {
    dests: Vec<NodeId>,
    p_inject: f64,
    rng: SmallRng,
}

impl PermutationWorkload {
    /// Create permutation traffic at `rate` packets/cycle network-wide.
    ///
    /// # Panics
    ///
    /// Panics under the same conditions as [`Permutation::apply`] and
    /// [`UniformRandomWorkload::new`].
    pub fn new(perm: Permutation, topo: &Topology, rate: f64, seed: u64) -> Self {
        let n = topo.num_nodes();
        assert!(n >= 2, "need at least two nodes");
        let p_inject = rate / n as f64;
        assert!(
            (0.0..=1.0).contains(&p_inject),
            "per-node injection probability {p_inject} outside [0, 1]"
        );
        let dests = (0..n).map(|s| perm.apply(topo, s)).collect();
        Self {
            dests,
            p_inject,
            rng: SmallRng::seed_from_u64(seed),
        }
    }
}

impl Workload for PermutationWorkload {
    fn poll(&mut self, _now: Cycles, sink: &mut dyn FnMut(NodeId, NodeId)) {
        for (src, &dest) in self.dests.iter().enumerate() {
            if dest != src && self.rng.gen::<f64>() < self.p_inject {
                sink(src, dest);
            }
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn topo() -> Topology {
        Topology::mesh(8, 2).unwrap()
    }

    #[test]
    fn uniform_random_rate_and_validity() {
        let mut wl = UniformRandomWorkload::new(64, 1.0, 4);
        let mut count = 0u64;
        for now in 0..100_000u64 {
            wl.poll(now, &mut |s, d| {
                assert!(s < 64 && d < 64 && s != d);
                count += 1;
            });
        }
        let rate = count as f64 / 100_000.0;
        assert!((rate - 1.0).abs() < 0.05, "rate {rate}");
    }

    #[test]
    fn uniform_random_destinations_are_uniform() {
        let mut wl = UniformRandomWorkload::new(8, 2.0, 9);
        let mut hist = [0u32; 8];
        for now in 0..50_000u64 {
            wl.poll(now, &mut |_, d| hist[d] += 1);
        }
        let total: u32 = hist.iter().sum();
        for (d, &c) in hist.iter().enumerate() {
            let frac = f64::from(c) / f64::from(total);
            assert!((frac - 0.125).abs() < 0.02, "dest {d} frac {frac}");
        }
    }

    #[test]
    fn bit_complement_is_an_involution() {
        let t = topo();
        for node in t.nodes() {
            let d = Permutation::BitComplement.apply(&t, node);
            assert_eq!(Permutation::BitComplement.apply(&t, d), node);
        }
        // (0,0) -> (7,7)
        assert_eq!(Permutation::BitComplement.apply(&t, 0), 63);
    }

    #[test]
    fn transpose_swaps_coordinates() {
        let t = topo();
        let n = t.node_at(&[2, 5]);
        let d = Permutation::Transpose.apply(&t, n);
        assert_eq!(t.coord(d, 0), 5);
        assert_eq!(t.coord(d, 1), 2);
        // Diagonal nodes map to themselves.
        let diag = t.node_at(&[4, 4]);
        assert_eq!(Permutation::Transpose.apply(&t, diag), diag);
    }

    #[test]
    fn bit_reverse_is_an_involution() {
        let t = topo();
        for node in t.nodes() {
            let d = Permutation::BitReverse.apply(&t, node);
            assert_eq!(Permutation::BitReverse.apply(&t, d), node);
        }
        // 6 bits: 0b000001 -> 0b100000.
        assert_eq!(Permutation::BitReverse.apply(&t, 1), 32);
    }

    #[test]
    fn permutation_workload_uses_fixed_pairs() {
        let t = topo();
        let mut wl = PermutationWorkload::new(Permutation::BitComplement, &t, 2.0, 1);
        for now in 0..20_000u64 {
            wl.poll(now, &mut |s, d| {
                assert_eq!(d, Permutation::BitComplement.apply(&t, s));
            });
        }
    }

    #[test]
    fn self_mapping_sources_stay_silent() {
        let t = topo();
        let mut wl = PermutationWorkload::new(Permutation::Transpose, &t, 2.0, 1);
        for now in 0..20_000u64 {
            wl.poll(now, &mut |s, d| assert_ne!(s, d));
        }
    }

    #[test]
    fn tornado_sends_almost_halfway() {
        let t = topo(); // 8-ary: ceil(8/2) - 1 = 3 hops positive in X
        let n = t.node_at(&[2, 5]);
        let d = Permutation::Tornado.apply(&t, n);
        assert_eq!((t.coord(d, 0), t.coord(d, 1)), (5, 5));
        // Wraps at the edge.
        let edge = t.node_at(&[6, 0]);
        let de = Permutation::Tornado.apply(&t, edge);
        assert_eq!(t.coord(de, 0), 1);
    }

    #[test]
    fn nearest_neighbor_is_one_hop() {
        let t = topo();
        for node in t.nodes() {
            let d = Permutation::NearestNeighbor.apply(&t, node);
            assert_eq!(t.coord(d, 0), (t.coord(node, 0) + 1) % 8);
            assert_eq!(t.coord(d, 1), t.coord(node, 1));
        }
    }

    #[test]
    fn hotspot_concentrates_traffic() {
        let mut wl = HotspotWorkload::new(64, 9, 0.5, 2.0, 3);
        let mut to_hot = 0u64;
        let mut total = 0u64;
        for now in 0..50_000u64 {
            wl.poll(now, &mut |s, d| {
                assert_ne!(s, d);
                total += 1;
                if d == 9 {
                    to_hot += 1;
                }
            });
        }
        let frac = to_hot as f64 / total as f64;
        // 50% directed + ~1/63 of the uniform remainder.
        assert!(frac > 0.45 && frac < 0.60, "hot fraction {frac}");
    }

    #[test]
    #[should_panic(expected = "hotspot")]
    fn hotspot_out_of_range_panics() {
        let _ = HotspotWorkload::new(16, 16, 0.5, 1.0, 0);
    }

    #[test]
    #[should_panic(expected = "probability")]
    fn overload_rate_panics() {
        let _ = UniformRandomWorkload::new(4, 5.0, 0);
    }
}
