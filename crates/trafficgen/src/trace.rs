//! Recording and replaying injection traces.
//!
//! A trace pins down a workload exactly — every `(cycle, source,
//! destination)` injection — so experiments can be re-run bit-identically
//! across policy variants (the paper compares DVS against non-DVS *on the
//! same traffic*), archived, or exchanged with other simulators. The text
//! format is one `cycle,src,dest` line per packet, ordered by cycle.

use std::io::{self, BufRead, Write};

use netsim::NodeId;

use crate::{Cycles, Workload};

/// One recorded packet injection.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct TraceEntry {
    /// Injection cycle.
    pub cycle: Cycles,
    /// Source node.
    pub src: NodeId,
    /// Destination node.
    pub dest: NodeId,
}

/// An injection trace: entries ordered by non-decreasing cycle.
#[derive(Debug, Clone, Default, PartialEq, Eq)]
pub struct Trace {
    entries: Vec<TraceEntry>,
}

impl Trace {
    /// An empty trace.
    pub fn new() -> Self {
        Self::default()
    }

    /// Record `workload` for `cycles` cycles.
    pub fn record(workload: &mut dyn Workload, cycles: Cycles) -> Self {
        let mut entries = Vec::new();
        for t in 0..cycles {
            workload.poll(t, &mut |src, dest| {
                entries.push(TraceEntry {
                    cycle: t,
                    src,
                    dest,
                });
            });
        }
        Self { entries }
    }

    /// Build a trace from entries.
    ///
    /// # Panics
    ///
    /// Panics if entries are not ordered by non-decreasing cycle.
    pub fn from_entries(entries: Vec<TraceEntry>) -> Self {
        assert!(
            entries.windows(2).all(|w| w[0].cycle <= w[1].cycle),
            "trace entries must be ordered by cycle"
        );
        Self { entries }
    }

    /// The recorded entries, ordered by cycle.
    pub fn entries(&self) -> &[TraceEntry] {
        &self.entries
    }

    /// Number of recorded injections.
    pub fn len(&self) -> usize {
        self.entries.len()
    }

    /// Whether the trace is empty.
    pub fn is_empty(&self) -> bool {
        self.entries.is_empty()
    }

    /// Mean injection rate in packets/cycle over the trace's span.
    pub fn mean_rate(&self) -> f64 {
        match self.entries.last() {
            None => 0.0,
            Some(last) => self.entries.len() as f64 / (last.cycle + 1) as f64,
        }
    }

    /// Serialize as `cycle,src,dest` lines.
    ///
    /// # Errors
    ///
    /// Propagates I/O errors from `out`.
    pub fn write_to<W: Write>(&self, out: &mut W) -> io::Result<()> {
        for e in &self.entries {
            writeln!(out, "{},{},{}", e.cycle, e.src, e.dest)?;
        }
        Ok(())
    }

    /// Parse from `cycle,src,dest` lines (blank lines and `#` comments are
    /// skipped). Note that a mutable reference can be passed as a reader.
    ///
    /// # Errors
    ///
    /// Returns an `InvalidData` error for malformed lines or out-of-order
    /// cycles, and propagates I/O errors.
    pub fn read_from<R: BufRead>(input: R) -> io::Result<Self> {
        let mut entries = Vec::new();
        let mut last_cycle = 0;
        for (i, line) in input.lines().enumerate() {
            let line = line?;
            let line = line.trim();
            if line.is_empty() || line.starts_with('#') {
                continue;
            }
            let mut parts = line.split(',');
            let bad = |what: &str| {
                io::Error::new(
                    io::ErrorKind::InvalidData,
                    format!("line {}: {what}", i + 1),
                )
            };
            let cycle: Cycles = parts
                .next()
                .and_then(|s| s.trim().parse().ok())
                .ok_or_else(|| bad("missing or invalid cycle"))?;
            let src: NodeId = parts
                .next()
                .and_then(|s| s.trim().parse().ok())
                .ok_or_else(|| bad("missing or invalid source"))?;
            let dest: NodeId = parts
                .next()
                .and_then(|s| s.trim().parse().ok())
                .ok_or_else(|| bad("missing or invalid destination"))?;
            if parts.next().is_some() {
                return Err(bad("trailing fields"));
            }
            if cycle < last_cycle {
                return Err(bad("cycles out of order"));
            }
            last_cycle = cycle;
            entries.push(TraceEntry { cycle, src, dest });
        }
        Ok(Self { entries })
    }

    /// Turn the trace into a replayable [`Workload`].
    pub fn into_workload(self) -> TraceWorkload {
        TraceWorkload {
            trace: self,
            next: 0,
        }
    }
}

/// Replays a [`Trace`] as a [`Workload`].
#[derive(Debug, Clone)]
pub struct TraceWorkload {
    trace: Trace,
    next: usize,
}

impl TraceWorkload {
    /// Injections not yet replayed.
    pub fn remaining(&self) -> usize {
        self.trace.len() - self.next
    }
}

impl Workload for TraceWorkload {
    fn poll(&mut self, now: Cycles, sink: &mut dyn FnMut(NodeId, NodeId)) {
        while let Some(e) = self.trace.entries.get(self.next) {
            if e.cycle > now {
                break;
            }
            sink(e.src, e.dest);
            self.next += 1;
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::UniformRandomWorkload;

    #[test]
    fn record_and_replay_are_identical() {
        let mut wl = UniformRandomWorkload::new(16, 0.5, 9);
        let trace = Trace::record(&mut wl, 5_000);
        assert!(!trace.is_empty());
        assert!((trace.mean_rate() - 0.5).abs() < 0.1);

        let mut replayed = Vec::new();
        let mut tw = trace.clone().into_workload();
        for t in 0..5_000u64 {
            tw.poll(t, &mut |s, d| replayed.push((t, s, d)));
        }
        assert_eq!(tw.remaining(), 0);
        let original: Vec<_> = trace
            .entries()
            .iter()
            .map(|e| (e.cycle, e.src, e.dest))
            .collect();
        assert_eq!(original, replayed);
    }

    #[test]
    fn text_roundtrip() {
        let trace = Trace::from_entries(vec![
            TraceEntry {
                cycle: 0,
                src: 1,
                dest: 2,
            },
            TraceEntry {
                cycle: 0,
                src: 3,
                dest: 4,
            },
            TraceEntry {
                cycle: 17,
                src: 5,
                dest: 0,
            },
        ]);
        let mut buf = Vec::new();
        trace.write_to(&mut buf).unwrap();
        let parsed = Trace::read_from(&buf[..]).unwrap();
        assert_eq!(parsed, trace);
    }

    #[test]
    fn parser_skips_comments_and_rejects_garbage() {
        let good = "# header\n\n0,1,2\n5,3,4\n";
        let t = Trace::read_from(good.as_bytes()).unwrap();
        assert_eq!(t.len(), 2);

        assert!(Trace::read_from("nonsense".as_bytes()).is_err());
        assert!(Trace::read_from("0,1".as_bytes()).is_err());
        assert!(Trace::read_from("0,1,2,3".as_bytes()).is_err());
        // Out-of-order cycles.
        assert!(Trace::read_from("5,1,2\n0,1,2".as_bytes()).is_err());
    }

    #[test]
    #[should_panic(expected = "ordered by cycle")]
    fn out_of_order_entries_panic() {
        let _ = Trace::from_entries(vec![
            TraceEntry {
                cycle: 9,
                src: 0,
                dest: 1,
            },
            TraceEntry {
                cycle: 3,
                src: 0,
                dest: 1,
            },
        ]);
    }

    #[test]
    fn empty_trace_behaves() {
        let t = Trace::new();
        assert_eq!(t.mean_rate(), 0.0);
        assert_eq!(t.len(), 0);
        let mut tw = t.into_workload();
        let mut called = false;
        tw.poll(100, &mut |_, _| called = true);
        assert!(!called);
    }

    mod properties {
        use super::*;
        use proptest::prelude::*;

        proptest! {
            /// The text format round-trips every trace with sorted cycles:
            /// entries are generated as non-negative cycle *deltas* so any
            /// drawn vector yields a valid (non-decreasing) trace, including
            /// duplicates within a cycle and large gaps.
            #[test]
            fn text_format_roundtrips_sorted_entries(
                deltas in prop::collection::vec((0u64..50, 0usize..256, 0usize..256), 0..40)
            ) {
                let mut cycle = 0;
                let entries: Vec<TraceEntry> = deltas
                    .into_iter()
                    .map(|(d, src, dest)| {
                        cycle += d;
                        TraceEntry { cycle, src, dest }
                    })
                    .collect();
                let trace = Trace::from_entries(entries);
                let mut buf = Vec::new();
                trace.write_to(&mut buf).unwrap();
                let parsed = Trace::read_from(&buf[..]).unwrap();
                prop_assert_eq!(parsed, trace);
            }

            /// Malformed input must surface as an `Err`, never a panic:
            /// every generated line is broken in one of the ways the parser
            /// guards against (wrong arity, non-numeric fields, negative
            /// node ids, empty trailing fields), and the first one must
            /// abort the parse cleanly.
            #[test]
            fn malformed_lines_error_instead_of_panicking(
                lines in prop::collection::vec((0u64..6, 0u64..1000), 1..20)
            ) {
                let text = lines
                    .iter()
                    .map(|&(kind, n)| match kind {
                        0 => format!("{n}"),                // missing src + dest
                        1 => format!("{n},{n}"),            // missing dest
                        2 => format!("{n},{n},{n},{n}"),    // trailing field
                        3 => format!("x{n},0,0"),           // non-numeric cycle
                        4 => format!("{n},-1,2"),           // negative node id
                        _ => format!("{n},{n},"),           // empty dest
                    })
                    .collect::<Vec<_>>()
                    .join("\n");
                let res = Trace::read_from(text.as_bytes());
                prop_assert!(res.is_err(), "parsed garbage: {}", text);
            }
        }
    }
}
