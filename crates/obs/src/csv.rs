use std::fmt::Write as _;

use crate::timeline::{LinkTimeline, Timeline, TimelineSample};

/// Header for [`timeline_csv`] (all tracks, identified per row).
pub const TIMELINE_CSV_HEADER: &str =
    "node,port,start,end,link_utilization,buffer_utilization,level,freq_mhz,power_w,energy_j,flits";

/// Header for [`track_csv`] (one track, Fig. 9-style).
pub const TRACK_CSV_HEADER: &str =
    "start,end,link_utilization,buffer_utilization,level,freq_mhz,power_w,energy_j,flits";

fn push_sample(out: &mut String, s: &TimelineSample) {
    let _ = writeln!(
        out,
        "{},{},{:.6},{:.6},{},{:.3},{:.6},{:.9e},{}",
        s.start,
        s.end,
        s.link_utilization,
        s.buffer_utilization,
        s.level,
        s.freq_mhz,
        s.power_w,
        s.energy_j,
        s.flits,
    );
}

/// Serialize every track of a [`Timeline`] as one CSV, rows keyed by
/// `(node, port)` then window start. Matches the figure-artifact CSV
/// conventions (comma-separated, header row, one window per line).
pub fn timeline_csv(timeline: &Timeline) -> String {
    let mut out = String::from(TIMELINE_CSV_HEADER);
    out.push('\n');
    for tr in timeline.tracks() {
        for s in tr.samples() {
            let _ = write!(out, "{},{},", tr.id().node, tr.id().port);
            push_sample(&mut out, s);
        }
    }
    out
}

/// Serialize a single track as a Fig. 9-style CSV: frequency and
/// utilization per fixed-stride window, for the frequency-vs-utilization
/// trace plots.
pub fn track_csv(track: &LinkTimeline) -> String {
    let mut out = String::from(TRACK_CSV_HEADER);
    out.push('\n');
    for s in track.samples() {
        push_sample(&mut out, s);
    }
    out
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::event::LinkId;

    fn demo_timeline() -> Timeline {
        let mut tl = Timeline::new(50);
        let idx = tl.add_track(LinkId { node: 3, port: 1 }, 4);
        tl.push(
            idx,
            TimelineSample {
                start: 0,
                end: 50,
                link_utilization: 0.5,
                buffer_utilization: 0.25,
                level: 2,
                freq_mhz: 888.9,
                power_w: 1.25,
                energy_j: 6.25e-8,
                flits: 25,
            },
        );
        tl
    }

    #[test]
    fn timeline_csv_has_header_and_keyed_rows() {
        let csv = timeline_csv(&demo_timeline());
        let mut lines = csv.lines();
        assert_eq!(lines.next(), Some(TIMELINE_CSV_HEADER));
        let row = lines.next().unwrap();
        assert!(row.starts_with("3,1,0,50,0.500000,"));
        assert_eq!(
            row.split(',').count(),
            TIMELINE_CSV_HEADER.split(',').count()
        );
        assert_eq!(lines.next(), None);
    }

    #[test]
    fn track_csv_matches_header_width() {
        let tl = demo_timeline();
        let csv = track_csv(&tl.tracks()[0]);
        let mut lines = csv.lines();
        assert_eq!(lines.next(), Some(TRACK_CSV_HEADER));
        let row = lines.next().unwrap();
        assert_eq!(row.split(',').count(), TRACK_CSV_HEADER.split(',').count());
        assert!(row.contains("888.900"));
    }
}
