use std::fmt;
use std::ops::{BitOr, BitOrAssign};

use crate::attr::LatencyBreakdown;
use crate::Cycles;

/// Identifies one inter-router channel: the output `port` of router `node`.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub struct LinkId {
    /// Router owning the output port.
    pub node: usize,
    /// Output port index.
    pub port: usize,
}

impl fmt::Display for LinkId {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "n{}.p{}", self.node, self.port)
    }
}

/// One simulator trace event, stamped with the router cycle `t` it occurred
/// at. Events are emitted at the source (router hot path, channel phase
/// machinery, fault model) and only when the [`Tracer`](crate::Tracer) in
/// use has `ENABLED = true`.
#[derive(Debug, Clone, Copy, PartialEq)]
pub enum Event {
    /// A packet was created and queued at its source.
    PacketInject {
        /// Cycle of creation (start of source queuing).
        t: Cycles,
        /// Source node.
        src: usize,
        /// Destination node.
        dest: usize,
        /// Packet id.
        packet: u64,
    },
    /// A flit moved from the source queue into the local input buffer.
    FlitInject {
        /// Cycle of injection.
        t: Cycles,
        /// Injecting node.
        node: usize,
        /// Packet id.
        packet: u64,
        /// Flit sequence number within the packet (head = 0).
        seq: u8,
    },
    /// A flit was ejected at its destination.
    FlitEject {
        /// Cycle of ejection.
        t: Cycles,
        /// Destination node.
        node: usize,
        /// Packet id.
        packet: u64,
        /// Flit sequence number within the packet.
        seq: u8,
    },
    /// A packet finished ejecting (tail flit left the network).
    PacketDelivered {
        /// Cycle the tail ejected.
        t: Cycles,
        /// Destination node.
        node: usize,
        /// Packet id.
        packet: u64,
        /// Creation-to-tail-ejection latency in cycles.
        latency: Cycles,
    },
    /// A waiting head flit requested an output VC and was not granted one
    /// this cycle.
    VcAllocStall {
        /// Cycle of the failed allocation.
        t: Cycles,
        /// The contended output channel.
        link: LinkId,
        /// Requesting input port.
        in_port: usize,
        /// Requesting input VC.
        in_vc: usize,
    },
    /// A policy's predicted link utilization left the hold band (crossed
    /// below the low or above the high threshold). Emitted on the window
    /// where the crossing happens, not every window spent outside the band.
    ThresholdCrossing {
        /// Cycle the window closed.
        t: Cycles,
        /// The channel whose policy crossed.
        link: LinkId,
        /// Predicted link utilization.
        lu: f64,
        /// Active low threshold.
        low: f64,
        /// Active high threshold.
        high: f64,
        /// `true` for crossing above `high`, `false` for below `low`.
        up: bool,
    },
    /// The congestion litmus (predicted BU vs. `B_congested`) flipped,
    /// switching the policy between its light-load and congested threshold
    /// pairs.
    CongestionFlip {
        /// Cycle the window closed.
        t: Cycles,
        /// The channel whose policy flipped.
        link: LinkId,
        /// New congestion state.
        congested: bool,
    },
    /// A policy initiated a level transition, with the window measures that
    /// triggered it.
    DvsRequest {
        /// Cycle the window closed.
        t: Cycles,
        /// The transitioning channel.
        link: LinkId,
        /// Level before the transition.
        from: usize,
        /// Target level.
        to: usize,
        /// Link utilization of the triggering window.
        lu: f64,
        /// Downstream buffer utilization of the triggering window.
        bu: f64,
        /// Whether the policy considered the downstream congested.
        congested: bool,
    },
    /// The channel entered its frequency-lock phase: links are disabled
    /// until `until` while the receiver re-locks onto the new clock.
    DvsLock {
        /// Cycle the lock began.
        t: Cycles,
        /// The locking channel.
        link: LinkId,
        /// Level the transition is heading to.
        target: usize,
        /// Cycle at which the lock completes.
        until: Cycles,
    },
    /// A level transition completed; the channel is stable at `level`.
    DvsComplete {
        /// Cycle the transition completed.
        t: Cycles,
        /// The channel.
        link: LinkId,
        /// New stable level.
        level: usize,
    },
    /// Transition overhead energy was charged (the Stratakos regulator term
    /// plus any retransmission energy folded into the same meter bucket).
    TransitionEnergy {
        /// Cycle of the charge.
        t: Cycles,
        /// The channel charged.
        link: LinkId,
        /// Energy in joules.
        energy_j: f64,
    },
    /// A transmission was corrupted, detected, and NACKed; the flit will be
    /// retransmitted after the round trip plus backoff.
    FaultNack {
        /// Cycle of the corrupted crossing.
        t: Cycles,
        /// The faulty channel.
        link: LinkId,
    },
    /// A corrupted flit aliased past the CRC and was delivered anyway
    /// (residual error).
    FaultResidual {
        /// Cycle of the undetected corruption.
        t: Cycles,
        /// The faulty channel.
        link: LinkId,
    },
    /// The channel exhausted its retry budget and fail-stopped permanently.
    FaultFailStop {
        /// Cycle of the final failed attempt.
        t: Cycles,
        /// The dead channel.
        link: LinkId,
    },
    /// A transient outage episode began; the link is down for its duration.
    OutageStart {
        /// First cycle of the outage.
        t: Cycles,
        /// The affected channel.
        link: LinkId,
    },
    /// A packet was delivered, with its latency decomposed into additive
    /// components (see [`LatencyBreakdown`]); `breakdown.total() == latency`.
    PacketAttribution {
        /// Cycle the tail ejected.
        t: Cycles,
        /// Destination node.
        node: usize,
        /// Packet id.
        packet: u64,
        /// Creation-to-tail-ejection latency in cycles.
        latency: Cycles,
        /// Where those cycles went.
        breakdown: LatencyBreakdown,
    },
}

impl Event {
    /// The cycle the event occurred at.
    pub fn time(&self) -> Cycles {
        use Event::*;
        match *self {
            PacketInject { t, .. }
            | FlitInject { t, .. }
            | FlitEject { t, .. }
            | PacketDelivered { t, .. }
            | VcAllocStall { t, .. }
            | ThresholdCrossing { t, .. }
            | CongestionFlip { t, .. }
            | DvsRequest { t, .. }
            | DvsLock { t, .. }
            | DvsComplete { t, .. }
            | TransitionEnergy { t, .. }
            | FaultNack { t, .. }
            | FaultResidual { t, .. }
            | FaultFailStop { t, .. }
            | OutageStart { t, .. }
            | PacketAttribution { t, .. } => t,
        }
    }

    /// The channel the event concerns, when it concerns one.
    pub fn link(&self) -> Option<LinkId> {
        use Event::*;
        match *self {
            VcAllocStall { link, .. }
            | ThresholdCrossing { link, .. }
            | CongestionFlip { link, .. }
            | DvsRequest { link, .. }
            | DvsLock { link, .. }
            | DvsComplete { link, .. }
            | TransitionEnergy { link, .. }
            | FaultNack { link, .. }
            | FaultResidual { link, .. }
            | FaultFailStop { link, .. }
            | OutageStart { link, .. } => Some(link),
            PacketInject { .. }
            | FlitInject { .. }
            | FlitEject { .. }
            | PacketDelivered { .. }
            | PacketAttribution { .. } => None,
        }
    }

    /// The event's kind, for filtering and counting.
    pub fn kind(&self) -> EventKind {
        use Event::*;
        match self {
            PacketInject { .. } => EventKind::PacketInject,
            FlitInject { .. } => EventKind::FlitInject,
            FlitEject { .. } => EventKind::FlitEject,
            PacketDelivered { .. } => EventKind::PacketDelivered,
            VcAllocStall { .. } => EventKind::VcAllocStall,
            ThresholdCrossing { .. } => EventKind::ThresholdCrossing,
            CongestionFlip { .. } => EventKind::CongestionFlip,
            DvsRequest { .. } => EventKind::DvsRequest,
            DvsLock { .. } => EventKind::DvsLock,
            DvsComplete { .. } => EventKind::DvsComplete,
            TransitionEnergy { .. } => EventKind::TransitionEnergy,
            FaultNack { .. } => EventKind::FaultNack,
            FaultResidual { .. } => EventKind::FaultResidual,
            FaultFailStop { .. } => EventKind::FaultFailStop,
            OutageStart { .. } => EventKind::OutageStart,
            PacketAttribution { .. } => EventKind::PacketAttribution,
        }
    }
}

/// Discriminant of an [`Event`], usable as a bit index in an [`EventMask`].
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
#[repr(u32)]
#[allow(missing_docs)] // names mirror the Event variants documented above
pub enum EventKind {
    PacketInject = 0,
    FlitInject = 1,
    FlitEject = 2,
    PacketDelivered = 3,
    VcAllocStall = 4,
    ThresholdCrossing = 5,
    CongestionFlip = 6,
    DvsRequest = 7,
    DvsLock = 8,
    DvsComplete = 9,
    TransitionEnergy = 10,
    FaultNack = 11,
    FaultResidual = 12,
    FaultFailStop = 13,
    OutageStart = 14,
    PacketAttribution = 15,
}

impl EventKind {
    /// Number of kinds (array-sizing constant).
    pub const COUNT: usize = 16;

    /// All kinds, in discriminant order.
    pub const ALL: [EventKind; EventKind::COUNT] = [
        EventKind::PacketInject,
        EventKind::FlitInject,
        EventKind::FlitEject,
        EventKind::PacketDelivered,
        EventKind::VcAllocStall,
        EventKind::ThresholdCrossing,
        EventKind::CongestionFlip,
        EventKind::DvsRequest,
        EventKind::DvsLock,
        EventKind::DvsComplete,
        EventKind::TransitionEnergy,
        EventKind::FaultNack,
        EventKind::FaultResidual,
        EventKind::FaultFailStop,
        EventKind::OutageStart,
        EventKind::PacketAttribution,
    ];

    /// Stable snake_case name (used by the JSONL exporter and summaries).
    pub fn name(self) -> &'static str {
        match self {
            EventKind::PacketInject => "packet_inject",
            EventKind::FlitInject => "flit_inject",
            EventKind::FlitEject => "flit_eject",
            EventKind::PacketDelivered => "packet_delivered",
            EventKind::VcAllocStall => "vc_alloc_stall",
            EventKind::ThresholdCrossing => "threshold_crossing",
            EventKind::CongestionFlip => "congestion_flip",
            EventKind::DvsRequest => "dvs_request",
            EventKind::DvsLock => "dvs_lock",
            EventKind::DvsComplete => "dvs_complete",
            EventKind::TransitionEnergy => "transition_energy",
            EventKind::FaultNack => "fault_nack",
            EventKind::FaultResidual => "fault_residual",
            EventKind::FaultFailStop => "fault_fail_stop",
            EventKind::OutageStart => "outage_start",
            EventKind::PacketAttribution => "packet_attribution",
        }
    }

    /// Parse the stable snake_case name produced by [`name`](Self::name).
    pub fn from_name(name: &str) -> Option<EventKind> {
        EventKind::ALL.into_iter().find(|k| k.name() == name)
    }

    const fn bit(self) -> u32 {
        1 << (self as u32)
    }
}

/// A set of [`EventKind`]s, used to filter what an
/// [`EventLog`](crate::EventLog) retains. Combine groups with `|`.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct EventMask(u32);

impl EventMask {
    /// Retain nothing (counters still accumulate).
    pub const NONE: EventMask = EventMask(0);
    /// Retain every event kind.
    pub const ALL: EventMask = EventMask((1 << EventKind::COUNT as u32) - 1);
    /// Packet/flit movement: injections, ejections, deliveries, and
    /// per-packet latency attributions.
    pub const TRAFFIC: EventMask = EventMask(
        EventKind::PacketInject.bit()
            | EventKind::FlitInject.bit()
            | EventKind::FlitEject.bit()
            | EventKind::PacketDelivered.bit()
            | EventKind::PacketAttribution.bit(),
    );
    /// Per-cycle VC-allocation stalls (the chattiest kind).
    pub const STALLS: EventMask = EventMask(EventKind::VcAllocStall.bit());
    /// DVS decisions and channel phase changes.
    pub const DVS: EventMask = EventMask(
        EventKind::ThresholdCrossing.bit()
            | EventKind::CongestionFlip.bit()
            | EventKind::DvsRequest.bit()
            | EventKind::DvsLock.bit()
            | EventKind::DvsComplete.bit()
            | EventKind::TransitionEnergy.bit(),
    );
    /// Fault, retransmission, and outage events.
    pub const FAULTS: EventMask = EventMask(
        EventKind::FaultNack.bit()
            | EventKind::FaultResidual.bit()
            | EventKind::FaultFailStop.bit()
            | EventKind::OutageStart.bit(),
    );

    /// Whether `kind` is in the set.
    pub fn contains(self, kind: EventKind) -> bool {
        self.0 & kind.bit() != 0
    }

    /// Build a mask from a comma-separated list of kind names and/or group
    /// aliases (`all`, `traffic`, `stalls`, `dvs`, `faults`). Empty items
    /// are ignored; an unknown name yields an error listing every valid
    /// spelling.
    pub fn from_names(names: &str) -> Result<EventMask, String> {
        let mut mask = EventMask::NONE;
        for item in names.split(',') {
            let item = item.trim();
            if item.is_empty() {
                continue;
            }
            mask |= match item {
                "all" => EventMask::ALL,
                "traffic" => EventMask::TRAFFIC,
                "stalls" => EventMask::STALLS,
                "dvs" => EventMask::DVS,
                "faults" => EventMask::FAULTS,
                name => match EventKind::from_name(name) {
                    Some(kind) => EventMask(kind.bit()),
                    None => {
                        let valid: Vec<&str> = EventKind::ALL.iter().map(|k| k.name()).collect();
                        return Err(format!(
                            "unknown event kind '{name}'; valid kinds: {}; groups: all, \
                             traffic, stalls, dvs, faults",
                            valid.join(", ")
                        ));
                    }
                },
            };
        }
        Ok(mask)
    }
}

impl BitOr for EventMask {
    type Output = EventMask;
    fn bitor(self, rhs: EventMask) -> EventMask {
        EventMask(self.0 | rhs.0)
    }
}

impl BitOrAssign for EventMask {
    fn bitor_assign(&mut self, rhs: EventMask) {
        self.0 |= rhs.0;
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn kinds_round_trip_through_events() {
        let link = LinkId { node: 3, port: 1 };
        let cases: Vec<(Event, EventKind)> = vec![
            (
                Event::PacketInject {
                    t: 1,
                    src: 0,
                    dest: 5,
                    packet: 7,
                },
                EventKind::PacketInject,
            ),
            (
                Event::DvsRequest {
                    t: 200,
                    link,
                    from: 9,
                    to: 8,
                    lu: 0.1,
                    bu: 0.0,
                    congested: false,
                },
                EventKind::DvsRequest,
            ),
            (Event::OutageStart { t: 9, link }, EventKind::OutageStart),
        ];
        for (e, k) in cases {
            assert_eq!(e.kind(), k);
        }
    }

    #[test]
    fn masks_partition_the_kinds() {
        let union = EventMask::TRAFFIC | EventMask::STALLS | EventMask::DVS | EventMask::FAULTS;
        assert_eq!(union, EventMask::ALL);
        for k in EventKind::ALL {
            assert!(EventMask::ALL.contains(k));
            assert!(!EventMask::NONE.contains(k));
            let groups = [
                EventMask::TRAFFIC,
                EventMask::STALLS,
                EventMask::DVS,
                EventMask::FAULTS,
            ];
            assert_eq!(
                groups.iter().filter(|m| m.contains(k)).count(),
                1,
                "{k:?} must belong to exactly one group"
            );
        }
    }

    #[test]
    fn kind_names_round_trip() {
        for k in EventKind::ALL {
            assert_eq!(EventKind::from_name(k.name()), Some(k));
        }
        assert_eq!(EventKind::from_name("bogus"), None);
    }

    #[test]
    fn masks_parse_from_names() {
        assert_eq!(
            EventMask::from_names("dvs,faults"),
            Ok(EventMask::DVS | EventMask::FAULTS)
        );
        assert_eq!(EventMask::from_names("all"), Ok(EventMask::ALL));
        assert_eq!(
            EventMask::from_names(" packet_delivered , vc_alloc_stall "),
            Ok(EventMask::STALLS | EventMask(EventKind::PacketDelivered.bit()))
        );
        assert_eq!(EventMask::from_names(""), Ok(EventMask::NONE));
        let err = EventMask::from_names("dvs,nope").unwrap_err();
        assert!(err.contains("nope"), "{err}");
        assert!(err.contains("packet_attribution"), "{err}");
        assert!(err.contains("groups"), "{err}");
    }

    #[test]
    fn attribution_event_accessors() {
        let e = Event::PacketAttribution {
            t: 77,
            node: 4,
            packet: 12,
            latency: 51,
            breakdown: LatencyBreakdown {
                source_queue: 0,
                buffer: 2,
                pipeline: 44,
                serialization: 5,
                lock: 0,
                retransmission: 0,
            },
        };
        assert_eq!(e.time(), 77);
        assert_eq!(e.link(), None);
        assert_eq!(e.kind(), EventKind::PacketAttribution);
        assert!(EventMask::TRAFFIC.contains(EventKind::PacketAttribution));
        if let Event::PacketAttribution {
            latency, breakdown, ..
        } = e
        {
            assert_eq!(breakdown.total(), latency);
        }
    }

    #[test]
    fn link_and_time_accessors() {
        let link = LinkId { node: 2, port: 4 };
        let e = Event::DvsLock {
            t: 400,
            link,
            target: 3,
            until: 900,
        };
        assert_eq!(e.time(), 400);
        assert_eq!(e.link(), Some(link));
        let e = Event::FlitEject {
            t: 10,
            node: 1,
            packet: 0,
            seq: 4,
        };
        assert_eq!(e.link(), None);
        assert_eq!(format!("{link}"), "n2.p4");
    }
}
