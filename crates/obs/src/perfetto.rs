use std::collections::BTreeSet;
use std::fmt::Write as _;

use crate::event::{Event, LinkId};
use crate::timeline::Timeline;
use crate::Cycles;

/// Format a cycle count as trace microseconds (1 cycle = 1 ns).
fn ts_us(t: Cycles) -> String {
    format!("{:.3}", t as f64 / 1000.0)
}

/// Format an `f64` as a JSON number (non-finite values become 0).
fn num(x: f64) -> String {
    if x.is_finite() {
        format!("{x}")
    } else {
        "0".to_string()
    }
}

fn push_counter(out: &mut String, link: LinkId, metric: &str, t: Cycles, value: String) {
    let _ = write!(
        out,
        ",\n{{\"name\":\"{metric} {link}\",\"ph\":\"C\",\"pid\":{},\"ts\":{},\"args\":{{\"{metric}\":{value}}}}}",
        link.node,
        ts_us(t),
    );
}

/// Serialize a [`Timeline`] and an event stream as Chrome `trace_event`
/// JSON, loadable in Perfetto (<https://ui.perfetto.dev>) or
/// `chrome://tracing`.
///
/// Layout: each router becomes a process (`pid = node`), each of its output
/// channels a thread (`tid = port`). Per-sample counter tracks carry link
/// utilization, DVS level, frequency, and window energy; `DvsLock` events
/// become duration slices spanning the re-lock window, and every other
/// link-bearing event becomes an instant on its channel's thread. Events
/// without a channel (packet/flit movement) are skipped — they belong in
/// the JSONL stream, not the per-link view.
///
/// Timestamps are microseconds assuming a 1 GHz router clock (1 cycle =
/// 1 ns), matching the paper's 8x8 configuration.
pub fn perfetto_trace(timeline: &Timeline, events: &[Event]) -> String {
    let mut links: BTreeSet<(usize, usize)> = BTreeSet::new();
    for tr in timeline.tracks() {
        links.insert((tr.id().node, tr.id().port));
    }
    for e in events {
        if let Some(link) = e.link() {
            links.insert((link.node, link.port));
        }
    }

    let mut out = String::from("{\"displayTimeUnit\":\"ns\",\"traceEvents\":[");
    // Metadata: name each router process once, each channel thread once.
    let mut first = true;
    let mut named_nodes: BTreeSet<usize> = BTreeSet::new();
    for &(node, port) in &links {
        if named_nodes.insert(node) {
            let _ = write!(
                out,
                "{}{{\"name\":\"process_name\",\"ph\":\"M\",\"pid\":{node},\"args\":{{\"name\":\"router {node}\"}}}}",
                if first { "\n" } else { ",\n" },
            );
            first = false;
        }
        let _ = write!(
            out,
            ",\n{{\"name\":\"thread_name\",\"ph\":\"M\",\"pid\":{node},\"tid\":{port},\"args\":{{\"name\":\"link n{node}.p{port}\"}}}}",
        );
    }

    for tr in timeline.tracks() {
        let link = tr.id();
        for s in tr.samples() {
            push_counter(
                &mut out,
                link,
                "link_utilization",
                s.end,
                num(s.link_utilization),
            );
            push_counter(&mut out, link, "dvs_level", s.end, format!("{}", s.level));
            push_counter(&mut out, link, "freq_mhz", s.end, num(s.freq_mhz));
            push_counter(&mut out, link, "energy_uj", s.end, num(s.energy_j * 1e6));
        }
    }

    for e in events {
        let Some(link) = e.link() else { continue };
        match *e {
            Event::DvsLock {
                t, target, until, ..
            } => {
                let dur = until.saturating_sub(t);
                let _ = write!(
                    out,
                    ",\n{{\"name\":\"freq lock -> L{target}\",\"ph\":\"X\",\"pid\":{},\"tid\":{},\"ts\":{},\"dur\":{},\"args\":{{\"target_level\":{target}}}}}",
                    link.node,
                    link.port,
                    ts_us(t),
                    ts_us(dur),
                );
            }
            _ => {
                let _ = write!(
                    out,
                    ",\n{{\"name\":\"{}\",\"ph\":\"i\",\"s\":\"t\",\"pid\":{},\"tid\":{},\"ts\":{}}}",
                    e.kind().name(),
                    link.node,
                    link.port,
                    ts_us(e.time()),
                );
            }
        }
    }

    out.push_str("\n]}\n");
    out
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::timeline::TimelineSample;

    #[test]
    fn trace_is_structured_json_with_expected_records() {
        let mut tl = Timeline::new(50);
        let idx = tl.add_track(LinkId { node: 9, port: 2 }, 4);
        tl.push(
            idx,
            TimelineSample {
                start: 0,
                end: 50,
                link_utilization: 0.25,
                buffer_utilization: 0.1,
                level: 4,
                freq_mhz: 666.7,
                power_w: 0.9,
                energy_j: 2.5e-8,
                flits: 7,
            },
        );
        let link = LinkId { node: 9, port: 2 };
        let events = vec![
            Event::DvsLock {
                t: 100,
                link,
                target: 5,
                until: 1100,
            },
            Event::FaultNack { t: 200, link },
            // No link: must be skipped.
            Event::PacketInject {
                t: 1,
                src: 0,
                dest: 1,
                packet: 0,
            },
        ];
        let trace = perfetto_trace(&tl, &events);
        assert!(trace.starts_with("{\"displayTimeUnit\""));
        assert!(trace.trim_end().ends_with("]}"));
        assert!(trace.contains("\"router 9\""));
        assert!(trace.contains("\"link n9.p2\""));
        assert!(trace.contains("\"link_utilization n9.p2\""));
        assert!(trace.contains("\"ph\":\"X\""));
        assert!(trace.contains("\"dur\":1.000"));
        assert!(trace.contains("\"fault_nack\""));
        assert!(!trace.contains("packet_inject"));
        // Balanced braces/brackets is a cheap well-formedness proxy.
        assert_eq!(
            trace.matches('{').count(),
            trace.matches('}').count(),
            "unbalanced braces"
        );
        assert_eq!(trace.matches('[').count(), trace.matches(']').count());
    }
}
