use std::collections::VecDeque;

use crate::event::LinkId;
use crate::Cycles;

/// One sampling window of a single channel's state, as captured by
/// `netsim::TimelineCollector`.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct TimelineSample {
    /// First cycle of the window.
    pub start: Cycles,
    /// One past the last cycle of the window.
    pub end: Cycles,
    /// Fraction of available link slots that carried a flit in the window.
    pub link_utilization: f64,
    /// Mean downstream input-buffer occupancy over the window, as a
    /// fraction of capacity.
    pub buffer_utilization: f64,
    /// DVS level at the end of the window (0 = fastest).
    pub level: u32,
    /// Link frequency in MHz at the end of the window.
    pub freq_mhz: f64,
    /// Link power draw in watts at the end of the window.
    pub power_w: f64,
    /// Energy spent by the channel during the window, in joules.
    pub energy_j: f64,
    /// Flits transmitted during the window.
    pub flits: u64,
}

/// Fixed-stride sample track for one channel, bounded to the most recent
/// `capacity` samples.
#[derive(Debug, Clone)]
pub struct LinkTimeline {
    id: LinkId,
    capacity: usize,
    samples: VecDeque<TimelineSample>,
    dropped: u64,
}

impl LinkTimeline {
    fn new(id: LinkId, capacity: usize) -> LinkTimeline {
        LinkTimeline {
            id,
            capacity,
            samples: VecDeque::new(),
            dropped: 0,
        }
    }

    /// The channel this track follows.
    pub fn id(&self) -> LinkId {
        self.id
    }

    /// Retained samples, oldest first.
    pub fn samples(&self) -> impl Iterator<Item = &TimelineSample> {
        self.samples.iter()
    }

    /// Number of retained samples.
    pub fn len(&self) -> usize {
        self.samples.len()
    }

    /// Whether no samples are retained.
    pub fn is_empty(&self) -> bool {
        self.samples.is_empty()
    }

    /// Samples evicted by the capacity bound.
    pub fn dropped(&self) -> u64 {
        self.dropped
    }

    fn push(&mut self, sample: TimelineSample) {
        if self.samples.len() >= self.capacity {
            self.samples.pop_front();
            self.dropped += 1;
        }
        if self.capacity > 0 {
            self.samples.push_back(sample);
        }
    }
}

/// A set of per-channel sample tracks captured on a common stride.
#[derive(Debug, Clone)]
pub struct Timeline {
    stride: Cycles,
    tracks: Vec<LinkTimeline>,
}

impl Timeline {
    /// An empty timeline whose tracks will be sampled every `stride` cycles.
    pub fn new(stride: Cycles) -> Timeline {
        Timeline {
            stride,
            tracks: Vec::new(),
        }
    }

    /// The sampling stride in cycles.
    pub fn stride(&self) -> Cycles {
        self.stride
    }

    /// Add a track for channel `id` holding at most `capacity` samples;
    /// returns its index for [`Timeline::push`].
    pub fn add_track(&mut self, id: LinkId, capacity: usize) -> usize {
        self.tracks.push(LinkTimeline::new(id, capacity));
        self.tracks.len() - 1
    }

    /// Append a sample to track `idx`.
    pub fn push(&mut self, idx: usize, sample: TimelineSample) {
        self.tracks[idx].push(sample);
    }

    /// All tracks, in insertion order.
    pub fn tracks(&self) -> &[LinkTimeline] {
        &self.tracks
    }

    /// A copy retaining only the `n` tracks scoring highest under `key`
    /// (summed over each track's samples), preserving insertion order among
    /// the survivors. Used to bound exporter output on large networks.
    pub fn top_tracks(&self, n: usize, key: impl Fn(&TimelineSample) -> f64) -> Timeline {
        let mut scored: Vec<(usize, f64)> = self
            .tracks
            .iter()
            .enumerate()
            .map(|(i, tr)| (i, tr.samples().map(&key).sum::<f64>()))
            .collect();
        // Highest score first; ties broken toward the earlier track.
        scored.sort_by(|a, b| b.1.partial_cmp(&a.1).unwrap_or(std::cmp::Ordering::Equal));
        let mut keep: Vec<usize> = scored.into_iter().take(n).map(|(i, _)| i).collect();
        keep.sort_unstable();
        Timeline {
            stride: self.stride,
            tracks: keep.into_iter().map(|i| self.tracks[i].clone()).collect(),
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn sample(start: Cycles, lu: f64) -> TimelineSample {
        TimelineSample {
            start,
            end: start + 50,
            link_utilization: lu,
            buffer_utilization: 0.2,
            level: 3,
            freq_mhz: 800.0,
            power_w: 0.5,
            energy_j: 1e-8,
            flits: 10,
        }
    }

    #[test]
    fn tracks_bound_their_history() {
        let mut tl = Timeline::new(50);
        let idx = tl.add_track(LinkId { node: 1, port: 0 }, 2);
        for i in 0..4 {
            tl.push(idx, sample(i * 50, 0.5));
        }
        let tr = &tl.tracks()[0];
        assert_eq!(tr.len(), 2);
        assert_eq!(tr.dropped(), 2);
        let starts: Vec<Cycles> = tr.samples().map(|s| s.start).collect();
        assert_eq!(starts, vec![100, 150]);
    }

    #[test]
    fn top_tracks_selects_by_key_and_keeps_order() {
        let mut tl = Timeline::new(50);
        for (node, lu) in [(0, 0.1), (1, 0.9), (2, 0.5)] {
            let idx = tl.add_track(LinkId { node, port: 0 }, 8);
            tl.push(idx, sample(0, lu));
        }
        let top = tl.top_tracks(2, |s| s.link_utilization);
        let nodes: Vec<usize> = top.tracks().iter().map(|tr| tr.id().node).collect();
        assert_eq!(nodes, vec![1, 2]);
        assert_eq!(top.stride(), 50);
    }
}
