//! Per-packet latency attribution: the decomposition of one delivered
//! packet's end-to-end latency into additive, mutually exclusive
//! components, plus an aggregator for whole-run totals.
//!
//! The invariant the simulator maintains (and the property tests enforce)
//! is *exact* accounting: the six components of a [`LatencyBreakdown`]
//! always sum to the packet's measured creation-to-tail-ejection latency,
//! cycle for cycle. The components are integers and the accounting is done
//! with the same cycle arithmetic as the latency measurement itself, so
//! the identity is bit-exact, not approximate.

/// Where one delivered packet's end-to-end latency went, in cycles.
///
/// Each cycle between the packet's creation and its tail flit's ejection
/// is attributed to exactly one component, so
/// `total() == ejected_at - created_at` always holds. Components follow
/// the tail flit (the flit whose ejection defines packet latency).
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq)]
pub struct LatencyBreakdown {
    /// Cycles spent in the source queue before injection into the local
    /// input buffer (the paper's "source queuing" delay).
    pub source_queue: u32,
    /// Cycles spent buffered in input VCs waiting for VC allocation,
    /// credits, or switch arbitration.
    pub buffer: u32,
    /// Cycles spent traversing router pipelines and wires once switch
    /// allocation was won (the fixed per-hop cost).
    pub pipeline: u32,
    /// Extra cycles waiting for a transmission slot because the link runs
    /// below full frequency (serialization at the scaled-down rate).
    pub serialization: u32,
    /// Cycles stalled behind a link disabled for a DVS frequency re-lock.
    pub lock: u32,
    /// Cycles lost to corrupted transmissions: NACK round trips, backoff,
    /// and outage/fail-stop holds.
    pub retransmission: u32,
}

impl LatencyBreakdown {
    /// Sum of all components — equals the packet's measured end-to-end
    /// latency in cycles.
    pub fn total(&self) -> u64 {
        self.source_queue as u64
            + self.buffer as u64
            + self.pipeline as u64
            + self.serialization as u64
            + self.lock as u64
            + self.retransmission as u64
    }
}

/// Running sums of [`LatencyBreakdown`] components over many packets.
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq)]
pub struct BreakdownTotals {
    /// Delivered packets recorded.
    pub packets: u64,
    /// Summed source-queue cycles.
    pub source_queue: u64,
    /// Summed buffered/VC-allocation cycles.
    pub buffer: u64,
    /// Summed pipeline-traversal cycles.
    pub pipeline: u64,
    /// Summed scaled-frequency serialization cycles.
    pub serialization: u64,
    /// Summed DVS lock-stall cycles.
    pub lock: u64,
    /// Summed retransmission/outage cycles.
    pub retransmission: u64,
}

impl BreakdownTotals {
    /// Fold one delivered packet's breakdown into the totals.
    pub fn record(&mut self, b: &LatencyBreakdown) {
        self.packets += 1;
        self.source_queue += b.source_queue as u64;
        self.buffer += b.buffer as u64;
        self.pipeline += b.pipeline as u64;
        self.serialization += b.serialization as u64;
        self.lock += b.lock as u64;
        self.retransmission += b.retransmission as u64;
    }

    /// Sum of all component totals — equals the sum of measured latencies.
    pub fn total(&self) -> u64 {
        self.source_queue
            + self.buffer
            + self.pipeline
            + self.serialization
            + self.lock
            + self.retransmission
    }

    /// Per-packet means in component order: source queue, buffer,
    /// pipeline, serialization, lock, retransmission. All zero when no
    /// packets were recorded.
    pub fn means(&self) -> [f64; 6] {
        if self.packets == 0 {
            return [0.0; 6];
        }
        let n = self.packets as f64;
        [
            self.source_queue as f64 / n,
            self.buffer as f64 / n,
            self.pipeline as f64 / n,
            self.serialization as f64 / n,
            self.lock as f64 / n,
            self.retransmission as f64 / n,
        ]
    }

    /// Stable component names, aligned with [`means`](Self::means).
    pub const COMPONENTS: [&'static str; 6] = [
        "source_queue",
        "buffer",
        "pipeline",
        "serialization",
        "lock",
        "retransmission",
    ];
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn breakdown_total_sums_components() {
        let b = LatencyBreakdown {
            source_queue: 3,
            buffer: 11,
            pipeline: 44,
            serialization: 5,
            lock: 2,
            retransmission: 7,
        };
        assert_eq!(b.total(), 3 + 11 + 44 + 5 + 2 + 7);
        assert_eq!(LatencyBreakdown::default().total(), 0);
    }

    #[test]
    fn totals_accumulate_and_average() {
        let mut t = BreakdownTotals::default();
        let a = LatencyBreakdown {
            source_queue: 1,
            buffer: 2,
            pipeline: 40,
            serialization: 0,
            lock: 0,
            retransmission: 0,
        };
        let b = LatencyBreakdown {
            source_queue: 3,
            buffer: 0,
            pipeline: 44,
            serialization: 8,
            lock: 10,
            retransmission: 6,
        };
        t.record(&a);
        t.record(&b);
        assert_eq!(t.packets, 2);
        assert_eq!(t.total(), a.total() + b.total());
        let m = t.means();
        assert_eq!(m[0], 2.0);
        assert_eq!(m[2], 42.0);
        assert_eq!(m[4], 5.0);
        assert_eq!(BreakdownTotals::default().means(), [0.0; 6]);
    }
}
