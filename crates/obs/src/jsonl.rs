use std::fmt::Write as _;

use crate::event::{Event, LinkId};

fn num(x: f64) -> String {
    if x.is_finite() {
        format!("{x}")
    } else {
        "0".to_string()
    }
}

fn link_fields(out: &mut String, link: LinkId) {
    let _ = write!(out, ",\"node\":{},\"port\":{}", link.node, link.port);
}

/// Serialize one event as a single-line JSON object. Every record carries
/// `t` (cycle) and `kind` (the [`EventKind`](crate::EventKind) name);
/// link-bearing events add `node`/`port`, and the remaining fields mirror
/// the variant's payload.
pub fn event_json(event: &Event) -> String {
    let mut out = String::with_capacity(96);
    let _ = write!(
        out,
        "{{\"t\":{},\"kind\":\"{}\"",
        event.time(),
        event.kind().name()
    );
    if let Some(link) = event.link() {
        link_fields(&mut out, link);
    }
    match *event {
        Event::PacketInject {
            src, dest, packet, ..
        } => {
            let _ = write!(out, ",\"src\":{src},\"dest\":{dest},\"packet\":{packet}");
        }
        Event::FlitInject {
            node, packet, seq, ..
        }
        | Event::FlitEject {
            node, packet, seq, ..
        } => {
            let _ = write!(out, ",\"node\":{node},\"packet\":{packet},\"seq\":{seq}");
        }
        Event::PacketDelivered {
            node,
            packet,
            latency,
            ..
        } => {
            let _ = write!(
                out,
                ",\"node\":{node},\"packet\":{packet},\"latency\":{latency}"
            );
        }
        Event::VcAllocStall { in_port, in_vc, .. } => {
            let _ = write!(out, ",\"in_port\":{in_port},\"in_vc\":{in_vc}");
        }
        Event::ThresholdCrossing {
            lu, low, high, up, ..
        } => {
            let _ = write!(
                out,
                ",\"lu\":{},\"low\":{},\"high\":{},\"up\":{up}",
                num(lu),
                num(low),
                num(high)
            );
        }
        Event::CongestionFlip { congested, .. } => {
            let _ = write!(out, ",\"congested\":{congested}");
        }
        Event::DvsRequest {
            from,
            to,
            lu,
            bu,
            congested,
            ..
        } => {
            let _ = write!(
                out,
                ",\"from\":{from},\"to\":{to},\"lu\":{},\"bu\":{},\"congested\":{congested}",
                num(lu),
                num(bu)
            );
        }
        Event::DvsLock { target, until, .. } => {
            let _ = write!(out, ",\"target\":{target},\"until\":{until}");
        }
        Event::DvsComplete { level, .. } => {
            let _ = write!(out, ",\"level\":{level}");
        }
        Event::TransitionEnergy { energy_j, .. } => {
            let _ = write!(out, ",\"energy_j\":{}", num(energy_j));
        }
        Event::PacketAttribution {
            node,
            packet,
            latency,
            breakdown,
            ..
        } => {
            let _ = write!(
                out,
                ",\"node\":{node},\"packet\":{packet},\"latency\":{latency},\
                 \"source_queue\":{},\"buffer\":{},\"pipeline\":{},\
                 \"serialization\":{},\"lock\":{},\"retransmission\":{}",
                breakdown.source_queue,
                breakdown.buffer,
                breakdown.pipeline,
                breakdown.serialization,
                breakdown.lock,
                breakdown.retransmission,
            );
        }
        Event::FaultNack { .. }
        | Event::FaultResidual { .. }
        | Event::FaultFailStop { .. }
        | Event::OutageStart { .. } => {}
    }
    out.push('}');
    out
}

/// Serialize an event stream as JSONL: one [`event_json`] record per line,
/// newline-terminated.
pub fn events_jsonl<'a>(events: impl IntoIterator<Item = &'a Event>) -> String {
    let mut out = String::new();
    for e in events {
        out.push_str(&event_json(e));
        out.push('\n');
    }
    out
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn records_are_single_line_and_carry_kind() {
        let link = LinkId { node: 4, port: 3 };
        let events = vec![
            Event::DvsRequest {
                t: 600,
                link,
                from: 9,
                to: 8,
                lu: 0.72,
                bu: 0.1,
                congested: false,
            },
            Event::PacketDelivered {
                t: 700,
                node: 5,
                packet: 12,
                latency: 43,
            },
        ];
        let jsonl = events_jsonl(&events);
        let lines: Vec<&str> = jsonl.lines().collect();
        assert_eq!(lines.len(), 2);
        assert_eq!(
            lines[0],
            "{\"t\":600,\"kind\":\"dvs_request\",\"node\":4,\"port\":3,\
             \"from\":9,\"to\":8,\"lu\":0.72,\"bu\":0.1,\"congested\":false}"
        );
        assert_eq!(
            lines[1],
            "{\"t\":700,\"kind\":\"packet_delivered\",\"node\":5,\"packet\":12,\"latency\":43}"
        );
        assert!(jsonl.ends_with('\n'));
    }

    #[test]
    fn every_kind_serializes_with_balanced_braces() {
        let link = LinkId { node: 0, port: 1 };
        let all = vec![
            Event::PacketInject {
                t: 0,
                src: 1,
                dest: 2,
                packet: 3,
            },
            Event::FlitInject {
                t: 0,
                node: 1,
                packet: 3,
                seq: 0,
            },
            Event::FlitEject {
                t: 0,
                node: 2,
                packet: 3,
                seq: 0,
            },
            Event::PacketDelivered {
                t: 0,
                node: 2,
                packet: 3,
                latency: 10,
            },
            Event::VcAllocStall {
                t: 0,
                link,
                in_port: 2,
                in_vc: 1,
            },
            Event::ThresholdCrossing {
                t: 0,
                link,
                lu: 0.8,
                low: 0.3,
                high: 0.6,
                up: true,
            },
            Event::CongestionFlip {
                t: 0,
                link,
                congested: true,
            },
            Event::DvsRequest {
                t: 0,
                link,
                from: 0,
                to: 1,
                lu: 0.2,
                bu: 0.0,
                congested: false,
            },
            Event::DvsLock {
                t: 0,
                link,
                target: 1,
                until: 1000,
            },
            Event::DvsComplete {
                t: 0,
                link,
                level: 1,
            },
            Event::TransitionEnergy {
                t: 0,
                link,
                energy_j: 1.2e-9,
            },
            Event::FaultNack { t: 0, link },
            Event::FaultResidual { t: 0, link },
            Event::FaultFailStop { t: 0, link },
            Event::OutageStart { t: 0, link },
            Event::PacketAttribution {
                t: 0,
                node: 2,
                packet: 3,
                latency: 10,
                breakdown: crate::attr::LatencyBreakdown {
                    source_queue: 0,
                    buffer: 1,
                    pipeline: 9,
                    serialization: 0,
                    lock: 0,
                    retransmission: 0,
                },
            },
        ];
        assert_eq!(all.len(), crate::EventKind::COUNT);
        for e in &all {
            let json = event_json(e);
            assert!(json.starts_with('{') && json.ends_with('}'), "{json}");
            assert_eq!(json.matches('{').count(), json.matches('}').count());
            assert!(!json.contains('\n'));
            assert!(json.contains(&format!("\"kind\":\"{}\"", e.kind().name())));
        }
    }
}
