use std::collections::VecDeque;

use crate::event::{Event, EventKind, EventMask};

/// Sink for simulator trace events.
///
/// The simulator (`netsim::Network<T: Tracer>`) is generic over its tracer
/// and monomorphizes the hot path per implementation. Implementations with
/// `ENABLED = false` (the default [`NoopTracer`]) let every call site guard
/// event construction behind `if T::ENABLED`, so the untraced build carries
/// zero cost — no branches, no argument materialization.
pub trait Tracer {
    /// Whether call sites should construct and record events at all.
    /// Hot-path emission is guarded by this associated constant, so a
    /// `false` tracer compiles the instrumentation out entirely.
    const ENABLED: bool = true;

    /// Record one event. Called only when [`Self::ENABLED`] is `true`
    /// (guarded at the call site), but implementations must tolerate being
    /// called anyway.
    fn record(&mut self, event: Event);
}

/// The default tracer: records nothing, costs nothing.
#[derive(Debug, Default, Clone, Copy, PartialEq, Eq)]
pub struct NoopTracer;

impl Tracer for NoopTracer {
    const ENABLED: bool = false;

    #[inline(always)]
    fn record(&mut self, _event: Event) {}
}

/// In-memory event collector with a kind filter and a bounded ring buffer.
///
/// Per-kind counters accumulate for *every* recorded event, including kinds
/// excluded by the mask — so a masked log still answers "how many stalls
/// happened?" cheaply. Only events whose kind is in the mask are stored;
/// once `capacity` stored events are held, the oldest is dropped (and
/// [`dropped`](EventLog::dropped) incremented) to admit the newest.
#[derive(Debug, Clone)]
pub struct EventLog {
    mask: EventMask,
    capacity: usize,
    events: VecDeque<Event>,
    dropped: u64,
    dropped_by_kind: [u64; EventKind::COUNT],
    counts: [u64; EventKind::COUNT],
}

impl EventLog {
    /// A log that stores every event with no capacity bound. Only suitable
    /// for short runs or narrow masks; prefer [`EventLog::with_capacity`].
    pub fn unbounded() -> EventLog {
        EventLog {
            mask: EventMask::ALL,
            capacity: usize::MAX,
            events: VecDeque::new(),
            dropped: 0,
            dropped_by_kind: [0; EventKind::COUNT],
            counts: [0; EventKind::COUNT],
        }
    }

    /// A log that keeps at most the `capacity` most recent events.
    pub fn with_capacity(capacity: usize) -> EventLog {
        EventLog {
            capacity,
            ..EventLog::unbounded()
        }
    }

    /// Restrict storage to kinds in `mask` (counters still cover all
    /// kinds). Builder-style: `EventLog::with_capacity(50_000).with_mask(m)`.
    pub fn with_mask(mut self, mask: EventMask) -> EventLog {
        self.mask = mask;
        self
    }

    /// The stored events, oldest first.
    pub fn events(&self) -> impl Iterator<Item = &Event> {
        self.events.iter()
    }

    /// Number of events currently stored.
    pub fn len(&self) -> usize {
        self.events.len()
    }

    /// Whether no events are stored.
    pub fn is_empty(&self) -> bool {
        self.events.is_empty()
    }

    /// How many stored events were evicted by the capacity bound.
    pub fn dropped(&self) -> u64 {
        self.dropped
    }

    /// How many stored events of `kind` were evicted by the capacity bound.
    pub fn dropped_count(&self, kind: EventKind) -> u64 {
        self.dropped_by_kind[kind as usize]
    }

    /// Total events of `kind` recorded, independent of mask and eviction.
    pub fn count(&self, kind: EventKind) -> u64 {
        self.counts[kind as usize]
    }

    /// Total events recorded across all kinds.
    pub fn total(&self) -> u64 {
        self.counts.iter().sum()
    }
}

impl Tracer for EventLog {
    fn record(&mut self, event: Event) {
        let kind = event.kind();
        self.counts[kind as usize] += 1;
        if !self.mask.contains(kind) {
            return;
        }
        if self.events.len() >= self.capacity {
            if let Some(evicted) = self.events.pop_front() {
                self.dropped_by_kind[evicted.kind() as usize] += 1;
            }
            self.dropped += 1;
        }
        if self.capacity > 0 {
            self.events.push_back(event);
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::event::LinkId;

    fn stall(t: u64) -> Event {
        Event::VcAllocStall {
            t,
            link: LinkId { node: 0, port: 0 },
            in_port: 1,
            in_vc: 0,
        }
    }

    #[test]
    fn ring_evicts_oldest_and_counts_drops() {
        let mut log = EventLog::with_capacity(3);
        for t in 0..5 {
            log.record(stall(t));
        }
        assert_eq!(log.len(), 3);
        assert_eq!(log.dropped(), 2);
        assert_eq!(log.dropped_count(EventKind::VcAllocStall), 2);
        assert_eq!(log.dropped_count(EventKind::DvsComplete), 0);
        let times: Vec<u64> = log.events().map(|e| e.time()).collect();
        assert_eq!(times, vec![2, 3, 4]);
        assert_eq!(log.count(EventKind::VcAllocStall), 5);
        assert_eq!(log.total(), 5);
    }

    #[test]
    fn mask_filters_storage_but_not_counts() {
        let mut log = EventLog::unbounded().with_mask(EventMask::DVS);
        log.record(stall(1));
        log.record(Event::DvsComplete {
            t: 2,
            link: LinkId { node: 1, port: 2 },
            level: 4,
        });
        assert_eq!(log.len(), 1);
        assert_eq!(log.count(EventKind::VcAllocStall), 1);
        assert_eq!(log.count(EventKind::DvsComplete), 1);
    }

    #[test]
    fn noop_tracer_is_disabled() {
        const { assert!(!NoopTracer::ENABLED) };
        assert!(EventLog::unbounded().is_empty());
    }
}
