//! Observability layer for the link-DVS simulator.
//!
//! The paper's evidence is temporal — per-link frequency tracking
//! utilization cycle by cycle (Figs. 9–11) — so this crate provides the
//! substrate for seeing *when* things happen rather than only per-run
//! aggregates:
//!
//! - [`Event`]: typed trace events emitted at the source (flit movement,
//!   VC-allocation stalls, DVS transition requests/locks/completions with
//!   the measures that triggered them, threshold crossings, transition
//!   energy charges, fault and retransmission outcomes).
//! - [`Tracer`]: the sink trait the simulator is generic over. The default
//!   [`NoopTracer`] has `ENABLED = false`, so every `record` call — and the
//!   argument construction feeding it — compiles out of the hot path
//!   entirely; [`EventLog`] is the in-memory collector with a ring-buffer
//!   capacity bound and an [`EventMask`] kind filter.
//! - [`Timeline`]: fixed-stride per-link sample tracks (filled by
//!   `netsim::TimelineCollector`, which generalizes `ChannelProbe` from one
//!   channel to the whole network) in bounded ring buffers.
//! - Attribution: [`LatencyBreakdown`] decomposes one delivered packet's
//!   latency into additive components that sum bit-exactly to the measured
//!   value, [`BreakdownTotals`] aggregates them across a run, and
//!   [`DvsAudit`] joins the per-link [`EnergyLedger`] with the traced
//!   policy decision stream into JSONL/CSV audit reports.
//! - Exporters: Chrome `trace_event` JSON loadable in Perfetto or
//!   `chrome://tracing` ([`perfetto_trace`]), CSV timelines matching the
//!   figure-artifact conventions ([`timeline_csv`], [`track_csv`]), and
//!   JSONL event streams ([`events_jsonl`]).
//!
//! This crate deliberately knows nothing about the simulator: it holds the
//! data model and serializers only, so `netsim` (and anything above it) can
//! depend on it without cycles.

#![forbid(unsafe_code)]
#![warn(missing_docs)]

mod attr;
mod audit;
mod csv;
mod event;
mod jsonl;
mod perfetto;
mod timeline;
mod tracer;

pub use attr::{BreakdownTotals, LatencyBreakdown};
pub use audit::{DvsAudit, LinkAudit, AUDIT_CSV_HEADER};
pub use csv::{timeline_csv, track_csv, TIMELINE_CSV_HEADER, TRACK_CSV_HEADER};
pub use dvslink::{Cycles, EnergyLedger};
pub use event::{Event, EventKind, EventMask, LinkId};
pub use jsonl::{event_json, events_jsonl};
pub use perfetto::perfetto_trace;
pub use timeline::{LinkTimeline, Timeline, TimelineSample};
pub use tracer::{EventLog, NoopTracer, Tracer};
