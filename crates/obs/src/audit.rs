//! DVS audit reports: join the per-link energy ledger with the policy's
//! observable decision stream (threshold crossings, transition requests,
//! frequency locks) and the router's stall attribution, to answer *which
//! threshold crossings cost how much latency and saved how much power*.
//!
//! A [`DvsAudit`] is built in three steps: register every link with its
//! measured-interval [`EnergyLedger`] and stall-cycle counters, fold the
//! captured [`Event`] stream over it with
//! [`apply_events`](DvsAudit::apply_events), then emit JSONL
//! ([`to_jsonl`](DvsAudit::to_jsonl)), CSV ([`to_csv`](DvsAudit::to_csv)),
//! or a human-readable summary ([`summary`](DvsAudit::summary)).

use std::collections::BTreeMap;
use std::fmt::Write as _;

use dvslink::EnergyLedger;

use crate::event::{Event, LinkId};
use crate::Cycles;

/// Header line of [`DvsAudit::to_csv`].
pub const AUDIT_CSV_HEADER: &str = "node,port,crossings_up,crossings_down,requests_up,\
     requests_down,lock_windows,lock_window_cycles,lock_stall_cycles,fault_stall_cycles,\
     active_j,idle_j,transition_j,retransmission_j,total_j,full_speed_j,savings_factor";

/// One channel's row in a [`DvsAudit`]: the policy decisions it made, the
/// latency those decisions cost (flit-cycles stalled behind the disabled
/// link), and the energy they saved (ledger total vs. the full-speed
/// baseline over the same interval).
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct LinkAudit {
    /// The channel.
    pub link: LinkId,
    /// Threshold crossings above the high threshold (speed-up pressure).
    pub crossings_up: u64,
    /// Threshold crossings below the low threshold (slow-down opportunity).
    pub crossings_down: u64,
    /// Step-up transitions the policy initiated.
    pub requests_up: u64,
    /// Step-down transitions the policy initiated.
    pub requests_down: u64,
    /// Frequency-lock windows entered (each disables the links).
    pub lock_windows: u64,
    /// Total cycles the links spent disabled in frequency locks.
    pub lock_window_cycles: Cycles,
    /// Flit-cycles actually stalled behind a lock-disabled link (a lock on
    /// an idle link costs nothing; this counts the realized latency cost).
    pub lock_stall_cycles: Cycles,
    /// Flit-cycles stalled behind fault outages, NACK backoff, or a dead
    /// link.
    pub fault_stall_cycles: Cycles,
    /// Energy spent over the measured interval, split by cause.
    pub ledger: EnergyLedger,
    /// Energy the channel would have burned at full speed over the same
    /// interval (the no-DVS baseline).
    pub full_speed_j: f64,
}

impl LinkAudit {
    /// A zeroed row for `link`.
    pub fn new(link: LinkId) -> LinkAudit {
        LinkAudit {
            link,
            crossings_up: 0,
            crossings_down: 0,
            requests_up: 0,
            requests_down: 0,
            lock_windows: 0,
            lock_window_cycles: 0,
            lock_stall_cycles: 0,
            fault_stall_cycles: 0,
            ledger: EnergyLedger::default(),
            full_speed_j: 0.0,
        }
    }

    /// Power-savings factor vs. the full-speed baseline (>1 means DVS
    /// saved energy). Zero when no energy was spent.
    pub fn savings_factor(&self) -> f64 {
        let spent = self.ledger.total_j();
        if spent > 0.0 {
            self.full_speed_j / spent
        } else {
            0.0
        }
    }
}

/// A network-wide DVS audit: one [`LinkAudit`] row per channel, joined from
/// the energy ledgers, the router stall attribution, and the traced policy
/// decision stream.
#[derive(Debug, Clone, Default)]
pub struct DvsAudit {
    links: BTreeMap<(usize, usize), LinkAudit>,
}

impl DvsAudit {
    /// An audit with no links registered yet.
    pub fn new() -> DvsAudit {
        DvsAudit::default()
    }

    /// The row for `link`, created zeroed on first access.
    pub fn link_mut(&mut self, link: LinkId) -> &mut LinkAudit {
        self.links
            .entry((link.node, link.port))
            .or_insert_with(|| LinkAudit::new(link))
    }

    /// All rows, ordered by (node, port).
    pub fn links(&self) -> impl Iterator<Item = &LinkAudit> {
        self.links.values()
    }

    /// Number of registered links.
    pub fn len(&self) -> usize {
        self.links.len()
    }

    /// Whether no links are registered.
    pub fn is_empty(&self) -> bool {
        self.links.is_empty()
    }

    /// Fold a captured event stream into the per-link decision counters.
    /// Only DVS decision events matter; everything else is ignored, so the
    /// stream may carry any mask.
    pub fn apply_events<'a>(&mut self, events: impl IntoIterator<Item = &'a Event>) {
        for e in events {
            match *e {
                Event::ThresholdCrossing { link, up, .. } => {
                    let row = self.link_mut(link);
                    if up {
                        row.crossings_up += 1;
                    } else {
                        row.crossings_down += 1;
                    }
                }
                Event::DvsRequest { link, from, to, .. } => {
                    let row = self.link_mut(link);
                    if to > from {
                        row.requests_up += 1;
                    } else {
                        row.requests_down += 1;
                    }
                }
                Event::DvsLock { link, t, until, .. } => {
                    let row = self.link_mut(link);
                    row.lock_windows += 1;
                    row.lock_window_cycles += until.saturating_sub(t);
                }
                _ => {}
            }
        }
    }

    /// Aggregate totals across every link, as a single [`LinkAudit`] row
    /// (its `link` field is `n0.p0` and meaningless).
    pub fn totals(&self) -> LinkAudit {
        let mut t = LinkAudit::new(LinkId { node: 0, port: 0 });
        for row in self.links.values() {
            t.crossings_up += row.crossings_up;
            t.crossings_down += row.crossings_down;
            t.requests_up += row.requests_up;
            t.requests_down += row.requests_down;
            t.lock_windows += row.lock_windows;
            t.lock_window_cycles += row.lock_window_cycles;
            t.lock_stall_cycles += row.lock_stall_cycles;
            t.fault_stall_cycles += row.fault_stall_cycles;
            t.ledger.active_j += row.ledger.active_j;
            t.ledger.idle_j += row.ledger.idle_j;
            t.ledger.transition_j += row.ledger.transition_j;
            t.ledger.retransmission_j += row.ledger.retransmission_j;
            t.full_speed_j += row.full_speed_j;
        }
        t
    }

    /// One JSON object per link, one line each.
    pub fn to_jsonl(&self) -> String {
        let mut out = String::new();
        for row in self.links.values() {
            let _ = writeln!(
                out,
                "{{\"node\":{},\"port\":{},\"crossings_up\":{},\"crossings_down\":{},\
                 \"requests_up\":{},\"requests_down\":{},\"lock_windows\":{},\
                 \"lock_window_cycles\":{},\"lock_stall_cycles\":{},\
                 \"fault_stall_cycles\":{},\"active_j\":{:e},\"idle_j\":{:e},\
                 \"transition_j\":{:e},\"retransmission_j\":{:e},\"total_j\":{:e},\
                 \"full_speed_j\":{:e},\"savings_factor\":{}}}",
                row.link.node,
                row.link.port,
                row.crossings_up,
                row.crossings_down,
                row.requests_up,
                row.requests_down,
                row.lock_windows,
                row.lock_window_cycles,
                row.lock_stall_cycles,
                row.fault_stall_cycles,
                row.ledger.active_j,
                row.ledger.idle_j,
                row.ledger.transition_j,
                row.ledger.retransmission_j,
                row.ledger.total_j(),
                row.full_speed_j,
                fmt_f64(row.savings_factor()),
            );
        }
        out
    }

    /// CSV with [`AUDIT_CSV_HEADER`], one row per link.
    pub fn to_csv(&self) -> String {
        let mut out = String::from(AUDIT_CSV_HEADER);
        out.push('\n');
        for row in self.links.values() {
            let _ = writeln!(
                out,
                "{},{},{},{},{},{},{},{},{},{},{:e},{:e},{:e},{:e},{:e},{:e},{}",
                row.link.node,
                row.link.port,
                row.crossings_up,
                row.crossings_down,
                row.requests_up,
                row.requests_down,
                row.lock_windows,
                row.lock_window_cycles,
                row.lock_stall_cycles,
                row.fault_stall_cycles,
                row.ledger.active_j,
                row.ledger.idle_j,
                row.ledger.transition_j,
                row.ledger.retransmission_j,
                row.ledger.total_j(),
                row.full_speed_j,
                fmt_f64(row.savings_factor()),
            );
        }
        out
    }

    /// Human-readable summary: network totals, the energy split, and the
    /// links whose DVS decisions cost the most realized latency.
    pub fn summary(&self) -> String {
        let t = self.totals();
        let total = t.ledger.total_j();
        let mut out = String::new();
        let _ = writeln!(
            out,
            "{} links audited: {} crossings ({} up / {} down), \
             {} transitions requested ({} up / {} down)",
            self.links.len(),
            t.crossings_up + t.crossings_down,
            t.crossings_up,
            t.crossings_down,
            t.requests_up + t.requests_down,
            t.requests_up,
            t.requests_down,
        );
        let _ = writeln!(
            out,
            "latency cost: {} lock windows disabled links for {} cycles, \
             stalling flits for {} cycles (+{} cycles of fault stalls)",
            t.lock_windows, t.lock_window_cycles, t.lock_stall_cycles, t.fault_stall_cycles,
        );
        let pct = |x: f64| if total > 0.0 { 100.0 * x / total } else { 0.0 };
        let _ = writeln!(
            out,
            "energy: {:.3} µJ total = {:.3} µJ active ({:.1}%) + {:.3} µJ idle ({:.1}%) \
             + {:.3} µJ transition ({:.1}%) + {:.3} µJ retransmission ({:.1}%)",
            total * 1e6,
            t.ledger.active_j * 1e6,
            pct(t.ledger.active_j),
            t.ledger.idle_j * 1e6,
            pct(t.ledger.idle_j),
            t.ledger.transition_j * 1e6,
            pct(t.ledger.transition_j),
            t.ledger.retransmission_j * 1e6,
            pct(t.ledger.retransmission_j),
        );
        let _ = writeln!(
            out,
            "power savings vs full speed: {:.2}x ({:.3} µJ would have been {:.3} µJ)",
            if total > 0.0 {
                t.full_speed_j / total
            } else {
                0.0
            },
            total * 1e6,
            t.full_speed_j * 1e6,
        );
        let mut worst: Vec<&LinkAudit> = self.links.values().collect();
        worst.sort_by_key(|r| std::cmp::Reverse(r.lock_stall_cycles));
        for row in worst.iter().take(3).filter(|r| r.lock_stall_cycles > 0) {
            let _ = writeln!(
                out,
                "  costliest: {} stalled {} flit-cycles across {} locks for a {:.2}x saving",
                row.link,
                row.lock_stall_cycles,
                row.lock_windows,
                row.savings_factor(),
            );
        }
        out
    }
}

fn fmt_f64(x: f64) -> String {
    if x.is_finite() {
        format!("{x:.4}")
    } else {
        "0".to_string()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn sample_audit() -> DvsAudit {
        let mut audit = DvsAudit::new();
        let a = LinkId { node: 1, port: 2 };
        let b = LinkId { node: 3, port: 0 };
        {
            let row = audit.link_mut(a);
            row.lock_stall_cycles = 120;
            row.fault_stall_cycles = 4;
            row.ledger = EnergyLedger {
                active_j: 1e-6,
                idle_j: 3e-6,
                transition_j: 5e-7,
                retransmission_j: 1e-9,
            };
            row.full_speed_j = 2e-5;
        }
        audit.link_mut(b).full_speed_j = 1e-5;
        audit.apply_events(&[
            Event::ThresholdCrossing {
                t: 10,
                link: a,
                lu: 0.8,
                low: 0.3,
                high: 0.6,
                up: true,
            },
            Event::ThresholdCrossing {
                t: 20,
                link: a,
                lu: 0.1,
                low: 0.3,
                high: 0.6,
                up: false,
            },
            Event::DvsRequest {
                t: 20,
                link: a,
                from: 9,
                to: 8,
                lu: 0.1,
                bu: 0.0,
                congested: false,
            },
            Event::DvsLock {
                t: 21,
                link: a,
                target: 8,
                until: 132,
            },
            Event::DvsRequest {
                t: 40,
                link: b,
                from: 5,
                to: 6,
                lu: 0.9,
                bu: 0.4,
                congested: true,
            },
            // Non-DVS events are ignored.
            Event::FaultNack { t: 50, link: b },
        ]);
        audit
    }

    #[test]
    fn events_fold_into_per_link_counters() {
        let audit = sample_audit();
        assert_eq!(audit.len(), 2);
        let rows: Vec<&LinkAudit> = audit.links().collect();
        let a = rows[0];
        assert_eq!(a.link, LinkId { node: 1, port: 2 });
        assert_eq!((a.crossings_up, a.crossings_down), (1, 1));
        assert_eq!((a.requests_up, a.requests_down), (0, 1));
        assert_eq!(a.lock_windows, 1);
        assert_eq!(a.lock_window_cycles, 111);
        let b = rows[1];
        assert_eq!((b.requests_up, b.requests_down), (1, 0));
        let t = audit.totals();
        assert_eq!(t.requests_up + t.requests_down, 2);
        assert_eq!(t.lock_stall_cycles, 120);
        assert!((t.full_speed_j - 3e-5).abs() < 1e-18);
    }

    #[test]
    fn savings_factor_compares_against_full_speed() {
        let audit = sample_audit();
        let row = audit.links().next().unwrap();
        let expect = 2e-5 / row.ledger.total_j();
        assert!((row.savings_factor() - expect).abs() < 1e-9);
        // No energy spent -> no defined saving.
        assert_eq!(
            LinkAudit::new(LinkId { node: 0, port: 0 }).savings_factor(),
            0.0
        );
    }

    #[test]
    fn exports_are_well_formed() {
        let audit = sample_audit();
        let csv = audit.to_csv();
        let mut lines = csv.lines();
        assert_eq!(lines.next(), Some(AUDIT_CSV_HEADER));
        let cols = AUDIT_CSV_HEADER.split(',').count();
        for line in lines {
            assert_eq!(line.split(',').count(), cols, "{line}");
        }
        let jsonl = audit.to_jsonl();
        assert_eq!(jsonl.lines().count(), 2);
        for line in jsonl.lines() {
            assert!(line.starts_with('{') && line.ends_with('}'), "{line}");
            assert_eq!(line.matches('{').count(), line.matches('}').count());
            assert!(line.contains("\"savings_factor\""));
        }
        let summary = audit.summary();
        assert!(summary.contains("2 links audited"));
        assert!(summary.contains("power savings"));
        assert!(summary.contains("costliest: n1.p2"));
    }
}
