//! Fig. 17 (a–d) — network performance with DVS links of varying
//! *frequency* transition rates: lock 100/50/10 link cycles, crossed with
//! voltage ramp 10 µs vs 1 µs and mean task duration 1 ms vs 10 µs.
//!
//! Expected shapes (paper §4.4.3): with 1 ms tasks the lock time is pure
//! latency overhead; with 10 µs tasks, slow transitions cannot track the
//! traffic and throughput degrades.

use dvslink::TransitionTiming;
use linkdvs::{PolicyKind, WorkloadKind};
use linkdvs_bench::{
    coarse_rates, format_results_table, results_csv, run_labeled_sweeps, FigureOpts,
};
use trafficgen::TaskModelConfig;

const LOCKS: [u32; 3] = [100, 50, 10];

fn main() {
    let opts = FigureOpts::from_env_or_exit();
    let rates = coarse_rates();
    let panels = [
        ("(a) task 1ms, ramp 10us", 1_000_000u64, 10_000u64),
        ("(b) task 10us, ramp 10us", 10_000, 10_000),
        ("(c) task 1ms, ramp 1us", 1_000_000, 1_000),
        ("(d) task 10us, ramp 1us", 10_000, 1_000),
    ];
    // As in Fig. 16: every panel x lock series goes into one plan so the
    // whole figure shares the worker pool.
    let mut series = Vec::new();
    for (panel, duration, ramp) in panels {
        for lock in LOCKS {
            let mut cfg = opts.apply(
                linkdvs::ExperimentConfig::paper_baseline()
                    .with_policy(PolicyKind::HistoryDvs(Default::default()))
                    .with_workload(WorkloadKind::TwoLevel(
                        TaskModelConfig::paper_100_tasks().with_mean_duration(duration),
                    )),
            );
            cfg.network.timing = TransitionTiming::new(ramp, lock);
            series.push((format!("{panel} lock {lock}"), cfg));
        }
    }
    let all = run_labeled_sweeps(&opts, "fig17_frequency_transition", series, &rates);
    for (chunk, (panel, _, _)) in all.chunks(LOCKS.len()).zip(panels) {
        print!(
            "{}",
            format_results_table(
                &format!("Fig 17{panel}: frequency-transition sensitivity"),
                chunk
            )
        );
    }
    opts.write_artifact("fig17_frequency_transition.csv", &results_csv(&all));
}
