//! Fig. 4 — input-buffer-utilization histograms of the buffers downstream
//! of the tracked link, at rising loads (non-DVS network).
//!
//! Expected shape: near-zero at light load, slightly higher at medium load,
//! and a sharp rise toward 1.0 only when the network congests — an
//! indicator function of congestion, far less sensitive than link
//! utilization (compare Fig. 3's spread).

use linkdvs_bench::{
    drive_workload, format_histogram, sample_busiest_channel, unit_histogram, FigureOpts,
};
use netsim::{Network, NetworkConfig};
use trafficgen::{TaskModelConfig, TaskWorkload};

fn main() {
    let opts = FigureOpts::from_env_or_exit();
    let loads = [(0.3, "(a) low"), (2.0, "(b) high"), (3.2, "(c) congested")];
    let mut csv = String::from("panel,offered_rate,bu_bin,count\n");
    for (rate, label) in loads {
        let cfg = NetworkConfig::paper_8x8();
        let topo = cfg.topology.clone();
        let mut net = Network::new(cfg).expect("paper config is valid");
        let mut wl = TaskWorkload::new(TaskModelConfig::paper_100_tasks(), &topo, rate, opts.seed);
        drive_workload(&mut net, &mut wl, opts.cycles(100_000));
        // Track the channel whose downstream buffers see the most
        // occupancy: congestion is spatially concentrated, so a fixed port
        // would miss it.
        let samples = sample_busiest_channel(
            &mut net,
            &mut wl,
            50,
            opts.cycles(400_000) / 50,
            |s| Some(s.buffer_utilization),
            |s| s.cum_occ_sum,
        );
        let hist = unit_histogram(&samples, 20);
        print!(
            "{}",
            format_histogram(
                &format!("Fig 4{label}: input-buffer utilization at {rate} pkt/cycle"),
                &hist
            )
        );
        for (lo, c) in &hist {
            csv.push_str(&format!("{label},{rate},{lo},{c}\n"));
        }
    }
    opts.write_artifact("fig04_buffer_utilization.csv", &csv);
}
