//! Fig. 4 — input-buffer-utilization histograms of the buffers downstream
//! of the tracked link, at rising loads (non-DVS network).
//!
//! Expected shape: near-zero at light load, slightly higher at medium load,
//! and a sharp rise toward 1.0 only when the network congests — an
//! indicator function of congestion, far less sensitive than link
//! utilization (compare Fig. 3's spread).

use linkdvs_bench::{busiest_output, format_histogram, unit_histogram, FigureOpts};
use netsim::{ChannelProbe, Network, NetworkConfig};
use trafficgen::{TaskModelConfig, TaskWorkload, Workload};

fn main() {
    let opts = FigureOpts::from_env_or_exit();
    let loads = [(0.3, "(a) low"), (2.0, "(b) high"), (3.2, "(c) congested")];
    let mut csv = String::from("panel,offered_rate,bu_bin,count\n");
    for (rate, label) in loads {
        let cfg = NetworkConfig::paper_8x8();
        let topo = cfg.topology.clone();
        let mut net = Network::new(cfg).expect("paper config is valid");
        let mut wl = TaskWorkload::new(TaskModelConfig::paper_100_tasks(), &topo, rate, opts.seed);
        let mut pend = Vec::new();
        for t in 0..opts.cycles(100_000) {
            wl.poll(t, &mut |s, d| pend.push((s, d)));
            for (s, d) in pend.drain(..) {
                net.inject(s, d);
            }
            net.step();
        }
        // Probe the channel whose downstream buffers saw the most
        // occupancy: congestion is spatially concentrated, so a fixed port
        // would miss it.
        let (node, port) = busiest_output(&net, |s| s.cum_occ_sum);
        let mut probe = ChannelProbe::new(&net, node, port).expect("busiest port exists");
        probe.sample(&net);
        let mut samples = Vec::new();
        for _ in 0..opts.cycles(400_000) / 50 {
            for _ in 0..50 {
                let now = net.time();
                wl.poll(now, &mut |s, d| pend.push((s, d)));
                for (s, d) in pend.drain(..) {
                    net.inject(s, d);
                }
                net.step();
            }
            samples.push(probe.sample(&net).buffer_utilization);
        }
        let hist = unit_histogram(&samples, 20);
        print!(
            "{}",
            format_histogram(
                &format!("Fig 4{label}: input-buffer utilization at {rate} pkt/cycle"),
                &hist
            )
        );
        for (lo, c) in &hist {
            csv.push_str(&format!("{label},{rate},{lo},{c}\n"));
        }
    }
    opts.write_artifact("fig04_buffer_utilization.csv", &csv);
}
