//! Run every figure/table regeneration binary in sequence, forwarding the
//! common options. `repro_all --quick --out results` smoke-runs the whole
//! evaluation in minutes; without `--quick` it reproduces the full curves.

use std::process::Command;

const BINS: &[&str] = &[
    "fig03_link_utilization",
    "fig04_buffer_utilization",
    "fig05_buffer_age",
    "fig07_router_power",
    "table1_parameters",
    "fig08_spatial_variance",
    "fig09_temporal_variance",
    "fig10_dvs_100tasks",
    "fig11_dvs_50tasks",
    "fig12_congestion_power",
    "fig13_threshold_latency",
    "fig14_threshold_power",
    "fig15_pareto",
    "fig16_voltage_transition",
    "fig17_frequency_transition",
    "ablation_policies",
    "ablation_parameters",
];

fn main() {
    let args: Vec<String> = std::env::args().skip(1).collect();
    let exe_dir = std::env::current_exe()
        .expect("current executable path")
        .parent()
        .expect("executable has a parent directory")
        .to_path_buf();
    let mut failures = Vec::new();
    for bin in BINS {
        println!("\n################ {bin} ################");
        let status = Command::new(exe_dir.join(bin))
            .args(&args)
            .status()
            .unwrap_or_else(|e| panic!("failed to launch {bin}: {e}"));
        if !status.success() {
            failures.push(*bin);
        }
    }
    if failures.is_empty() {
        println!("\nall {} figure/table targets regenerated", BINS.len());
    } else {
        eprintln!("\nFAILED: {failures:?}");
        std::process::exit(1);
    }
}
