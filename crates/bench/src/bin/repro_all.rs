//! Run every figure/table regeneration binary in sequence, forwarding the
//! common options. `repro_all --quick --out results` smoke-runs the whole
//! evaluation in minutes; without `--quick` it reproduces the full curves.
//! Pass `--jobs N` to parallelize the sweeps inside each figure binary, and
//! `--progress` for per-point progress lines.
//!
//! Writes `repro_all_telemetry.jsonl` (one record per binary with its
//! wall-clock and exit status) next to the CSV artifacts when `--out` is
//! given.

use linkdvs_bench::FigureOpts;
use std::process::Command;
use std::time::Instant;

const BINS: &[&str] = &[
    "fig03_link_utilization",
    "fig04_buffer_utilization",
    "fig05_buffer_age",
    "fig07_router_power",
    "table1_parameters",
    "fig08_spatial_variance",
    "fig09_temporal_variance",
    "fig10_dvs_100tasks",
    "fig11_dvs_50tasks",
    "fig12_congestion_power",
    "fig13_threshold_latency",
    "fig14_threshold_power",
    "fig15_pareto",
    "fig16_voltage_transition",
    "fig17_frequency_transition",
    "ablation_policies",
    "ablation_parameters",
    "reliability_pareto",
    "timeline",
    "attribution",
];

fn main() {
    // Validate the forwarded flags up front so a typo fails fast here
    // instead of once per child.
    let opts = FigureOpts::from_env_or_exit();
    let args: Vec<String> = std::env::args().skip(1).collect();
    let exe_dir = std::env::current_exe()
        .expect("current executable path")
        .parent()
        .expect("executable has a parent directory")
        .to_path_buf();
    let total = Instant::now();
    let mut failures = Vec::new();
    let mut telemetry = String::new();
    for bin in BINS {
        println!("\n################ {bin} ################");
        let start = Instant::now();
        let status = Command::new(exe_dir.join(bin))
            .args(&args)
            .status()
            .unwrap_or_else(|e| panic!("failed to launch {bin}: {e}"));
        let wall_s = start.elapsed().as_secs_f64();
        println!("---- {bin}: {wall_s:.2}s ----");
        telemetry.push_str(&format!(
            "{{\"bin\":\"{bin}\",\"wall_s\":{wall_s:.6},\"ok\":{}}}\n",
            status.success()
        ));
        if !status.success() {
            failures.push(*bin);
        }
    }
    opts.write_artifact("repro_all_telemetry.jsonl", &telemetry);
    if failures.is_empty() {
        println!(
            "\nall {} figure/table targets regenerated in {:.1}s",
            BINS.len(),
            total.elapsed().as_secs_f64()
        );
    } else {
        eprintln!("\nFAILED: {failures:?}");
        std::process::exit(1);
    }
}
