//! Fig. 10 — network latency/throughput (a) and normalized power (b) with
//! and without history-based DVS, 100-task workload.
//!
//! Expected shape: the DVS latency curve sits above the non-DVS curve and
//! saturates earlier; DVS power is a small fraction of the non-DVS budget
//! at light load (the paper reports up to 6.3X savings, 4.6X average) and
//! climbs back toward 1.0 as load pushes links to their top levels.

use linkdvs::{PolicyKind, SweepSummary, WorkloadKind};
use linkdvs_bench::{
    format_results_table, results_csv, run_labeled_sweeps, sweep_rates, FigureOpts,
};

fn main() {
    let opts = FigureOpts::from_env_or_exit();
    let rates = sweep_rates();
    let base = opts.apply(
        linkdvs::ExperimentConfig::paper_baseline()
            .with_workload(WorkloadKind::paper_two_level_100()),
    );
    let results = run_labeled_sweeps(
        &opts,
        "fig10_dvs_100tasks",
        vec![
            (
                "without DVS".to_string(),
                base.clone().with_policy(PolicyKind::NoDvs),
            ),
            (
                "history-based DVS".to_string(),
                base.with_policy(PolicyKind::HistoryDvs(Default::default())),
            ),
        ],
        &rates,
    );
    print!(
        "{}",
        format_results_table("Fig 10: DVS vs non-DVS, 100 tasks", &results)
    );
    for (label, rs) in &results {
        if let Some(s) = SweepSummary::from_results(rs) {
            println!(
                "{label}: zero-load latency {:.0}, saturation {:?}, avg savings {:.2}x, max savings {:.2}x",
                s.zero_load_latency, s.saturation_rate, s.avg_power_savings, s.max_power_savings
            );
        }
    }
    opts.write_artifact("fig10_dvs_100tasks.csv", &results_csv(&results));
}
