//! Fig. 14 (with Table 2) — power-consumption profile under threshold
//! settings I–VI.
//!
//! Expected shape: the mirror image of Fig. 13 — more aggressive settings
//! save more power at every load; together the two figures demonstrate the
//! latency/power trade-off knob.

use dvspolicy::HistoryDvsConfig;
use linkdvs::{PolicyKind, WorkloadKind};
use linkdvs_bench::{
    coarse_rates, format_results_table, results_csv, run_labeled_sweeps, FigureOpts,
};

fn main() {
    let opts = FigureOpts::from_env_or_exit();
    let rates = coarse_rates();
    let base = opts.apply(
        linkdvs::ExperimentConfig::paper_baseline()
            .with_workload(WorkloadKind::paper_two_level_100()),
    );
    let series = (1..=6)
        .map(|setting| {
            (
                format!("setting {setting} (Table 2)"),
                base.clone()
                    .with_policy(PolicyKind::HistoryDvs(HistoryDvsConfig::paper_table2(
                        setting,
                    ))),
            )
        })
        .collect();
    let results = run_labeled_sweeps(&opts, "fig14_threshold_power", series, &rates);
    print!(
        "{}",
        format_results_table("Fig 14: power under threshold settings I-VI", &results)
    );
    println!("\nmean power savings by setting (should generally increase I -> VI):");
    for (label, rs) in &results {
        let s: f64 = rs.iter().map(|r| r.power_savings).sum::<f64>() / rs.len() as f64;
        println!("  {label}: {s:.2}x");
    }
    opts.write_artifact("fig14_threshold_power.csv", &results_csv(&results));
}
