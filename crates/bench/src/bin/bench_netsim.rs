//! Scheduler throughput benchmark: full-scan vs. active-set
//! sim-cycles/sec on the three workloads in
//! [`linkdvs_bench::scheduler_scenarios`], emitted as `BENCH_netsim.json`.
//!
//! Each scenario runs under both [`SchedulerMode`]s (best of three to damp
//! scheduler noise) and must deliver identical packet counts and energy
//! bits — the bench doubles as a coarse equivalence check. With `--check`
//! the run becomes a regression gate:
//!
//! * hard floors: `near_idle_8x8` speedup >= 2.0x and `loaded_8x8`
//!   active-set throughput >= 0.85x of full-scan (the active set may not
//!   cost a loaded network more than 15%);
//! * against `--baseline <file>` (the committed `BENCH_netsim.json`):
//!   fail if any scenario's speedup fell more than 15% below the recorded
//!   value. Absolute cycles/sec are machine-dependent and only warned on.
//!
//! Usage: `bench_netsim [--quick] [--check] [--baseline <file>]
//! [--out <file>]`

use std::fs;
use std::process::ExitCode;

use linkdvs_bench::scheduler_scenarios::{RunOutcome, Scenario};
use netsim::SchedulerMode;

#[derive(Debug, Clone)]
struct ScenarioResult {
    name: &'static str,
    sim_cycles: u64,
    full_scan_cps: f64,
    active_set_cps: f64,
    speedup: f64,
}

/// Best-of-3 per mode, with the modes' runs interleaved so slow drift in
/// machine load biases the speedup ratio as little as possible.
fn interleaved_best_of_3(scenario: &Scenario) -> (RunOutcome, RunOutcome) {
    let mut best: [Option<RunOutcome>; 2] = [None, None];
    for _ in 0..3 {
        for (slot, mode) in [SchedulerMode::FullScan, SchedulerMode::ActiveSet]
            .into_iter()
            .enumerate()
        {
            let out = scenario.timed_run(mode);
            if best[slot].is_none_or(|b| out.seconds < b.seconds) {
                best[slot] = Some(out);
            }
        }
    }
    (best[0].expect("three runs"), best[1].expect("three runs"))
}

fn results_json(results: &[ScenarioResult]) -> String {
    let mut out = String::from("{\"schema\":\"bench_netsim/1\",\"scenarios\":[");
    for (i, r) in results.iter().enumerate() {
        if i > 0 {
            out.push(',');
        }
        out.push_str(&format!(
            "{{\"name\":\"{}\",\"sim_cycles\":{},\"full_scan_cps\":{:.0},\
             \"active_set_cps\":{:.0},\"speedup\":{:.3}}}",
            r.name, r.sim_cycles, r.full_scan_cps, r.active_set_cps, r.speedup
        ));
    }
    out.push_str("]}\n");
    out
}

/// Pull `"key":<number>` out of one scenario's JSON chunk. Only parses the
/// flat format this binary itself writes.
fn json_number(chunk: &str, key: &str) -> Option<f64> {
    let pat = format!("\"{key}\":");
    let start = chunk.find(&pat)? + pat.len();
    let rest = &chunk[start..];
    let end = rest
        .find(|c: char| c != '-' && c != '.' && !c.is_ascii_digit())
        .unwrap_or(rest.len());
    rest[..end].parse().ok()
}

/// Baseline speedups by scenario name from a previously-emitted
/// `BENCH_netsim.json`.
fn baseline_speedups(text: &str) -> Vec<(String, f64)> {
    text.split("{\"name\":\"")
        .skip(1)
        .filter_map(|chunk| {
            let name = chunk.split('"').next()?.to_string();
            Some((name, json_number(chunk, "speedup")?))
        })
        .collect()
}

fn main() -> ExitCode {
    let args: Vec<String> = std::env::args().skip(1).collect();
    let mut quick = false;
    let mut check = false;
    let mut baseline: Option<String> = None;
    let mut out_path: Option<String> = None;
    let mut it = args.iter();
    while let Some(arg) = it.next() {
        match arg.as_str() {
            "--quick" => quick = true,
            "--check" => check = true,
            "--baseline" => baseline = it.next().cloned(),
            "--out" => out_path = it.next().cloned(),
            other => {
                eprintln!("unknown flag {other}");
                eprintln!("usage: bench_netsim [--quick] [--check] [--baseline <f>] [--out <f>]");
                return ExitCode::from(2);
            }
        }
    }

    let mut results = Vec::new();
    let mut failures = Vec::new();
    for scenario in Scenario::suite(quick) {
        let (full, active) = interleaved_best_of_3(&scenario);
        if (full.packets_delivered, full.energy_bits)
            != (active.packets_delivered, active.energy_bits)
        {
            failures.push(format!(
                "{}: schedulers diverged (full-scan {} pkts / {:#x} energy bits, \
                 active-set {} pkts / {:#x})",
                scenario.name,
                full.packets_delivered,
                full.energy_bits,
                active.packets_delivered,
                active.energy_bits
            ));
        }
        let r = ScenarioResult {
            name: scenario.name,
            sim_cycles: scenario.sim_cycles,
            full_scan_cps: scenario.sim_cycles as f64 / full.seconds,
            active_set_cps: scenario.sim_cycles as f64 / active.seconds,
            speedup: full.seconds / active.seconds,
        };
        println!(
            "{:16} {:>9} cycles  full-scan {:>12.0} c/s  active-set {:>12.0} c/s  speedup {:.2}x",
            r.name, r.sim_cycles, r.full_scan_cps, r.active_set_cps, r.speedup
        );
        results.push(r);
    }

    let json = results_json(&results);
    if let Some(path) = &out_path {
        if let Some(dir) = std::path::Path::new(path).parent() {
            let _ = fs::create_dir_all(dir);
        }
        fs::write(path, &json).expect("write bench json");
        eprintln!("wrote {path}");
    } else {
        print!("{json}");
    }

    if check {
        for r in &results {
            if r.name == "near_idle_8x8" && r.speedup < 2.0 {
                failures.push(format!(
                    "{}: active-set speedup {:.2}x below the 2.0x floor",
                    r.name, r.speedup
                ));
            }
            if r.name == "loaded_8x8" && r.speedup < 0.85 {
                failures.push(format!(
                    "{}: active-set at {:.2}x of full-scan, exceeding the 15% overhead budget",
                    r.name, r.speedup
                ));
            }
        }
        if let Some(path) = &baseline {
            match fs::read_to_string(path) {
                Ok(text) => {
                    for (name, base_speedup) in baseline_speedups(&text) {
                        let Some(r) = results.iter().find(|r| r.name == name) else {
                            failures.push(format!("baseline scenario {name} was not run"));
                            continue;
                        };
                        if r.speedup < base_speedup * 0.85 {
                            failures.push(format!(
                                "{name}: speedup regressed to {:.2}x from baseline {:.2}x \
                                 (>15% throughput loss)",
                                r.speedup, base_speedup
                            ));
                        } else if r.speedup < base_speedup {
                            eprintln!(
                                "note: {name} speedup {:.2}x below baseline {:.2}x \
                                 (within the 15% budget)",
                                r.speedup, base_speedup
                            );
                        }
                    }
                }
                Err(e) => failures.push(format!("cannot read baseline {path}: {e}")),
            }
        }
    }

    if failures.is_empty() {
        ExitCode::SUCCESS
    } else {
        for f in &failures {
            eprintln!("FAIL: {f}");
        }
        ExitCode::FAILURE
    }
}
