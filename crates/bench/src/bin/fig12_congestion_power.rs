//! Fig. 12 — power consumption and network throughput as injection is
//! pushed beyond saturation (100 tasks, history-based DVS).
//!
//! Expected shape: power first rises with throughput, then *dips* once the
//! whole network congests — the distributed policy slows the
//! credit-starved links feeding congested routers, so only the saturated
//! network gets cheaper, exactly the paper's counterintuitive observation.

use linkdvs::{PolicyKind, WorkloadKind};
use linkdvs_bench::{format_results_table, results_csv, run_labeled_sweeps, FigureOpts};

fn main() {
    let opts = FigureOpts::from_env_or_exit();
    // Drive well past the non-DVS saturation point (~2.4 offered).
    let rates = [0.4, 0.8, 1.2, 1.6, 2.0, 2.4, 2.8, 3.2, 3.6, 4.0];
    let base = opts.apply(
        linkdvs::ExperimentConfig::paper_baseline()
            .with_workload(WorkloadKind::paper_two_level_100())
            .with_policy(PolicyKind::HistoryDvs(Default::default())),
    );
    let results = run_labeled_sweeps(
        &opts,
        "fig12_congestion_power",
        vec![("history-based DVS".to_string(), base)],
        &rates,
    );
    print!(
        "{}",
        format_results_table("Fig 12: power and throughput beyond saturation", &results)
    );
    let rs = &results[0].1;
    let peak_thr = rs.iter().map(|r| r.throughput).fold(0.0, f64::max);
    let peak_pow = rs.iter().map(|r| r.avg_power_w).fold(0.0, f64::max);
    let last = rs.last().expect("non-empty sweep");
    println!("peak throughput {peak_thr:.2} pkt/cycle, peak power {peak_pow:.1} W");
    println!(
        "deep saturation: throughput {:.2} pkt/cycle, power {:.1} W ({})",
        last.throughput,
        last.avg_power_w,
        if last.avg_power_w < peak_pow {
            "power dips past saturation — matches the paper"
        } else {
            "no dip observed"
        }
    );
    opts.write_artifact("fig12_congestion_power.csv", &results_csv(&results));
}
