//! Fig. 5 — input-buffer-age profiles (mean flit residence time in the
//! downstream input buffers) at rising loads, on a non-DVS network.
//!
//! Expected shape: ages of a few cycles at light load, moderately higher at
//! high load, and a dramatic rise under congestion — the same indicator
//! behaviour as buffer utilization (Fig. 4), which is why the paper uses
//! buffer utilization (cheaper to measure) and drops age.

use linkdvs_bench::{busiest_output, FigureOpts};
use netsim::{ChannelProbe, Network, NetworkConfig};
use trafficgen::{TaskModelConfig, TaskWorkload, Workload};

fn main() {
    let opts = FigureOpts::from_env_or_exit();
    let loads = [(0.3, "(a) low"), (2.0, "(b) high"), (3.2, "(c) congested")];
    let mut csv = String::from("panel,offered_rate,age_bin_cycles,count\n");
    for (rate, label) in loads {
        let cfg = NetworkConfig::paper_8x8();
        let topo = cfg.topology.clone();
        let mut net = Network::new(cfg).expect("paper config is valid");
        let mut wl = TaskWorkload::new(TaskModelConfig::paper_100_tasks(), &topo, rate, opts.seed);
        let mut pend = Vec::new();
        for t in 0..opts.cycles(100_000) {
            wl.poll(t, &mut |s, d| pend.push((s, d)));
            for (s, d) in pend.drain(..) {
                net.inject(s, d);
            }
            net.step();
        }
        // Probe the channel whose downstream buffers saw the most
        // occupancy: congestion is spatially concentrated, so a fixed port
        // would miss it.
        let (node, port) = busiest_output(&net, |s| s.cum_occ_sum);
        let mut probe = ChannelProbe::new(&net, node, port).expect("busiest port exists");
        probe.sample(&net);
        let mut ages = Vec::new();
        for _ in 0..opts.cycles(400_000) / 50 {
            for _ in 0..50 {
                let now = net.time();
                wl.poll(now, &mut |s, d| pend.push((s, d)));
                for (s, d) in pend.drain(..) {
                    net.inject(s, d);
                }
                net.step();
            }
            let s = probe.sample(&net);
            if s.flits_sent > 0 {
                ages.push(s.buffer_age);
            }
        }
        // Log-spaced bins 1..=4096 cycles.
        let mut bins = [0usize; 13];
        for &a in &ages {
            let i = (a.max(1.0).log2().floor() as usize).min(12);
            bins[i] += 1;
        }
        println!(
            "-- Fig 5{label}: buffer age at {rate} pkt/cycle (n = {}) --",
            ages.len()
        );
        let max = bins.iter().copied().max().unwrap_or(1).max(1);
        for (i, c) in bins.iter().enumerate() {
            let lo = 1u64 << i;
            println!("{lo:>5} | {c:>6} {}", "#".repeat(c * 50 / max));
            csv.push_str(&format!("{label},{rate},{lo},{c}\n"));
        }
        let mean = if ages.is_empty() {
            0.0
        } else {
            ages.iter().sum::<f64>() / ages.len() as f64
        };
        println!("mean age: {mean:.1} cycles");
    }
    opts.write_artifact("fig05_buffer_age.csv", &csv);
}
