//! Fig. 5 — input-buffer-age profiles (mean flit residence time in the
//! downstream input buffers) at rising loads, on a non-DVS network.
//!
//! Expected shape: ages of a few cycles at light load, moderately higher at
//! high load, and a dramatic rise under congestion — the same indicator
//! behaviour as buffer utilization (Fig. 4), which is why the paper uses
//! buffer utilization (cheaper to measure) and drops age.

use linkdvs_bench::{drive_workload, sample_busiest_channel, FigureOpts};
use netsim::{Network, NetworkConfig};
use trafficgen::{TaskModelConfig, TaskWorkload};

fn main() {
    let opts = FigureOpts::from_env_or_exit();
    let loads = [(0.3, "(a) low"), (2.0, "(b) high"), (3.2, "(c) congested")];
    let mut csv = String::from("panel,offered_rate,age_bin_cycles,count\n");
    for (rate, label) in loads {
        let cfg = NetworkConfig::paper_8x8();
        let topo = cfg.topology.clone();
        let mut net = Network::new(cfg).expect("paper config is valid");
        let mut wl = TaskWorkload::new(TaskModelConfig::paper_100_tasks(), &topo, rate, opts.seed);
        drive_workload(&mut net, &mut wl, opts.cycles(100_000));
        // Track the channel whose downstream buffers see the most
        // occupancy; windows in which nothing departed carry no age
        // information and are skipped.
        let ages = sample_busiest_channel(
            &mut net,
            &mut wl,
            50,
            opts.cycles(400_000) / 50,
            |s| (s.flits_sent > 0).then_some(s.buffer_age),
            |s| s.cum_occ_sum,
        );
        // Log-spaced bins 1..=4096 cycles.
        let mut bins = [0usize; 13];
        for &a in &ages {
            let i = (a.max(1.0).log2().floor() as usize).min(12);
            bins[i] += 1;
        }
        println!(
            "-- Fig 5{label}: buffer age at {rate} pkt/cycle (n = {}) --",
            ages.len()
        );
        let max = bins.iter().copied().max().unwrap_or(1).max(1);
        for (i, c) in bins.iter().enumerate() {
            let lo = 1u64 << i;
            println!("{lo:>5} | {c:>6} {}", "#".repeat(c * 50 / max));
            csv.push_str(&format!("{label},{rate},{lo},{c}\n"));
        }
        let mean = if ages.is_empty() {
            0.0
        } else {
            ages.iter().sum::<f64>() / ages.len() as f64
        };
        println!("mean age: {mean:.1} cycles");
    }
    opts.write_artifact("fig05_buffer_age.csv", &csv);
}
