//! Cycle-level observability artifacts: run the paper's 8x8 mesh under the
//! history-based DVS policy with full tracing enabled and export
//!
//! - `timeline_fig09.csv` — the busiest channel's utilization/level/power
//!   timeline (a Fig. 9/10-style per-link trace),
//! - `timeline_channels.csv` — the same timeline for the 64 busiest
//!   channels,
//! - `timeline_trace.json` — a Chrome `trace_event` file of the 16 busiest
//!   channels plus every captured DVS/fault event; load it in Perfetto
//!   (<https://ui.perfetto.dev>) to scrub through level transitions,
//! - `timeline_events.jsonl` — the raw captured event stream,
//! - `timeline_telemetry.jsonl` — one schema-v3 run-telemetry record with
//!   simulator throughput and the event-log completeness summary.
//!
//! Stdout gets a per-kind event census, so the binary doubles as a smoke
//! test that the tracing pipeline sees DVS activity at all.

use std::time::Instant;

use dvspolicy::{HistoryDvsConfig, HistoryDvsPolicy};
use linkdvs::{RunTelemetry, TraceSummary};
use linkdvs_bench::{drive_workload, warn_on_trace_drops, FigureOpts};
use netsim::obs::{
    events_jsonl, perfetto_trace, timeline_csv, track_csv, Event, EventKind, EventLog, EventMask,
    TRACK_CSV_HEADER,
};
use netsim::{Network, NetworkConfig, TimelineCollector};
use trafficgen::{TaskModelConfig, TaskWorkload};

fn main() {
    let opts = FigureOpts::from_env_or_exit();
    let cfg = NetworkConfig::paper_8x8();
    let topo = cfg.topology.clone();
    let mut net = Network::with_tracer(
        cfg,
        |_, _| Box::new(HistoryDvsPolicy::new(HistoryDvsConfig::paper())),
        EventLog::with_capacity(50_000)
            .with_mask(opts.trace_mask(EventMask::DVS | EventMask::FAULTS)),
    )
    .expect("paper config is valid");
    let mut wl = TaskWorkload::new(TaskModelConfig::paper_100_tasks(), &topo, 1.2, opts.seed);

    let start = Instant::now();
    let warmup = opts.cycles(100_000);
    drive_workload(&mut net, &mut wl, warmup);
    net.begin_measurement();

    // 256 windows across the measured interval, every channel sampled.
    let measure = opts.cycles(400_000);
    let stride = (measure / 256).max(1);
    let mut collector = TimelineCollector::new(&net, stride, 256);
    for _ in 0..measure / stride {
        drive_workload(&mut net, &mut wl, stride);
        collector.poll(&net);
    }

    let wall_s = start.elapsed().as_secs_f64();
    let sim_cycles = warmup + measure;
    let packets_delivered = net.stats().packets_delivered();
    let timeline = collector.into_timeline();
    let log = net.into_tracer();
    warn_on_trace_drops(&log);
    let events: Vec<Event> = log.events().copied().collect();

    println!("== timeline: paper 8x8 mesh, history DVS, {measure} measured cycles ==");
    println!(
        "{} channels x {} windows of {stride} cycles",
        timeline.tracks().len(),
        timeline.tracks().first().map_or(0, |t| t.len()),
    );
    for kind in EventKind::ALL {
        let n = log.count(kind);
        if n > 0 {
            println!("{:<20} {n:>8}", kind.name());
        }
    }
    println!(
        "{} events captured, {} evicted by the ring buffer",
        log.len(),
        log.dropped()
    );

    let flits = |s: &netsim::obs::TimelineSample| s.flits as f64;
    let busiest = timeline.top_tracks(1, flits);
    let track = &busiest.tracks()[0];
    println!(
        "busiest channel: {} ({} flits over the retained windows)",
        track.id(),
        track.samples().map(|s| s.flits).sum::<u64>()
    );
    println!("{TRACK_CSV_HEADER}");
    for line in track_csv(track).lines().skip(1).take(5) {
        println!("{line}");
    }

    opts.write_artifact("timeline_fig09.csv", &track_csv(track));
    opts.write_artifact(
        "timeline_channels.csv",
        &timeline_csv(&timeline.top_tracks(64, flits)),
    );
    opts.write_artifact(
        "timeline_trace.json",
        &perfetto_trace(&timeline.top_tracks(16, flits), &events),
    );
    opts.write_artifact("timeline_events.jsonl", &events_jsonl(&events));

    let telemetry = RunTelemetry {
        series: 0,
        point_index: 0,
        global_index: 0,
        offered_rate: 1.2,
        worker: 0,
        wall_s,
        sim_cycles,
        cycles_per_sec: if wall_s > 0.0 {
            sim_cycles as f64 / wall_s
        } else {
            0.0
        },
        packets_delivered,
        faults: None,
        events: Some(TraceSummary::from_log(&log)),
    };
    opts.write_artifact(
        "timeline_telemetry.jsonl",
        &format!("{}\n", telemetry.to_json()),
    );
}
