//! Per-policy attribution report: run the paper's 8x8 mesh under each of
//! the five link policies and decompose *where the cycles and joules went*.
//!
//! - `attribution_latency.csv` — mean packet latency split into source
//!   queuing, buffer (VC/credit) stalls, router pipeline, serialization at
//!   the scaled link frequency, DVS lock stalls, and retransmission delay;
//!   the components sum bit-exactly to the measured mean latency,
//! - `attribution_energy.csv` — network energy over the measured interval
//!   split into active transmission, idle, transition overhead, and
//!   retransmission energy, against the full-speed baseline,
//! - `attribution_audit.jsonl` — the per-link [`DvsAudit`] rows (one JSON
//!   object per link, tagged with a leading `policy` key),
//! - `attribution_audit.csv` — the same rows as CSV,
//! - `attribution_telemetry.jsonl` — one schema-v3 run-telemetry record per
//!   policy with simulator throughput and trace completeness.
//!
//! Stdout gets the per-policy human summary, so the binary doubles as a
//! smoke test that the attribution pipeline balances for every policy.
//!
//! [`DvsAudit`]: netsim::obs::DvsAudit

use std::fmt::Write as _;
use std::time::Instant;

use dvspolicy::{
    DynamicThresholdPolicy, HistoryDvsConfig, HistoryDvsPolicy, ReactiveDvsPolicy,
    TargetUtilizationPolicy,
};
use linkdvs::{RunTelemetry, TraceSummary};
use linkdvs_bench::{drive_workload, warn_on_trace_drops, FigureOpts};
use netsim::obs::{DvsAudit, LinkId, AUDIT_CSV_HEADER};
use netsim::{
    BreakdownTotals, EventLog, EventMask, LinkPolicy, Network, NetworkConfig, StaticLevelPolicy,
};
use trafficgen::{TaskModelConfig, TaskWorkload};

/// A policy constructor, boxed so the five configurations fit one table.
type PolicyFactory = Box<dyn Fn() -> Box<dyn LinkPolicy>>;

/// The five policy configurations of the paper's evaluation.
fn policies() -> Vec<(&'static str, PolicyFactory)> {
    vec![
        (
            "no-DVS",
            Box::new(|| Box::new(StaticLevelPolicy::default()) as Box<dyn LinkPolicy>),
        ),
        (
            "history-DVS",
            Box::new(|| Box::new(HistoryDvsPolicy::new(HistoryDvsConfig::paper()))),
        ),
        (
            "reactive-DVS",
            Box::new(|| Box::new(ReactiveDvsPolicy::paper())),
        ),
        (
            "dynamic-threshold-DVS",
            Box::new(|| Box::new(DynamicThresholdPolicy::paper())),
        ),
        (
            "target-utilization-DVS",
            Box::new(|| Box::new(TargetUtilizationPolicy::paper_comparable())),
        ),
    ]
}

struct PolicyRun {
    label: &'static str,
    breakdown: BreakdownTotals,
    lat_mean: f64,
    lat_sum: u128,
    audit: DvsAudit,
    telemetry: RunTelemetry,
}

fn run_policy(
    opts: &FigureOpts,
    series: usize,
    label: &'static str,
    make: &dyn Fn() -> Box<dyn LinkPolicy>,
) -> PolicyRun {
    let cfg = NetworkConfig::paper_8x8();
    let topo = cfg.topology.clone();
    let mut net = Network::with_tracer(
        cfg,
        |_, _| make(),
        EventLog::with_capacity(100_000)
            .with_mask(opts.trace_mask(EventMask::DVS | EventMask::FAULTS)),
    )
    .expect("paper config is valid");
    let mut wl = TaskWorkload::new(TaskModelConfig::paper_100_tasks(), &topo, 1.2, opts.seed);

    let start = Instant::now();
    let warmup = opts.cycles(100_000);
    drive_workload(&mut net, &mut wl, warmup);
    net.begin_measurement();
    let mstart = net.stats().measurement_start();

    // Snapshot every channel at the start of the measured interval so the
    // audit reports interval deltas, not since-construction totals.
    let mut baseline = Vec::new();
    for node in net.topology().nodes() {
        for port in 1..net.topology().ports_per_router() {
            if let Some(s) = net.output_stats(node, port) {
                baseline.push((node, port, s.ledger, s.cum_lock_stall, s.cum_fault_stall));
            }
        }
    }

    let measure = opts.cycles(400_000);
    drive_workload(&mut net, &mut wl, measure);
    let wall_s = start.elapsed().as_secs_f64();

    // Per-link energy at full speed over the same interval: the network's
    // ceiling power divided evenly across channels (all channels share the
    // paper's VF table).
    let full_speed_j = net.max_power_w() / net.channel_count() as f64 * measure as f64 * 1e-9;

    let mut audit = DvsAudit::new();
    for (node, port, ledger0, lock0, fault0) in baseline {
        let s = net.output_stats(node, port).expect("port existed at start");
        let row = audit.link_mut(LinkId { node, port });
        row.ledger = s.ledger.since(&ledger0);
        row.lock_stall_cycles = s.cum_lock_stall - lock0;
        row.fault_stall_cycles = s.cum_fault_stall - fault0;
        row.full_speed_j = full_speed_j;
    }

    let stats = *net.stats();
    let log = net.into_tracer();
    warn_on_trace_drops(&log);
    audit.apply_events(log.events().filter(|e| e.time() >= mstart));

    let sim_cycles = warmup + measure;
    PolicyRun {
        label,
        breakdown: *stats.latency_breakdown(),
        lat_mean: stats.latency().mean().unwrap_or(f64::NAN),
        lat_sum: stats.latency().sum(),
        audit,
        telemetry: RunTelemetry {
            series,
            point_index: 0,
            global_index: series,
            offered_rate: 1.2,
            worker: 0,
            wall_s,
            sim_cycles,
            cycles_per_sec: if wall_s > 0.0 {
                sim_cycles as f64 / wall_s
            } else {
                0.0
            },
            packets_delivered: stats.packets_delivered(),
            faults: None,
            events: Some(TraceSummary::from_log(&log)),
        },
    }
}

fn main() {
    let opts = FigureOpts::from_env_or_exit();
    let runs: Vec<PolicyRun> = policies()
        .iter()
        .enumerate()
        .map(|(i, (label, make))| run_policy(&opts, i, label, make.as_ref()))
        .collect();

    let mut latency_csv = String::from("policy,packets,lat_mean,");
    latency_csv.push_str(&BreakdownTotals::COMPONENTS.join(","));
    latency_csv.push('\n');
    let mut energy_csv = String::from(
        "policy,active_j,idle_j,transition_j,retransmission_j,total_j,full_speed_j,\
         savings_factor\n",
    );
    let mut audit_jsonl = String::new();
    let mut audit_csv = format!("policy,{AUDIT_CSV_HEADER}\n");

    println!("== attribution: paper 8x8 mesh, 1.2 pkt/cycle task workload ==");
    for run in &runs {
        let b = &run.breakdown;
        let means = b.means();
        let _ = write!(
            latency_csv,
            "{},{},{:.2}",
            run.label, b.packets, run.lat_mean
        );
        for m in means {
            let _ = write!(latency_csv, ",{m:.2}");
        }
        latency_csv.push('\n');
        assert_eq!(
            u128::from(b.total()),
            run.lat_sum,
            "{}: latency components must sum exactly to the measured latency",
            run.label
        );

        let t = run.audit.totals();
        let _ = writeln!(
            energy_csv,
            "{},{:e},{:e},{:e},{:e},{:e},{:e},{:.4}",
            run.label,
            t.ledger.active_j,
            t.ledger.idle_j,
            t.ledger.transition_j,
            t.ledger.retransmission_j,
            t.ledger.total_j(),
            t.full_speed_j,
            t.savings_factor(),
        );

        for line in run.audit.to_jsonl().lines() {
            audit_jsonl.push_str(&line.replacen(
                '{',
                &format!("{{\"policy\":\"{}\",", run.label),
                1,
            ));
            audit_jsonl.push('\n');
        }
        for line in run.audit.to_csv().lines().skip(1) {
            let _ = writeln!(audit_csv, "{},{line}", run.label);
        }

        println!("-- {} --", run.label);
        println!(
            "{} packets, mean latency {:.1} cycles = {}",
            b.packets,
            run.lat_mean,
            BreakdownTotals::COMPONENTS
                .iter()
                .zip(means)
                .map(|(name, m)| format!("{m:.1} {name}"))
                .collect::<Vec<_>>()
                .join(" + "),
        );
        print!("{}", run.audit.summary());
    }

    opts.write_artifact("attribution_latency.csv", &latency_csv);
    opts.write_artifact("attribution_energy.csv", &energy_csv);
    opts.write_artifact("attribution_audit.jsonl", &audit_jsonl);
    opts.write_artifact("attribution_audit.csv", &audit_csv);
    let mut telemetry = String::new();
    for run in &runs {
        telemetry.push_str(&run.telemetry.to_json());
        telemetry.push('\n');
    }
    opts.write_artifact("attribution_telemetry.jsonl", &telemetry);
}
