//! Fig. 8 — spatial variance of the injected two-level workload: packets
//! injected per node over a snapshot window, shown as an 8x8 heat map.
//!
//! Expected shape: strongly non-uniform — task sessions concentrate load on
//! the nodes that happen to host them, unlike uniform-random traffic.

use linkdvs_bench::FigureOpts;
use netsim::Topology;
use trafficgen::{TaskModelConfig, TaskWorkload, UniformRandomWorkload, Workload};

fn heat(topo: &Topology, counts: &[u64]) -> String {
    let total: u64 = counts.iter().sum::<u64>().max(1);
    let max = counts.iter().copied().max().unwrap_or(1).max(1);
    let mut out = String::new();
    for y in 0..8 {
        for x in 0..8 {
            let c = counts[topo.node_at(&[x, y])];
            let level = (c * 9 / max) as usize;
            out.push_str(&format!("{level:>2} "));
        }
        out.push('\n');
    }
    let mean = total as f64 / 64.0;
    let var = counts
        .iter()
        .map(|&c| (c as f64 - mean) * (c as f64 - mean))
        .sum::<f64>()
        / 64.0;
    out.push_str(&format!(
        "mean {mean:.0} packets/node, coefficient of variation {:.2}\n",
        var.sqrt() / mean
    ));
    out
}

fn main() {
    let opts = FigureOpts::from_env_or_exit();
    let topo = Topology::mesh(8, 2).expect("valid");
    let window = opts.cycles(500_000);

    let mut counts = vec![0u64; 64];
    let mut wl = TaskWorkload::new(TaskModelConfig::paper_100_tasks(), &topo, 1.0, opts.seed);
    for t in 0..window {
        wl.poll(t, &mut |s, _| counts[s] += 1);
    }
    println!("== Fig 8: spatial variance of the two-level workload (0-9 intensity scale) ==");
    print!("{}", heat(&topo, &counts));

    let mut ucounts = vec![0u64; 64];
    let mut uw = UniformRandomWorkload::new(64, 1.0, opts.seed);
    for t in 0..window {
        uw.poll(t, &mut |s, _| ucounts[s] += 1);
    }
    println!("\n-- uniform-random reference --");
    print!("{}", heat(&topo, &ucounts));

    let mut csv = String::from("node,x,y,two_level_packets,uniform_packets\n");
    for n in 0..64 {
        csv.push_str(&format!(
            "{n},{},{},{},{}\n",
            topo.coord(n, 0),
            topo.coord(n, 1),
            counts[n],
            ucounts[n]
        ));
    }
    opts.write_artifact("fig08_spatial_variance.csv", &csv);
}
