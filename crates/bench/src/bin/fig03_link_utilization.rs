//! Fig. 3 — link-utilization histograms of one tracked link as network load
//! rises, sampled every H = 50 cycles on a non-DVS network (the paper's
//! traffic-characterization study).
//!
//! Expected shape: utilization mass moves right as load grows, then *dips
//! back left* once the network congests and credit starvation throttles the
//! link (panel d).

use linkdvs_bench::{busiest_output, format_histogram, unit_histogram, FigureOpts};
use netsim::{ChannelProbe, Network, NetworkConfig};
use trafficgen::{TaskModelConfig, TaskWorkload, Workload};

fn main() {
    let opts = FigureOpts::from_env_or_exit();
    // Loads rising into congestion; (d) is past the saturation knee.
    let loads = [
        (0.3, "(a) low"),
        (1.2, "(b) medium"),
        (2.0, "(c) high"),
        (3.2, "(d) congested"),
    ];
    let mut csv = String::from("panel,offered_rate,lu_bin,count\n");
    for (rate, label) in loads {
        let cfg = NetworkConfig::paper_8x8();
        let topo = cfg.topology.clone();
        let mut net = Network::new(cfg).expect("paper config is valid");
        let mut wl = TaskWorkload::new(TaskModelConfig::paper_100_tasks(), &topo, rate, opts.seed);
        let warm = opts.cycles(100_000);
        let mut pend = Vec::new();
        for t in 0..warm {
            wl.poll(t, &mut |s, d| pend.push((s, d)));
            for (s, d) in pend.drain(..) {
                net.inject(s, d);
            }
            net.step();
        }
        // Track the most heavily used link (the paper tracks "a link
        // within the mesh"; picking the busiest one makes every regime
        // visible at the probe).
        let (node, port) = busiest_output(&net, |s| s.cum_flits);
        let mut probe = ChannelProbe::new(&net, node, port).expect("busiest port exists");
        probe.sample(&net); // discard warm-up interval
        let mut samples = Vec::new();
        let windows = opts.cycles(400_000) / 50;
        for w in 0..windows {
            for _ in 0..50 {
                let t = warm + w * 50;
                let _ = t;
                let now = net.time();
                wl.poll(now, &mut |s, d| pend.push((s, d)));
                for (s, d) in pend.drain(..) {
                    net.inject(s, d);
                }
                net.step();
            }
            samples.push(probe.sample(&net).link_utilization);
        }
        let hist = unit_histogram(&samples, 20);
        print!(
            "{}",
            format_histogram(
                &format!("Fig 3{label}: link utilization at {rate} pkt/cycle"),
                &hist
            )
        );
        for (lo, c) in &hist {
            csv.push_str(&format!("{label},{rate},{lo},{c}\n"));
        }
    }
    opts.write_artifact("fig03_link_utilization.csv", &csv);
}
