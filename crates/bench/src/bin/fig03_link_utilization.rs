//! Fig. 3 — link-utilization histograms of one tracked link as network load
//! rises, sampled every H = 50 cycles on a non-DVS network (the paper's
//! traffic-characterization study).
//!
//! Expected shape: utilization mass moves right as load grows, then *dips
//! back left* once the network congests and credit starvation throttles the
//! link (panel d).

use linkdvs_bench::{
    drive_workload, format_histogram, sample_busiest_channel, unit_histogram, FigureOpts,
};
use netsim::{Network, NetworkConfig};
use trafficgen::{TaskModelConfig, TaskWorkload};

fn main() {
    let opts = FigureOpts::from_env_or_exit();
    // Loads rising into congestion; (d) is past the saturation knee.
    let loads = [
        (0.3, "(a) low"),
        (1.2, "(b) medium"),
        (2.0, "(c) high"),
        (3.2, "(d) congested"),
    ];
    let mut csv = String::from("panel,offered_rate,lu_bin,count\n");
    for (rate, label) in loads {
        let cfg = NetworkConfig::paper_8x8();
        let topo = cfg.topology.clone();
        let mut net = Network::new(cfg).expect("paper config is valid");
        let mut wl = TaskWorkload::new(TaskModelConfig::paper_100_tasks(), &topo, rate, opts.seed);
        drive_workload(&mut net, &mut wl, opts.cycles(100_000));
        // Track the most heavily used link (the paper tracks "a link
        // within the mesh"; picking the busiest one makes every regime
        // visible at the probe).
        let samples = sample_busiest_channel(
            &mut net,
            &mut wl,
            50,
            opts.cycles(400_000) / 50,
            |s| Some(s.link_utilization),
            |s| s.cum_flits,
        );
        let hist = unit_histogram(&samples, 20);
        print!(
            "{}",
            format_histogram(
                &format!("Fig 3{label}: link utilization at {rate} pkt/cycle"),
                &hist
            )
        );
        for (lo, c) in &hist {
            csv.push_str(&format!("{label},{rate},{lo},{c}\n"));
        }
    }
    opts.write_artifact("fig03_link_utilization.csv", &csv);
}
