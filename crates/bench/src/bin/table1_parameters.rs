//! Table 1 — parameters of the history-based DVS policy, plus the §3.3
//! hardware cost of realizing it at every router port.

use dvspolicy::{HardwareCost, HistoryDvsConfig};
use linkdvs_bench::FigureOpts;

fn main() {
    let opts = FigureOpts::from_env_or_exit();
    let c = HistoryDvsConfig::paper();
    let t = &c.thresholds;
    println!("== Table 1: history-based DVS policy parameters ==");
    println!("W            {}", c.weight);
    println!("H            {} cycles", c.window);
    println!("B_congested  {}", t.b_congested());
    println!("TL_low       {}", t.light().low());
    println!("TL_high      {}", t.light().high());
    println!("TH_low       {}", t.congested().low());
    println!("TH_high      {}", t.congested().high());
    let hw = HardwareCost::paper();
    println!();
    println!("== §3.3 hardware realization ==");
    println!("gates/port            {}", hw.gates_per_port());
    println!(
        "power/port            {:.1} mW",
        hw.power_per_port_w() * 1e3
    );
    println!(
        "8x8 mesh total        {} gates, {:.2} W ({:.3}% of the 409.6 W link budget)",
        hw.network_gates(64, 4),
        hw.network_power_overhead_w(64, 4),
        hw.network_power_overhead_w(64, 4) / 409.6 * 100.0
    );
    let csv = format!(
        "parameter,value\nW,{}\nH,{}\nB_congested,{}\nTL_low,{}\nTL_high,{}\nTH_low,{}\nTH_high,{}\n",
        c.weight,
        c.window,
        t.b_congested(),
        t.light().low(),
        t.light().high(),
        t.congested().low(),
        t.congested().high()
    );
    opts.write_artifact("table1_parameters.csv", &csv);
}
