//! Fig. 9 — temporal variance of the injected two-level workload at one
//! router: packets injected per 1000-cycle interval over time, with the
//! Hurst exponent confirming long-range dependence.
//!
//! Expected shape: bursty, with burstiness preserved across time scales
//! (H clearly above the 0.5 of short-range-dependent traffic).

use linkdvs_bench::FigureOpts;
use netsim::Topology;
use trafficgen::{rs_hurst, variance_time_hurst, TaskModelConfig, TaskWorkload, Workload};

fn main() {
    let opts = FigureOpts::from_env_or_exit();
    let topo = Topology::mesh(8, 2).expect("valid");
    let mut wl = TaskWorkload::new(TaskModelConfig::paper_100_tasks(), &topo, 1.0, opts.seed);
    let node = 27;
    let bin = 1_000u64;
    let bins = opts.cycles(2_000_000) / bin;
    let mut series = vec![0f64; bins as usize];
    for t in 0..bins * bin {
        wl.poll(t, &mut |s, _| {
            if s == node {
                series[(t / bin) as usize] += 1.0;
            }
        });
    }
    println!("== Fig 9: packets per {bin}-cycle interval at router {node} ==");
    let max = series.iter().copied().fold(1.0f64, f64::max);
    let chunk = (series.len() / 60).max(1);
    for (i, c) in series.chunks(chunk).enumerate() {
        let v = c.iter().sum::<f64>() / c.len() as f64;
        let bar = "#".repeat(((v / max) * 50.0) as usize);
        println!("{:>7} | {v:>6.1} {bar}", i * chunk * bin as usize);
    }
    let mean = series.iter().sum::<f64>() / series.len() as f64;
    let var = series.iter().map(|v| (v - mean) * (v - mean)).sum::<f64>() / series.len() as f64;
    println!("mean {mean:.2}, variance {var:.2} (Poisson reference would be ~mean)");
    if let Some(h) = variance_time_hurst(&series) {
        println!("Hurst (variance-time): {h:.2}");
    }
    if let Some(h) = rs_hurst(&series) {
        println!("Hurst (R/S):           {h:.2}");
    }
    let mut csv = String::from("interval_start,packets\n");
    for (i, v) in series.iter().enumerate() {
        csv.push_str(&format!("{},{v}\n", i as u64 * bin));
    }
    opts.write_artifact("fig09_temporal_variance.csv", &csv);
}
