//! Fig. 15 — the Pareto curve of latency vs dynamic power savings at a
//! fixed injection rate (the paper uses 1.7 packets/cycle), traced by
//! sweeping threshold settings I–VI.
//!
//! Expected shape: a frontier — improving power savings costs latency and
//! vice versa; no setting dominates another.

use dvspolicy::HistoryDvsConfig;
use linkdvs::{PolicyKind, WorkloadKind};
use linkdvs_bench::{results_csv, run_labeled_points, FigureOpts};

fn main() {
    let opts = FigureOpts::from_env_or_exit();
    let rate = 1.7;
    let base = opts.apply(
        linkdvs::ExperimentConfig::paper_baseline()
            .with_workload(WorkloadKind::paper_two_level_100()),
    );
    let series = (1..=6)
        .map(|setting| {
            (
                format!("setting {setting}"),
                base.clone()
                    .with_policy(PolicyKind::HistoryDvs(HistoryDvsConfig::paper_table2(
                        setting,
                    ))),
            )
        })
        .collect();
    let points_by_setting = run_labeled_points(&opts, "fig15_pareto", series, rate);
    println!("== Fig 15: latency vs power savings at {rate} pkt/cycle ==");
    println!("{:<12} {:>10} {:>10}", "setting", "latency", "savings");
    let mut results = Vec::new();
    let mut points = Vec::new();
    for (setting, (label, r)) in (1..=6).zip(points_by_setting) {
        println!(
            "{:<12} {:>10.0} {:>9.2}x",
            format!("{setting} (I-VI)"),
            r.avg_latency_cycles.unwrap_or(f64::NAN),
            r.power_savings
        );
        points.push((r.avg_latency_cycles.unwrap_or(f64::NAN), r.power_savings));
        results.push((label, vec![r]));
    }
    // Frontier check: savings should rise with latency along the curve.
    let mut sorted = points.clone();
    sorted.sort_by(|a, b| a.0.partial_cmp(&b.0).expect("finite latencies"));
    let monotone = sorted.windows(2).filter(|w| w[1].1 >= w[0].1 - 0.2).count();
    println!(
        "\nfrontier: {}/{} adjacent pairs trade latency for savings",
        monotone,
        sorted.len() - 1
    );
    opts.write_artifact("fig15_pareto.csv", &results_csv(&results));
}
