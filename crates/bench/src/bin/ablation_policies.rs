//! Ablation bench (beyond the paper): history-based DVS vs the
//! no-history reactive variant vs the §4.4.2-style dynamic-threshold
//! extension, at matched loads.
//!
//! Expected shape: reactive transitions far more often (paying lock time
//! and transition energy) for little power benefit; dynamic thresholds
//! track the history policy while shifting along the Fig. 15 frontier.

use linkdvs::{PolicyKind, WorkloadKind};
use linkdvs_bench::{
    coarse_rates, format_results_table, results_csv, run_labeled_sweeps, FigureOpts,
};

fn main() {
    let opts = FigureOpts::from_env_or_exit();
    let rates = coarse_rates();
    let base = opts.apply(
        linkdvs::ExperimentConfig::paper_baseline()
            .with_workload(WorkloadKind::paper_two_level_100()),
    );
    let series = vec![
        (
            "history-based".to_string(),
            base.clone()
                .with_policy(PolicyKind::HistoryDvs(Default::default())),
        ),
        (
            "reactive (no history)".to_string(),
            base.clone().with_policy(PolicyKind::Reactive),
        ),
        (
            "dynamic thresholds".to_string(),
            base.with_policy(PolicyKind::DynamicThresholds),
        ),
    ];
    let results = run_labeled_sweeps(&opts, "ablation_policies", series, &rates);
    print!(
        "{}",
        format_results_table("Ablation: policy variants", &results)
    );
    opts.write_artifact("ablation_policies.csv", &results_csv(&results));
}
