//! Fig. 13 (with Table 2) — latency profile under threshold settings I–VI.
//!
//! Expected shape: more aggressive settings (higher TL thresholds, toward
//! VI) push links to lower levels, raising latency at every load; setting I
//! is closest to the non-DVS curve.

use dvspolicy::HistoryDvsConfig;
use linkdvs::{PolicyKind, WorkloadKind};
use linkdvs_bench::{
    coarse_rates, format_results_table, results_csv, run_labeled_sweeps, FigureOpts,
};

fn main() {
    let opts = FigureOpts::from_env_or_exit();
    let rates = coarse_rates();
    let base = opts.apply(
        linkdvs::ExperimentConfig::paper_baseline()
            .with_workload(WorkloadKind::paper_two_level_100()),
    );
    let series = (1..=6)
        .map(|setting| {
            (
                format!("setting {setting} (Table 2)"),
                base.clone()
                    .with_policy(PolicyKind::HistoryDvs(HistoryDvsConfig::paper_table2(
                        setting,
                    ))),
            )
        })
        .collect();
    let results = run_labeled_sweeps(&opts, "fig13_threshold_latency", series, &rates);
    print!(
        "{}",
        format_results_table("Fig 13: latency under threshold settings I-VI", &results)
    );
    // Monotonicity check across settings at each rate.
    println!("\nmean latency by setting (should generally increase I -> VI):");
    for (label, rs) in &results {
        let lat: f64 =
            rs.iter().filter_map(|r| r.avg_latency_cycles).sum::<f64>() / rs.len() as f64;
        println!("  {label}: {lat:.0} cycles");
    }
    opts.write_artifact("fig13_threshold_latency.csv", &results_csv(&results));
}
