//! Reliability extension — power vs delivered reliability when links are
//! noisy enough that the lowest V/f levels corrupt flits.
//!
//! The paper assumes the whole table signals at 10⁻¹⁵ BER, so its policies
//! trade only power against latency. This bench drops that assumption:
//! supply noise is cranked to 4.5x the paper's (σ_v = 0.18 V), where the
//! predicted BER spans ~2.7e-2 at level 0 down to ~2e-9 at level 9, and the
//! fault subsystem injects bit errors at exactly those rates. An unguarded
//! history-DVS policy parks idle links at the bottom of the table and pays
//! for it in retransmissions, residual (CRC-escaping) errors, and
//! fail-stopped links; reliability-guarded variants floor the descent at
//! progressively tighter BER targets, trading link power back for delivered
//! reliability. The output is the Pareto frontier between the two.

use dvslink::NoiseModel;
use dvspolicy::ReliabilityGuard;
use linkdvs::{ExperimentConfig, FaultSummary, PolicyKind, RunResult, SweepPlan, WorkloadKind};
use linkdvs_bench::FigureOpts;
use netsim::FaultConfig;

/// BER targets for the guarded rows; `None` is the unguarded baseline.
const TARGETS: [Option<f64>; 5] = [None, Some(1e-2), Some(1e-4), Some(1e-6), Some(1e-9)];

fn label(target: Option<f64>) -> String {
    match target {
        None => "unguarded".to_string(),
        Some(t) => format!("ber<={t:.0e}"),
    }
}

fn main() {
    let opts = FigureOpts::from_env_or_exit();
    let rate = 0.8;
    let noisy = NoiseModel {
        sigma_v: 0.18,
        ..NoiseModel::paper()
    };
    let base = opts.apply(
        ExperimentConfig::paper_baseline()
            .with_workload(WorkloadKind::paper_two_level_100())
            .with_policy(PolicyKind::HistoryDvs(Default::default()))
            .with_faults(FaultConfig::new(opts.seed).with_noise(noisy)),
    );
    let mut plan = SweepPlan::new();
    for &target in &TARGETS {
        let mut cfg = base.clone();
        // The aggressive link (paper §4.4.3) lets the policy actually reach
        // the low levels within bench-scale runs.
        cfg.network.timing = dvslink::TransitionTiming::paper_aggressive();
        if let Some(t) = target {
            cfg = cfg.with_reliability_target(t);
        }
        plan.push_series(cfg, &[rate]);
    }
    let outcomes = plan.run(opts.jobs, None);

    let table = dvslink::VfTable::paper();
    let floor = |target: Option<f64>| {
        target.map_or(0, |t| ReliabilityGuard::new(noisy, t).floor_level(&table))
    };

    println!("== Reliability-aware DVS: power vs delivered reliability ==");
    println!("(sigma_v = {} V, rate = {rate} pkt/cycle)", noisy.sigma_v);
    println!(
        "{:<12} {:>5} {:>8} {:>8} {:>6} {:>10} {:>9} {:>9} {:>6} {:>12}",
        "guard",
        "floor",
        "lat",
        "power_W",
        "save",
        "retx",
        "residual",
        "failed",
        "mean_l",
        "resid_rate"
    );
    let mut csv = String::from(
        "target_ber,floor_level,avg_latency_cycles,avg_power_w,normalized_power,power_savings,\
         mean_level,transmitted,corrupted,retransmissions,residual_errors,failed_links,\
         delivered_attempts,residual_error_rate\n",
    );
    let mut jsonl = String::new();
    let collected: Vec<(Option<f64>, RunResult, FaultSummary)> = TARGETS
        .iter()
        .zip(&outcomes)
        .map(|(&target, o)| {
            let f = o
                .telemetry
                .faults
                .expect("fault subsystem is enabled in every row");
            (target, o.result, f)
        })
        .collect();
    for (target, r, f) in &collected {
        let floor_level = floor(*target);
        let resid_rate = if f.delivered_attempts > 0 {
            f.residual_errors as f64 / f.delivered_attempts as f64
        } else {
            0.0
        };
        println!(
            "{:<12} {:>5} {:>8.0} {:>8.1} {:>5.2}x {:>10} {:>9} {:>9} {:>6.2} {:>12.3e}",
            label(*target),
            floor_level,
            r.avg_latency_cycles.unwrap_or(f64::NAN),
            r.avg_power_w,
            r.power_savings,
            f.retransmissions,
            f.residual_errors,
            f.failed_links,
            r.mean_level,
            resid_rate,
        );
        csv.push_str(&format!(
            "{},{},{},{},{},{},{},{},{},{},{},{},{},{:e}\n",
            target.map_or("none".to_string(), |t| format!("{t:e}")),
            floor_level,
            r.avg_latency_cycles.unwrap_or(f64::NAN),
            r.avg_power_w,
            r.normalized_power,
            r.power_savings,
            r.mean_level,
            f.transmitted,
            f.corrupted,
            f.retransmissions,
            f.residual_errors,
            f.failed_links,
            f.delivered_attempts,
            resid_rate,
        ));
        jsonl.push_str(&format!(
            concat!(
                "{{\"target_ber\":{},\"floor_level\":{},\"transmitted\":{},",
                "\"corrupted\":{},\"retransmissions\":{},\"residual_errors\":{},",
                "\"outages\":{},\"outage_cycles\":{},\"failed_links\":{},",
                "\"delivered_attempts\":{}}}\n"
            ),
            target.map_or("null".to_string(), |t| format!("{t:e}")),
            floor_level,
            f.transmitted,
            f.corrupted,
            f.retransmissions,
            f.residual_errors,
            f.outages,
            f.outage_cycles,
            f.failed_links,
            f.delivered_attempts,
        ));
    }
    // The frontier's two ends, stated plainly: the tightest guard spends the
    // most power and delivers the fewest residual errors.
    let loosest = &collected[0];
    let tightest = collected.last().expect("TARGETS is non-empty");
    println!(
        "\nfrontier: unguarded {:.1} W / {} residuals -> ber<=1e-9 {:.1} W / {} residuals",
        loosest.1.avg_power_w,
        loosest.2.residual_errors,
        tightest.1.avg_power_w,
        tightest.2.residual_errors,
    );
    opts.write_artifact("reliability_pareto.csv", &csv);
    opts.write_artifact("reliability_pareto_retx.jsonl", &jsonl);
}
