//! Fig. 11 — as Fig. 10 but with the 50-task workload.
//!
//! Expected shape: like Fig. 10, with slightly deeper power savings (the
//! paper reports up to 6.4X, 4.9X average) and lower saturation throughput
//! due to higher traffic imbalance — fewer, fatter flows.

use linkdvs::{PolicyKind, SweepSummary, WorkloadKind};
use linkdvs_bench::{
    format_results_table, results_csv, run_labeled_sweeps, sweep_rates, FigureOpts,
};

fn main() {
    let opts = FigureOpts::from_env_or_exit();
    let rates = sweep_rates();
    let base = opts.apply(
        linkdvs::ExperimentConfig::paper_baseline()
            .with_workload(WorkloadKind::paper_two_level_50()),
    );
    let results = run_labeled_sweeps(
        &opts,
        "fig11_dvs_50tasks",
        vec![
            (
                "without DVS".to_string(),
                base.clone().with_policy(PolicyKind::NoDvs),
            ),
            (
                "history-based DVS".to_string(),
                base.with_policy(PolicyKind::HistoryDvs(Default::default())),
            ),
        ],
        &rates,
    );
    print!(
        "{}",
        format_results_table("Fig 11: DVS vs non-DVS, 50 tasks", &results)
    );
    for (label, rs) in &results {
        if let Some(s) = SweepSummary::from_results(rs) {
            println!(
                "{label}: zero-load latency {:.0}, saturation {:?}, avg savings {:.2}x, max savings {:.2}x",
                s.zero_load_latency, s.saturation_rate, s.avg_power_savings, s.max_power_savings
            );
        }
    }
    opts.write_artifact("fig11_dvs_50tasks.csv", &results_csv(&results));
}
