//! Fig. 7 — router power-consumption distribution.
//!
//! The paper characterizes its synthesized router (TSMC 0.25 µm) and finds
//! 82.4% of maximum router power in the link circuitry, with allocators at
//! a minimal 81 mW — the observation that justifies both targeting links
//! for power optimization and ignoring router-core power in the evaluation.
//! We reproduce the chart from the published anchors (see
//! `dvslink::RouterPowerBudget` for which splits are paper numbers and
//! which are our estimate).

use dvslink::{RouterPowerBudget, RouterPowerComponent};
use linkdvs_bench::FigureOpts;

fn main() {
    let opts = FigureOpts::from_env_or_exit();
    let b = RouterPowerBudget::paper();
    println!("== Fig 7: router power distribution ==");
    println!("{:<14} {:>9} {:>8}", "component", "power_W", "share");
    let mut csv = String::from("component,power_w,share\n");
    for c in RouterPowerComponent::ALL {
        let w = b.component_w(c);
        let f = b.fraction(c);
        println!("{:<14} {:>9.3} {:>7.1}%", c.name(), w, f * 100.0);
        csv.push_str(&format!("{},{w},{f}\n", c.name()));
    }
    println!("{:<14} {:>9.3} {:>7.1}%", "total", b.total_w(), 100.0);
    println!();
    println!(
        "whole-network link budget: 64 routers x {:.1} W = {:.1} W (paper: 409.6 W)",
        b.component_w(RouterPowerComponent::Links),
        64.0 * b.component_w(RouterPowerComponent::Links)
    );
    opts.write_artifact("fig07_router_power.csv", &csv);
}
