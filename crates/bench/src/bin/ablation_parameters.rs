//! Ablation bench (beyond the paper): sensitivity of the history-based
//! policy to its two tuning constants — the history window `H` and the
//! EWMA weight `W` (paper Table 1 fixes H = 200, W = 3 without exploring
//! them).
//!
//! Expected shape: very short windows make the policy chase noise (more
//! transitions, more disabled time); very long windows react late to task
//! arrivals (higher latency at similar power). Higher weights approach the
//! reactive ablation; weight 1 smooths the most and reacts slowest.

use dvspolicy::{DualThresholds, HistoryDvsConfig};
use linkdvs::{PolicyKind, WorkloadKind};
use linkdvs_bench::{results_csv, run_labeled_points, FigureOpts};

const WINDOWS: [u64; 6] = [50, 100, 200, 400, 800, 1600];
const WEIGHTS: [u32; 4] = [1, 3, 7, 15];

fn main() {
    let opts = FigureOpts::from_env_or_exit();
    let rate = 0.8;
    let base = opts.apply(
        linkdvs::ExperimentConfig::paper_baseline()
            .with_workload(WorkloadKind::paper_two_level_100()),
    );
    // All variants go through one plan so they share the worker pool; the
    // grouped tables below are printed from the regrouped results.
    let mut series = Vec::new();
    for window in WINDOWS {
        series.push((
            format!("H={window}"),
            base.clone()
                .with_policy(PolicyKind::HistoryDvs(HistoryDvsConfig {
                    window,
                    weight: 3,
                    thresholds: DualThresholds::paper(),
                })),
        ));
    }
    for weight in WEIGHTS {
        series.push((
            format!("W={weight}"),
            base.clone()
                .with_policy(PolicyKind::HistoryDvs(HistoryDvsConfig {
                    window: 200,
                    weight,
                    thresholds: DualThresholds::paper(),
                })),
        ));
    }
    series.push((
        "target-utilization".to_string(),
        base.clone().with_policy(PolicyKind::TargetUtilization),
    ));
    let points = run_labeled_points(&opts, "ablation_parameters", series, rate);

    let row = |name: &str, r: &linkdvs::RunResult| {
        println!(
            "{:<14} {:>10.0} {:>10.1} {:>8.2}x",
            name,
            r.avg_latency_cycles.unwrap_or(f64::NAN),
            r.avg_power_w,
            r.power_savings
        );
    };

    println!("== Ablation: history window H at {rate} pkt/cycle (W = 3) ==");
    println!(
        "{:<14} {:>10} {:>10} {:>9}",
        "H (cycles)", "latency", "power_W", "savings"
    );
    let mut results = Vec::new();
    let mut iter = points.into_iter();
    for window in WINDOWS {
        let (label, r) = iter.next().expect("one point per window");
        row(&window.to_string(), &r);
        results.push((label, vec![r]));
    }

    println!("\n== Ablation: EWMA weight W at {rate} pkt/cycle (H = 200) ==");
    println!(
        "{:<14} {:>10} {:>10} {:>9}",
        "W", "latency", "power_W", "savings"
    );
    for weight in WEIGHTS {
        let (label, r) = iter.next().expect("one point per weight");
        row(&weight.to_string(), &r);
        results.push((label, vec![r]));
    }

    println!("\n== Extension: target-utilization policy at the same load ==");
    let (label, r) = iter.next().expect("target-utilization point");
    row("target-util", &r);
    results.push((label, vec![r]));

    opts.write_artifact("ablation_parameters.csv", &results_csv(&results));
}
