//! Ablation bench (beyond the paper): sensitivity of the history-based
//! policy to its two tuning constants — the history window `H` and the
//! EWMA weight `W` (paper Table 1 fixes H = 200, W = 3 without exploring
//! them).
//!
//! Expected shape: very short windows make the policy chase noise (more
//! transitions, more disabled time); very long windows react late to task
//! arrivals (higher latency at similar power). Higher weights approach the
//! reactive ablation; weight 1 smooths the most and reacts slowest.

use dvspolicy::{DualThresholds, HistoryDvsConfig};
use linkdvs::{run_point, PolicyKind, WorkloadKind};
use linkdvs_bench::{results_csv, FigureOpts};

fn main() {
    let opts = FigureOpts::from_args();
    let rate = 0.8;
    let base = opts.apply(
        linkdvs::ExperimentConfig::paper_baseline()
            .with_workload(WorkloadKind::paper_two_level_100()),
    );
    let mut results = Vec::new();

    println!("== Ablation: history window H at {rate} pkt/cycle (W = 3) ==");
    println!("{:<14} {:>10} {:>10} {:>9}", "H (cycles)", "latency", "power_W", "savings");
    for window in [50u64, 100, 200, 400, 800, 1600] {
        let cfg = base.clone().with_policy(PolicyKind::HistoryDvs(HistoryDvsConfig {
            window,
            weight: 3,
            thresholds: DualThresholds::paper(),
        }));
        let r = run_point(&cfg, rate);
        println!(
            "{:<14} {:>10.0} {:>10.1} {:>8.2}x",
            window,
            r.avg_latency_cycles.unwrap_or(f64::NAN),
            r.avg_power_w,
            r.power_savings
        );
        results.push((format!("H={window}"), vec![r]));
    }

    println!("\n== Ablation: EWMA weight W at {rate} pkt/cycle (H = 200) ==");
    println!("{:<14} {:>10} {:>10} {:>9}", "W", "latency", "power_W", "savings");
    for weight in [1u32, 3, 7, 15] {
        let cfg = base.clone().with_policy(PolicyKind::HistoryDvs(HistoryDvsConfig {
            window: 200,
            weight,
            thresholds: DualThresholds::paper(),
        }));
        let r = run_point(&cfg, rate);
        println!(
            "{:<14} {:>10.0} {:>10.1} {:>8.2}x",
            weight,
            r.avg_latency_cycles.unwrap_or(f64::NAN),
            r.avg_power_w,
            r.power_savings
        );
        results.push((format!("W={weight}"), vec![r]));
    }

    println!("\n== Extension: target-utilization policy at the same load ==");
    let r = run_point(&base.clone().with_policy(PolicyKind::TargetUtilization), rate);
    println!(
        "{:<14} {:>10.0} {:>10.1} {:>8.2}x",
        "target-util",
        r.avg_latency_cycles.unwrap_or(f64::NAN),
        r.avg_power_w,
        r.power_savings
    );
    results.push(("target-utilization".to_string(), vec![r]));

    opts.write_artifact("ablation_parameters.csv", &results_csv(&results));
}
