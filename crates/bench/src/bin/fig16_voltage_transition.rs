//! Fig. 16 (a–d) — network performance with DVS links of varying *voltage*
//! transition rates: voltage ramp 10 µs vs 1 µs, crossed with frequency
//! lock 100 vs 10 link cycles and mean task duration 1 ms vs 10 µs.
//!
//! Expected shapes (paper §4.4.3):
//! - (a) long tasks + slow locks: a *faster* voltage ramp can hurt — more
//!   frequent transitions mean more lock time with the link disabled;
//! - (c) long tasks + fast locks: the anomaly disappears;
//! - (b)/(d) short tasks: slow voltage ramps postpone upgrades long enough
//!   to cut throughput.

use dvslink::TransitionTiming;
use linkdvs::{PolicyKind, WorkloadKind};
use linkdvs_bench::{
    coarse_rates, format_results_table, results_csv, run_labeled_sweeps, FigureOpts,
};
use trafficgen::TaskModelConfig;

const RAMPS_US: [u64; 3] = [10, 5, 1];

fn main() {
    let opts = FigureOpts::from_env_or_exit();
    let rates = coarse_rates();
    let panels = [
        ("(a) task 1ms, lock 100", 1_000_000u64, 100u32),
        ("(b) task 10us, lock 100", 10_000, 100),
        ("(c) task 1ms, lock 10", 1_000_000, 10),
        ("(d) task 10us, lock 10", 10_000, 10),
    ];
    // One plan holding every panel x ramp series: all 12 curves fan out
    // across the worker pool together instead of panel by panel.
    let mut series = Vec::new();
    for (panel, duration, lock) in panels {
        for ramp_us in RAMPS_US {
            let mut cfg = opts.apply(
                linkdvs::ExperimentConfig::paper_baseline()
                    .with_policy(PolicyKind::HistoryDvs(Default::default()))
                    .with_workload(WorkloadKind::TwoLevel(
                        TaskModelConfig::paper_100_tasks().with_mean_duration(duration),
                    )),
            );
            cfg.network.timing = TransitionTiming::new(ramp_us * 1_000, lock);
            series.push((format!("{panel} ramp {ramp_us}us"), cfg));
        }
    }
    let all = run_labeled_sweeps(&opts, "fig16_voltage_transition", series, &rates);
    for (chunk, (panel, _, _)) in all.chunks(RAMPS_US.len()).zip(panels) {
        print!(
            "{}",
            format_results_table(
                &format!("Fig 16{panel}: voltage-transition sensitivity"),
                chunk
            )
        );
    }
    opts.write_artifact("fig16_voltage_transition.csv", &results_csv(&all));
}
