//! Shared scenario definitions for the scheduler throughput benchmark.
//!
//! Three workloads bracket the active-set scheduler's operating envelope on
//! the paper's 8x8 mesh: a loaded network where nearly every router has
//! work each cycle (worst case for the bookkeeping overhead), the paper's
//! DVS operating point where history-based policies step links up and down
//! (the representative case), and a near-idle network (best case, where the
//! fast-forward path should dominate). Both the `bench_netsim` binary and
//! the criterion `scheduler` bench drive these same definitions, so the
//! CI-gated numbers and the interactive bench measure the same thing.

use std::time::Instant;

use dvspolicy::{HistoryDvsConfig, HistoryDvsPolicy};
use netsim::{LinkPolicy, Network, NetworkConfig, SchedulerMode, StaticLevelPolicy};

/// Which of the three workloads to build.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum ScenarioKind {
    /// Sustained heavy uniform-random load under a static top-level policy.
    Loaded,
    /// Moderate bursty load at the paper operating point with
    /// history-based DVS stepping links between levels.
    DvsSweep,
    /// A handful of warm-up packets, then a long fully-idle stretch.
    NearIdle,
}

/// One benchmark workload: a name, a total simulated-cycle budget, and an
/// injection schedule.
#[derive(Debug, Clone, Copy)]
pub struct Scenario {
    /// Stable identifier used in `BENCH_netsim.json` and bench IDs.
    pub name: &'static str,
    pub kind: ScenarioKind,
    /// Simulated cycles executed per run.
    pub sim_cycles: u64,
}

/// What one timed run produced, for cross-mode sanity checks.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct RunOutcome {
    /// Wall-clock seconds for the simulation portion (setup excluded).
    pub seconds: f64,
    /// Packets delivered — must match between scheduler modes.
    pub packets_delivered: u64,
    /// Total energy bits — must match between scheduler modes.
    pub energy_bits: u64,
}

impl Scenario {
    /// The benchmark suite. `quick` shrinks cycle budgets ~8x for smoke
    /// runs; speedup ratios remain comparable, absolute cycles/sec noisier.
    pub fn suite(quick: bool) -> Vec<Scenario> {
        let scale = if quick { 8 } else { 1 };
        vec![
            Scenario {
                name: "loaded_8x8",
                kind: ScenarioKind::Loaded,
                sim_cycles: 40_000 / scale,
            },
            Scenario {
                name: "dvs_sweep_8x8",
                kind: ScenarioKind::DvsSweep,
                sim_cycles: 80_000 / scale,
            },
            Scenario {
                name: "near_idle_8x8",
                kind: ScenarioKind::NearIdle,
                sim_cycles: 200_000 / scale,
            },
        ]
    }

    fn policy(&self) -> Box<dyn LinkPolicy> {
        match self.kind {
            ScenarioKind::Loaded | ScenarioKind::NearIdle => Box::new(StaticLevelPolicy::default()),
            ScenarioKind::DvsSweep => Box::new(HistoryDvsPolicy::new(HistoryDvsConfig::paper())),
        }
    }

    /// Build the network for `mode`, warmed with any initial traffic.
    pub fn build(&self, mode: SchedulerMode) -> Network {
        let mut cfg = NetworkConfig::paper_8x8();
        cfg.scheduler = mode;
        let mut net = Network::with_policies(cfg, |_, _| self.policy()).expect("valid");
        if self.kind == ScenarioKind::NearIdle {
            // A touch of warm-up traffic so the idle stretch starts from a
            // realistic (drained, windows-armed) state, not a virgin one.
            for i in 0..10u64 {
                net.inject((i * 7 % 64) as usize, ((i * 11 + 13) % 64) as usize);
            }
        }
        net
    }

    /// Execute the injection schedule on a built network.
    pub fn run(&self, net: &mut Network) {
        let mut rng: u64 = 0x9e37_79b9_7f4a_7c15;
        let mut next = move || {
            rng ^= rng << 13;
            rng ^= rng >> 7;
            rng ^= rng << 17;
            rng
        };
        match self.kind {
            ScenarioKind::Loaded => {
                // ~0.05 packets/node/cycle offered: 16 packets every 5
                // cycles across 64 nodes keeps routers busy without
                // saturating the mesh.
                let chunks = self.sim_cycles / 5;
                for _ in 0..chunks {
                    for _ in 0..16 {
                        let s = (next() % 64) as usize;
                        let d = (next() % 64) as usize;
                        net.inject(s, if d == s { (d + 1) % 64 } else { d });
                    }
                    net.run(5);
                }
                net.run(self.sim_cycles - chunks * 5);
            }
            ScenarioKind::DvsSweep => {
                // Bursts separated by idle gaps: the paper's DVS operating
                // point, where links spend windows stepping down and back
                // up and transitions overlap quiescent stretches.
                let chunks = self.sim_cycles / 400;
                for _ in 0..chunks {
                    for _ in 0..12 {
                        let s = (next() % 64) as usize;
                        let d = (next() % 64) as usize;
                        net.inject(s, if d == s { (d + 1) % 64 } else { d });
                    }
                    net.run(400);
                }
                net.run(self.sim_cycles - chunks * 400);
            }
            ScenarioKind::NearIdle => {
                net.run(self.sim_cycles);
            }
        }
    }

    /// Build + run once under `mode`, timing only the simulation.
    pub fn timed_run(&self, mode: SchedulerMode) -> RunOutcome {
        let mut net = self.build(mode);
        let start = Instant::now();
        self.run(&mut net);
        let seconds = start.elapsed().as_secs_f64();
        RunOutcome {
            seconds,
            packets_delivered: net.stats().packets_delivered(),
            energy_bits: net.energy_j().to_bits(),
        }
    }
}
