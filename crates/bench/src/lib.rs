//! Shared plumbing for the figure-regeneration binaries.
//!
//! Every `fig*`/`table*` binary in `src/bin/` regenerates one table or
//! figure of the paper: it prints a self-describing text table to stdout
//! and, when `--out <dir>` is given, writes the same series as CSV. The
//! `--quick` flag shrinks run lengths ~8x for smoke runs (CI, `repro_all
//! --quick`); default lengths regenerate stable curve shapes in minutes.
//! Sweep points fan out across a worker pool (`--jobs <n>`, default one
//! worker per CPU) with results bit-identical to a serial run; `--progress`
//! streams per-point completion lines to stderr, and under `--out` each
//! sweep also records a `*_telemetry.jsonl` observability artifact.

use std::fmt;
use std::fs;
use std::io::Write as _;
use std::path::PathBuf;

use linkdvs::{ExperimentConfig, RunResult, RunTelemetry, SweepPlan};
use netsim::EventMask;

pub mod scheduler_scenarios;

/// The flags every figure binary accepts.
pub const USAGE: &str = "usage: <figure-bin> [--quick] [--out <dir>] [--seed <n>] [--jobs <n>] \
     [--progress] [--trace-kinds <kind,...>]";

/// A rejected command line: what was wrong with it.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct UsageError(String);

impl fmt::Display for UsageError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "{}", self.0)
    }
}

impl std::error::Error for UsageError {}

/// Command-line options shared by all figure binaries.
#[derive(Debug, Clone, PartialEq)]
pub struct FigureOpts {
    /// Shrink run lengths for a fast smoke run.
    pub quick: bool,
    /// Directory to write CSV/telemetry series into (`None` = stdout only).
    pub out_dir: Option<PathBuf>,
    /// Root RNG seed.
    pub seed: u64,
    /// Sweep worker count (`--jobs`): 0 = one worker per available CPU.
    pub jobs: usize,
    /// Stream per-point progress to stderr as points complete.
    pub progress: bool,
    /// Event kinds to trace (`--trace-kinds`); `None` = the binary's
    /// default mask.
    pub trace_kinds: Option<EventMask>,
}

impl Default for FigureOpts {
    fn default() -> Self {
        Self {
            quick: false,
            out_dir: None,
            seed: 0x11d5,
            jobs: 0,
            progress: false,
            trace_kinds: None,
        }
    }
}

impl FigureOpts {
    /// Parse from an argument iterator (exclusive of the program name).
    ///
    /// # Errors
    ///
    /// Returns a [`UsageError`] naming the offending argument when one is
    /// unknown, missing its value, or malformed.
    pub fn parse_from<I>(args: I) -> Result<Self, UsageError>
    where
        I: IntoIterator<Item = String>,
    {
        let mut opts = Self::default();
        let mut args = args.into_iter();
        while let Some(a) = args.next() {
            match a.as_str() {
                "--quick" => opts.quick = true,
                "--progress" => opts.progress = true,
                "--out" => {
                    let dir = args
                        .next()
                        .ok_or_else(|| UsageError("--out needs a directory".into()))?;
                    opts.out_dir = Some(PathBuf::from(dir));
                }
                "--seed" => {
                    let s = args
                        .next()
                        .ok_or_else(|| UsageError("--seed needs a value".into()))?;
                    opts.seed = s
                        .parse()
                        .map_err(|_| UsageError("--seed must be an integer".into()))?;
                }
                "--jobs" => {
                    let s = args
                        .next()
                        .ok_or_else(|| UsageError("--jobs needs a value".into()))?;
                    opts.jobs = s
                        .parse()
                        .map_err(|_| UsageError("--jobs must be an integer".into()))?;
                }
                "--trace-kinds" => {
                    let s = args
                        .next()
                        .ok_or_else(|| UsageError("--trace-kinds needs a value".into()))?;
                    opts.trace_kinds = Some(EventMask::from_names(&s).map_err(UsageError)?);
                }
                other => {
                    if let Some(v) = other.strip_prefix("--trace-kinds=") {
                        opts.trace_kinds = Some(EventMask::from_names(v).map_err(UsageError)?);
                    } else {
                        return Err(UsageError(format!("unknown argument {other}")));
                    }
                }
            }
        }
        Ok(opts)
    }

    /// Parse from `std::env::args`.
    ///
    /// # Errors
    ///
    /// As [`parse_from`](Self::parse_from).
    pub fn from_args() -> Result<Self, UsageError> {
        Self::parse_from(std::env::args().skip(1))
    }

    /// Parse from `std::env::args`, printing the error and usage line and
    /// exiting with status 2 on a bad command line — the figure binaries'
    /// entry point.
    pub fn from_env_or_exit() -> Self {
        Self::from_args().unwrap_or_else(|e| {
            eprintln!("error: {e}");
            eprintln!("{USAGE}");
            std::process::exit(2);
        })
    }

    /// Apply the quick/seed options to an experiment configuration.
    pub fn apply(&self, mut cfg: ExperimentConfig) -> ExperimentConfig {
        cfg = cfg.with_seed(self.seed);
        if self.quick {
            let (w, m) = (cfg.warmup_cycles / 8, cfg.measure_cycles / 8);
            cfg = cfg.with_run_lengths(w, m);
        }
        cfg
    }

    /// The event mask a tracing binary should record: the user's
    /// `--trace-kinds` selection when given, else `default`.
    pub fn trace_mask(&self, default: EventMask) -> EventMask {
        self.trace_kinds.unwrap_or(default)
    }

    /// Scale an arbitrary cycle count by the quick factor.
    pub fn cycles(&self, full: u64) -> u64 {
        if self.quick {
            full / 8
        } else {
            full
        }
    }

    /// Write `contents` to `<out>/<name>` when `--out` was given.
    pub fn write_artifact(&self, name: &str, contents: &str) {
        let Some(dir) = &self.out_dir else { return };
        fs::create_dir_all(dir).expect("create output directory");
        let path = dir.join(name);
        let mut f = fs::File::create(&path).expect("create output file");
        f.write_all(contents.as_bytes()).expect("write output file");
        eprintln!("wrote {}", path.display());
    }
}

/// Warn on stderr when `log` evicted events, naming the kinds lost: trace
/// artifacts built from the log are missing their *oldest* events, so any
/// event-derived attribution undercounts. Silent when nothing was dropped.
pub fn warn_on_trace_drops(log: &netsim::EventLog) {
    if log.dropped() == 0 {
        return;
    }
    let detail: Vec<String> = netsim::EventKind::ALL
        .iter()
        .filter(|k| log.dropped_count(**k) > 0)
        .map(|k| format!("{} x{}", k.name(), log.dropped_count(*k)))
        .collect();
    eprintln!(
        "warning: event ring evicted {} events ({}); oldest events are missing from \
         trace artifacts — raise the log capacity or narrow --trace-kinds",
        log.dropped(),
        detail.join(", ")
    );
}

/// Run labeled sweep series — the body of every curve-style figure binary.
///
/// Builds one [`SweepPlan`] from `series` × `rates`, fans it across
/// `opts.jobs` workers (bit-identical to serial execution), streams
/// per-point progress to stderr under `--progress`, writes the telemetry
/// JSON-lines artifact `<slug>_telemetry.jsonl` next to the CSVs under
/// `--out`, and returns the labeled results ready for
/// [`format_results_table`]/[`results_csv`].
pub fn run_labeled_sweeps(
    opts: &FigureOpts,
    slug: &str,
    series: Vec<(String, ExperimentConfig)>,
    rates: &[f64],
) -> Vec<(String, Vec<RunResult>)> {
    let mut plan = SweepPlan::new();
    let mut labels = Vec::with_capacity(series.len());
    for (label, cfg) in series {
        plan.push_series(cfg, rates);
        labels.push(label);
    }
    let total = plan.len();
    let progress_cb = |t: &RunTelemetry| {
        eprintln!(
            "[{:>3}/{total}] {} @ {:.2} pkt/cycle: {:.2}s, {:.2} Mcycles/s (worker {})",
            t.global_index + 1,
            labels[t.series],
            t.offered_rate,
            t.wall_s,
            t.cycles_per_sec / 1e6,
            t.worker,
        );
    };
    let progress: Option<&linkdvs::ProgressFn<'_>> = if opts.progress {
        Some(&progress_cb)
    } else {
        None
    };
    let outcomes = plan.run(opts.jobs, progress);

    let mut jsonl = String::new();
    let mut grouped: Vec<Vec<RunResult>> = (0..plan.num_series()).map(|_| Vec::new()).collect();
    for (outcome, point) in outcomes.into_iter().zip(plan.points()) {
        jsonl.push_str(&outcome.telemetry.to_json());
        jsonl.push('\n');
        grouped[point.series].push(outcome.result);
    }
    opts.write_artifact(&format!("{slug}_telemetry.jsonl"), &jsonl);
    labels.into_iter().zip(grouped).collect()
}

/// [`run_labeled_sweeps`] for single-point series — figures that place one
/// configuration at one offered rate per curve (Fig. 15, the parameter
/// ablation).
pub fn run_labeled_points(
    opts: &FigureOpts,
    slug: &str,
    series: Vec<(String, ExperimentConfig)>,
    rate: f64,
) -> Vec<(String, RunResult)> {
    run_labeled_sweeps(opts, slug, series, &[rate])
        .into_iter()
        .map(|(label, mut rs)| (label, rs.remove(0)))
        .collect()
}

/// The injection-rate grid used by the latency/power sweeps (Figs. 10–12).
pub fn sweep_rates() -> Vec<f64> {
    vec![0.1, 0.2, 0.4, 0.6, 0.8, 1.0, 1.2, 1.4, 1.6, 1.8, 2.0, 2.2]
}

/// A reduced grid for the studies that multiply configurations
/// (Figs. 13–17).
pub fn coarse_rates() -> Vec<f64> {
    vec![0.2, 0.6, 1.0, 1.4, 1.8]
}

/// Render sweep results as an aligned text table.
pub fn format_results_table(title: &str, results: &[(String, Vec<RunResult>)]) -> String {
    use std::fmt::Write;
    let mut out = String::new();
    writeln!(out, "== {title} ==").unwrap();
    writeln!(
        out,
        "{:<30} {:>6} {:>7} {:>7} {:>9} {:>9} {:>8} {:>7} {:>6}",
        "series", "rate", "inj", "thr", "lat_mean", "lat_p50", "power_W", "norm", "save"
    )
    .unwrap();
    for (label, rs) in results {
        for r in rs {
            writeln!(
                out,
                "{:<30} {:>6.2} {:>7.3} {:>7.3} {:>9.0} {:>9.0} {:>8.1} {:>7.3} {:>6.2}",
                label,
                r.offered_rate,
                r.injection_rate,
                r.throughput,
                r.avg_latency_cycles.unwrap_or(f64::NAN),
                r.p50_latency_cycles.unwrap_or(f64::NAN),
                r.avg_power_w,
                r.normalized_power,
                r.power_savings,
            )
            .unwrap();
        }
    }
    out
}

/// Render sweep results as CSV with a leading `series` column.
pub fn results_csv(results: &[(String, Vec<RunResult>)]) -> String {
    let mut out = format!("series,{}\n", RunResult::CSV_HEADER);
    for (label, rs) in results {
        for r in rs {
            out.push_str(label);
            out.push(',');
            out.push_str(&r.csv_row());
            out.push('\n');
        }
    }
    out
}

/// Find the output port maximizing `key` over its cumulative stats — e.g.
/// the most heavily used channel (`|s| s.cum_flits`) or the one with the
/// most congested downstream buffers (`|s| s.cum_occ_sum`). The paper
/// tracks "a link within the mesh" for its Figs. 3–5; selecting the busiest
/// one makes the congestion regimes actually visible at the probe.
pub fn busiest_output<T: netsim::Tracer>(
    net: &netsim::Network<T>,
    key: impl Fn(&netsim::OutputPortStats) -> u64,
) -> (netsim::NodeId, netsim::PortId) {
    let mut best = (0, 1, 0u64);
    for node in net.topology().nodes() {
        for port in 1..net.topology().ports_per_router() {
            if let Some(s) = net.output_stats(node, port) {
                let v = key(&s);
                if v >= best.2 {
                    best = (node, port, v);
                }
            }
        }
    }
    (best.0, best.1)
}

/// Drive `net` for `cycles` cycles under `wl`: poll the workload each cycle,
/// inject what it emits, step. This is the inner loop every figure binary
/// used to hand-roll.
pub fn drive_workload<T: netsim::Tracer, W: trafficgen::Workload>(
    net: &mut netsim::Network<T>,
    wl: &mut W,
    cycles: u64,
) {
    let mut pend = Vec::new();
    for _ in 0..cycles {
        wl.poll(net.time(), &mut |s, d| pend.push((s, d)));
        for (s, d) in pend.drain(..) {
            net.inject(s, d);
        }
        net.step();
    }
}

/// Sample every channel of `net` for `windows` windows of `stride` cycles
/// under `wl`, then return the per-window `metric` series of the channel
/// that maximizes `key` over its cumulative stats at the end of the run —
/// the probe loop behind Figs. 3–5, built on [`ChannelProbe::all`] instead
/// of a pre-selected port.
///
/// `metric` returning `None` skips that window (Fig. 5 drops windows in
/// which nothing departed). Selecting at the *end* means the tracked link
/// is the busiest over the whole measured interval, not just warm-up.
///
/// # Panics
///
/// Panics if `net` has no channels.
pub fn sample_busiest_channel<T: netsim::Tracer, W: trafficgen::Workload>(
    net: &mut netsim::Network<T>,
    wl: &mut W,
    stride: u64,
    windows: u64,
    metric: impl Fn(&netsim::ProbeSample) -> Option<f64>,
    key: impl Fn(&netsim::OutputPortStats) -> u64,
) -> Vec<f64> {
    let mut probes = netsim::ChannelProbe::all(net);
    assert!(!probes.is_empty(), "network has no channels to probe");
    let mut series: Vec<Vec<f64>> = vec![Vec::new(); probes.len()];
    for _ in 0..windows {
        drive_workload(net, wl, stride);
        for (probe, out) in probes.iter_mut().zip(&mut series) {
            if let Some(v) = metric(&probe.sample(net)) {
                out.push(v);
            }
        }
    }
    let (node, port) = busiest_output(net, key);
    let idx = probes
        .iter()
        .position(|p| (p.node(), p.port()) == (node, port))
        .expect("busiest port is probed");
    series.swap_remove(idx)
}

/// Bucket `values` in `[0, 1]` into `bins` equal bins (out-of-range values
/// clamp into the last bin), as the paper's Figs. 3–5 histograms do for
/// utilization samples.
pub fn unit_histogram(values: &[f64], bins: usize) -> Vec<(f64, usize)> {
    let mut counts = vec![0usize; bins];
    for &v in values {
        let i = ((v.max(0.0) * bins as f64) as usize).min(bins - 1);
        counts[i] += 1;
    }
    counts
        .into_iter()
        .enumerate()
        .map(|(i, c)| (i as f64 / bins as f64, c))
        .collect()
}

/// Format a [`unit_histogram`] as an ASCII bar chart.
pub fn format_histogram(title: &str, hist: &[(f64, usize)]) -> String {
    use std::fmt::Write;
    let total: usize = hist.iter().map(|(_, c)| c).sum();
    let max = hist.iter().map(|(_, c)| *c).max().unwrap_or(1).max(1);
    let mut out = String::new();
    writeln!(out, "-- {title} (n = {total}) --").unwrap();
    for (lo, c) in hist {
        let bar = "#".repeat(c * 50 / max);
        writeln!(out, "{lo:>5.2} | {c:>6} {bar}").unwrap();
    }
    out
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn unit_histogram_buckets_and_clamps() {
        let h = unit_histogram(&[0.0, 0.05, 0.5, 0.99, 1.0, 1.7], 10);
        assert_eq!(h.len(), 10);
        assert_eq!(h[0].1, 2); // 0.0, 0.05
        assert_eq!(h[5].1, 1); // 0.5
        assert_eq!(h[9].1, 3); // 0.99, 1.0 (clamped), 1.7 (clamped)
        let total: usize = h.iter().map(|(_, c)| c).sum();
        assert_eq!(total, 6);
    }

    #[test]
    fn histogram_format_contains_counts() {
        let h = unit_histogram(&[0.1; 7], 4);
        let s = format_histogram("test", &h);
        assert!(s.contains("n = 7"));
        assert!(s.contains('#'));
    }

    #[test]
    fn rates_are_ascending() {
        let r = sweep_rates();
        assert!(r.windows(2).all(|w| w[0] < w[1]));
        let c = coarse_rates();
        assert!(c.windows(2).all(|w| w[0] < w[1]));
    }

    fn parse(args: &[&str]) -> Result<FigureOpts, UsageError> {
        FigureOpts::parse_from(args.iter().map(|s| s.to_string()))
    }

    #[test]
    fn parse_defaults() {
        let opts = parse(&[]).unwrap();
        assert_eq!(opts, FigureOpts::default());
        assert!(!opts.quick);
        assert!(!opts.progress);
        assert_eq!(opts.seed, 0x11d5);
        assert_eq!(opts.jobs, 0);
        assert_eq!(opts.out_dir, None);
    }

    #[test]
    fn parse_all_flags() {
        let opts = parse(&[
            "--quick",
            "--out",
            "results/ci",
            "--seed",
            "42",
            "--jobs",
            "8",
            "--progress",
        ])
        .unwrap();
        assert!(opts.quick);
        assert!(opts.progress);
        assert_eq!(opts.seed, 42);
        assert_eq!(opts.jobs, 8);
        assert_eq!(
            opts.out_dir.as_deref(),
            Some(std::path::Path::new("results/ci"))
        );
    }

    #[test]
    fn parse_rejects_bad_input() {
        for (args, needle) in [
            (&["--frobnicate"][..], "unknown argument --frobnicate"),
            (&["--seed"][..], "--seed needs a value"),
            (&["--seed", "banana"][..], "--seed must be an integer"),
            (&["--jobs"][..], "--jobs needs a value"),
            (&["--jobs", "-1"][..], "--jobs must be an integer"),
            (&["--out"][..], "--out needs a directory"),
        ] {
            let err = parse(args).unwrap_err();
            assert_eq!(err.to_string(), needle, "args: {args:?}");
        }
    }

    #[test]
    fn parse_trace_kinds_both_spellings() {
        use netsim::EventKind;
        let spaced = parse(&["--trace-kinds", "dvs_lock,packet_attribution"]).unwrap();
        let joined = parse(&["--trace-kinds=dvs_lock,packet_attribution"]).unwrap();
        assert_eq!(spaced, joined);
        let mask = spaced.trace_kinds.unwrap();
        assert!(mask.contains(EventKind::DvsLock));
        assert!(mask.contains(EventKind::PacketAttribution));
        assert!(!mask.contains(EventKind::FlitInject));
        // The selection overrides the binary's default.
        assert_eq!(spaced.trace_mask(EventMask::ALL), mask);
        // Without the flag the default wins.
        assert_eq!(
            parse(&[]).unwrap().trace_mask(EventMask::DVS),
            EventMask::DVS
        );
    }

    #[test]
    fn parse_trace_kinds_rejects_unknown_kind() {
        let err = parse(&["--trace-kinds", "dvs_lock,bogus"]).unwrap_err();
        let msg = err.to_string();
        assert!(msg.contains("bogus"), "names the offender: {msg}");
        assert!(
            msg.contains("packet_attribution") && msg.contains("dvs"),
            "lists valid kinds and groups: {msg}"
        );
        assert!(parse(&["--trace-kinds"])
            .unwrap_err()
            .to_string()
            .contains("needs a value"));
    }

    #[test]
    fn quick_scales_run_lengths() {
        let opts = parse(&["--quick", "--seed", "7"]).unwrap();
        let cfg = opts.apply(linkdvs::ExperimentConfig::paper_baseline());
        assert_eq!(cfg.seed, 7);
        assert_eq!(cfg.warmup_cycles, 600_000 / 8);
        assert_eq!(cfg.measure_cycles, 400_000 / 8);
        assert_eq!(opts.cycles(800), 100);
    }
}
