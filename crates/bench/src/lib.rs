//! Shared plumbing for the figure-regeneration binaries.
//!
//! Every `fig*`/`table*` binary in `src/bin/` regenerates one table or
//! figure of the paper: it prints a self-describing text table to stdout
//! and, when `--out <dir>` is given, writes the same series as CSV. The
//! `--quick` flag shrinks run lengths ~8x for smoke runs (CI, `repro_all
//! --quick`); default lengths regenerate stable curve shapes in minutes.

use std::fs;
use std::io::Write as _;
use std::path::PathBuf;

use linkdvs::{ExperimentConfig, RunResult};

/// Command-line options shared by all figure binaries.
#[derive(Debug, Clone)]
pub struct FigureOpts {
    /// Shrink run lengths for a fast smoke run.
    pub quick: bool,
    /// Directory to write CSV series into (`None` = stdout only).
    pub out_dir: Option<PathBuf>,
    /// Root RNG seed.
    pub seed: u64,
}

impl FigureOpts {
    /// Parse from `std::env::args`. Unknown arguments abort with a usage
    /// message.
    pub fn from_args() -> Self {
        let mut opts = Self {
            quick: false,
            out_dir: None,
            seed: 0x11d5,
        };
        let mut args = std::env::args().skip(1);
        while let Some(a) = args.next() {
            match a.as_str() {
                "--quick" => opts.quick = true,
                "--out" => {
                    let dir = args
                        .next()
                        .unwrap_or_else(|| usage("--out needs a directory"));
                    opts.out_dir = Some(PathBuf::from(dir));
                }
                "--seed" => {
                    let s = args.next().unwrap_or_else(|| usage("--seed needs a value"));
                    opts.seed = s
                        .parse()
                        .unwrap_or_else(|_| usage("--seed must be an integer"));
                }
                other => usage(&format!("unknown argument {other}")),
            }
        }
        opts
    }

    /// Apply the quick/seed options to an experiment configuration.
    pub fn apply(&self, mut cfg: ExperimentConfig) -> ExperimentConfig {
        cfg = cfg.with_seed(self.seed);
        if self.quick {
            let (w, m) = (cfg.warmup_cycles / 8, cfg.measure_cycles / 8);
            cfg = cfg.with_run_lengths(w, m);
        }
        cfg
    }

    /// Scale an arbitrary cycle count by the quick factor.
    pub fn cycles(&self, full: u64) -> u64 {
        if self.quick {
            full / 8
        } else {
            full
        }
    }

    /// Write `contents` to `<out>/<name>` when `--out` was given.
    pub fn write_artifact(&self, name: &str, contents: &str) {
        let Some(dir) = &self.out_dir else { return };
        fs::create_dir_all(dir).expect("create output directory");
        let path = dir.join(name);
        let mut f = fs::File::create(&path).expect("create output file");
        f.write_all(contents.as_bytes()).expect("write output file");
        eprintln!("wrote {}", path.display());
    }
}

fn usage(msg: &str) -> ! {
    eprintln!("error: {msg}");
    eprintln!("usage: <figure-bin> [--quick] [--out <dir>] [--seed <n>]");
    std::process::exit(2);
}

/// The injection-rate grid used by the latency/power sweeps (Figs. 10–12).
pub fn sweep_rates() -> Vec<f64> {
    vec![0.1, 0.2, 0.4, 0.6, 0.8, 1.0, 1.2, 1.4, 1.6, 1.8, 2.0, 2.2]
}

/// A reduced grid for the studies that multiply configurations
/// (Figs. 13–17).
pub fn coarse_rates() -> Vec<f64> {
    vec![0.2, 0.6, 1.0, 1.4, 1.8]
}

/// Render sweep results as an aligned text table.
pub fn format_results_table(title: &str, results: &[(String, Vec<RunResult>)]) -> String {
    use std::fmt::Write;
    let mut out = String::new();
    writeln!(out, "== {title} ==").unwrap();
    writeln!(
        out,
        "{:<30} {:>6} {:>7} {:>7} {:>9} {:>9} {:>8} {:>7} {:>6}",
        "series", "rate", "inj", "thr", "lat_mean", "lat_p50", "power_W", "norm", "save"
    )
    .unwrap();
    for (label, rs) in results {
        for r in rs {
            writeln!(
                out,
                "{:<30} {:>6.2} {:>7.3} {:>7.3} {:>9.0} {:>9.0} {:>8.1} {:>7.3} {:>6.2}",
                label,
                r.offered_rate,
                r.injection_rate,
                r.throughput,
                r.avg_latency_cycles.unwrap_or(f64::NAN),
                r.p50_latency_cycles.unwrap_or(f64::NAN),
                r.avg_power_w,
                r.normalized_power,
                r.power_savings,
            )
            .unwrap();
        }
    }
    out
}

/// Render sweep results as CSV with a leading `series` column.
pub fn results_csv(results: &[(String, Vec<RunResult>)]) -> String {
    let mut out = format!("series,{}\n", RunResult::CSV_HEADER);
    for (label, rs) in results {
        for r in rs {
            out.push_str(label);
            out.push(',');
            out.push_str(&r.csv_row());
            out.push('\n');
        }
    }
    out
}

/// Find the output port maximizing `key` over its cumulative stats — e.g.
/// the most heavily used channel (`|s| s.cum_flits`) or the one with the
/// most congested downstream buffers (`|s| s.cum_occ_sum`). The paper
/// tracks "a link within the mesh" for its Figs. 3–5; selecting the busiest
/// one makes the congestion regimes actually visible at the probe.
pub fn busiest_output(
    net: &netsim::Network,
    key: impl Fn(&netsim::OutputPortStats) -> u64,
) -> (netsim::NodeId, netsim::PortId) {
    let mut best = (0, 1, 0u64);
    for node in net.topology().nodes() {
        for port in 1..net.topology().ports_per_router() {
            if let Some(s) = net.output_stats(node, port) {
                let v = key(&s);
                if v >= best.2 {
                    best = (node, port, v);
                }
            }
        }
    }
    (best.0, best.1)
}

/// Bucket `values` in `[0, 1]` into `bins` equal bins (out-of-range values
/// clamp into the last bin), as the paper's Figs. 3–5 histograms do for
/// utilization samples.
pub fn unit_histogram(values: &[f64], bins: usize) -> Vec<(f64, usize)> {
    let mut counts = vec![0usize; bins];
    for &v in values {
        let i = ((v.max(0.0) * bins as f64) as usize).min(bins - 1);
        counts[i] += 1;
    }
    counts
        .into_iter()
        .enumerate()
        .map(|(i, c)| (i as f64 / bins as f64, c))
        .collect()
}

/// Format a [`unit_histogram`] as an ASCII bar chart.
pub fn format_histogram(title: &str, hist: &[(f64, usize)]) -> String {
    use std::fmt::Write;
    let total: usize = hist.iter().map(|(_, c)| c).sum();
    let max = hist.iter().map(|(_, c)| *c).max().unwrap_or(1).max(1);
    let mut out = String::new();
    writeln!(out, "-- {title} (n = {total}) --").unwrap();
    for (lo, c) in hist {
        let bar = "#".repeat(c * 50 / max);
        writeln!(out, "{lo:>5.2} | {c:>6} {bar}").unwrap();
    }
    out
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn unit_histogram_buckets_and_clamps() {
        let h = unit_histogram(&[0.0, 0.05, 0.5, 0.99, 1.0, 1.7], 10);
        assert_eq!(h.len(), 10);
        assert_eq!(h[0].1, 2); // 0.0, 0.05
        assert_eq!(h[5].1, 1); // 0.5
        assert_eq!(h[9].1, 3); // 0.99, 1.0 (clamped), 1.7 (clamped)
        let total: usize = h.iter().map(|(_, c)| c).sum();
        assert_eq!(total, 6);
    }

    #[test]
    fn histogram_format_contains_counts() {
        let h = unit_histogram(&[0.1; 7], 4);
        let s = format_histogram("test", &h);
        assert!(s.contains("n = 7"));
        assert!(s.contains('#'));
    }

    #[test]
    fn rates_are_ascending() {
        let r = sweep_rates();
        assert!(r.windows(2).all(|w| w[0] < w[1]));
        let c = coarse_rates();
        assert!(c.windows(2).all(|w| w[0] < w[1]));
    }
}
