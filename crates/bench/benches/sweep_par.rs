//! Criterion benchmark of the parallel sweep runner: the same 8-point
//! sweep executed serially and through `sweep_par` at increasing worker
//! counts. The jobs=4 case should come in well under half the serial
//! wall-clock on a 4+-core machine; jobs=1 measures the (small) scheduling
//! overhead of the pooled path.

use criterion::{criterion_group, criterion_main, Criterion, Throughput};
use linkdvs::{sweep, sweep_par, ExperimentConfig, PolicyKind, WorkloadKind};
use netsim::Topology;

const RATES: [f64; 8] = [0.1, 0.3, 0.5, 0.7, 0.9, 1.1, 1.3, 1.5];

fn bench_cfg() -> ExperimentConfig {
    let mut cfg = ExperimentConfig::paper_baseline()
        .with_run_lengths(2_000, 10_000)
        .with_policy(PolicyKind::HistoryDvs(Default::default()));
    cfg.network.topology = Topology::mesh(4, 2).unwrap();
    cfg.workload = WorkloadKind::UniformRandom;
    cfg
}

fn sweep_scaling(c: &mut Criterion) {
    let cfg = bench_cfg();
    let mut g = c.benchmark_group("sweep_par");
    g.sample_size(10);
    g.throughput(Throughput::Elements(RATES.len() as u64));
    g.bench_function("serial_8pt", |b| b.iter(|| sweep(&cfg, &RATES)));
    for jobs in [1usize, 2, 4] {
        g.bench_function(format!("jobs{jobs}_8pt"), |b| {
            b.iter(|| sweep_par(&cfg, &RATES, jobs))
        });
    }
    g.finish();
}

criterion_group!(benches, sweep_scaling);
criterion_main!(benches);
