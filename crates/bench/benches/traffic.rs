//! Criterion micro-benchmarks of the workload generators and estimators.

use criterion::{criterion_group, criterion_main, BatchSize, Criterion, Throughput};
use netsim::Topology;
use rand::rngs::SmallRng;
use rand::SeedableRng;
use trafficgen::{
    rs_hurst, variance_time_hurst, OnOffParams, Pareto, SelfSimilarSource, TaskModelConfig,
    TaskWorkload, UniformRandomWorkload, Workload,
};

fn pareto(c: &mut Criterion) {
    let mut g = c.benchmark_group("traffic");
    g.bench_function("pareto_sample", |b| {
        let p = Pareto::new(1.4, 1000.0);
        let mut rng = SmallRng::seed_from_u64(1);
        b.iter(|| p.sample(&mut rng));
    });
    g.finish();
}

fn onoff(c: &mut Criterion) {
    let mut g = c.benchmark_group("traffic");
    g.throughput(Throughput::Elements(10_000));
    g.bench_function("self_similar_10k_cycles", |b| {
        b.iter_batched(
            || SelfSimilarSource::new(128, 0.02, OnOffParams::paper(), 3),
            |mut s| {
                let mut total = 0u64;
                for t in 0..10_000u64 {
                    total += u64::from(s.emissions_until(t));
                }
                total
            },
            BatchSize::SmallInput,
        );
    });
    g.finish();
}

fn task_workload(c: &mut Criterion) {
    let topo = Topology::mesh(8, 2).expect("valid");
    let mut g = c.benchmark_group("traffic");
    g.throughput(Throughput::Elements(10_000));
    g.bench_function("two_level_10k_cycles", |b| {
        b.iter_batched(
            || TaskWorkload::new(TaskModelConfig::paper_100_tasks(), &topo, 1.0, 5),
            |mut wl| {
                let mut n = 0u64;
                for t in 0..10_000u64 {
                    wl.poll(t, &mut |_, _| n += 1);
                }
                n
            },
            BatchSize::SmallInput,
        );
    });
    g.bench_function("uniform_10k_cycles", |b| {
        b.iter_batched(
            || UniformRandomWorkload::new(64, 1.0, 5),
            |mut wl| {
                let mut n = 0u64;
                for t in 0..10_000u64 {
                    wl.poll(t, &mut |_, _| n += 1);
                }
                n
            },
            BatchSize::SmallInput,
        );
    });
    g.finish();
}

fn hurst(c: &mut Criterion) {
    let mut rng = SmallRng::seed_from_u64(9);
    let series: Vec<f64> = (0..16_384)
        .map(|_| rand::Rng::gen::<f64>(&mut rng))
        .collect();
    let mut g = c.benchmark_group("estimators");
    g.bench_function("variance_time_hurst_16k", |b| {
        b.iter(|| variance_time_hurst(&series));
    });
    g.bench_function("rs_hurst_16k", |b| {
        b.iter(|| rs_hurst(&series));
    });
    g.finish();
}

criterion_group!(benches, pareto, onoff, task_workload, hurst);
criterion_main!(benches);
