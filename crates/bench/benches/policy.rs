//! Criterion micro-benchmarks of the DVS policy and channel model — the
//! per-window cost the paper argues is small enough for 500-gate hardware.

use criterion::{criterion_group, criterion_main, BatchSize, Criterion};
use dvslink::{DvsChannel, RegulatorParams, TransitionTiming, VfTable};
use dvspolicy::{Ewma, HistoryDvsConfig, HistoryDvsPolicy};
use netsim::{LinkPolicy, WindowMeasures};

fn measures(lu: f64, now: u64) -> WindowMeasures {
    WindowMeasures {
        window_cycles: 200,
        flits_sent: (lu * 200.0) as u64,
        link_slots: 200,
        buf_occupancy_sum: 500,
        buf_capacity: 128,
        now,
    }
}

fn policy_window(c: &mut Criterion) {
    let mut g = c.benchmark_group("policy");
    g.bench_function("history_on_window", |b| {
        let mut p = HistoryDvsPolicy::new(HistoryDvsConfig::paper());
        let mut ch = DvsChannel::new(
            VfTable::paper(),
            TransitionTiming::paper_conservative(),
            RegulatorParams::paper(),
            5,
        );
        let mut now = 0u64;
        b.iter(|| {
            now += 200;
            ch.advance(now);
            p.on_window(&measures(0.35, now), &mut ch);
        });
    });
    g.finish();
}

fn channel_transition(c: &mut Criterion) {
    let mut g = c.benchmark_group("channel");
    g.bench_function("full_round_trip", |b| {
        b.iter_batched(
            || {
                DvsChannel::new(
                    VfTable::paper(),
                    TransitionTiming::paper_conservative(),
                    RegulatorParams::paper(),
                    5,
                )
            },
            |mut ch| {
                ch.request_step_down(0).expect("stable");
                ch.advance(100_000);
                ch.request_step_up(100_000).expect("stable");
                ch.advance(200_000);
                ch.level()
            },
            BatchSize::SmallInput,
        );
    });
    g.bench_function("advance_stable", |b| {
        let mut ch = DvsChannel::new(
            VfTable::paper(),
            TransitionTiming::paper_conservative(),
            RegulatorParams::paper(),
            9,
        );
        let mut now = 0u64;
        b.iter(|| {
            now += 1;
            ch.advance(now);
        });
    });
    g.finish();
}

fn ewma(c: &mut Criterion) {
    let mut g = c.benchmark_group("policy");
    g.bench_function("ewma_update", |b| {
        let mut e = Ewma::paper();
        let mut x = 0.1f64;
        b.iter(|| {
            x = (x * 1.1) % 1.0;
            e.update(x)
        });
    });
    g.finish();
}

criterion_group!(benches, policy_window, channel_transition, ewma);
criterion_main!(benches);
