//! End-to-end experiment-point benchmarks: the cost of one measured
//! operating point at reduced scale, for each policy kind. These are the
//! building blocks every figure sweep is made of.

use criterion::{criterion_group, criterion_main, Criterion};
use linkdvs::{run_point, ExperimentConfig, PolicyKind, WorkloadKind};
use netsim::Topology;

fn small_cfg(policy: PolicyKind) -> ExperimentConfig {
    let mut cfg = ExperimentConfig::paper_baseline()
        .with_policy(policy)
        .with_workload(WorkloadKind::UniformRandom)
        .with_run_lengths(2_000, 8_000);
    cfg.network.topology = Topology::mesh(4, 2).expect("valid");
    cfg
}

fn experiment_points(c: &mut Criterion) {
    let mut g = c.benchmark_group("figures");
    g.sample_size(10);
    for (name, policy) in [
        ("point_no_dvs", PolicyKind::NoDvs),
        (
            "point_history_dvs",
            PolicyKind::HistoryDvs(Default::default()),
        ),
        ("point_reactive_dvs", PolicyKind::Reactive),
    ] {
        let cfg = small_cfg(policy);
        g.bench_function(name, |b| b.iter(|| run_point(&cfg, 0.3)));
    }
    g.finish();
}

criterion_group!(benches, experiment_points);
criterion_main!(benches);
