//! Tracer-overhead benchmarks: the same loaded 8x8 run as
//! `simulator::loaded_8x8_1k_cycles`, once with the default `NoopTracer`
//! (which must monomorphize to the pre-tracing code — compare against that
//! baseline across commits) and once with a live `EventLog`, bounding what
//! full event capture costs.

use criterion::{criterion_group, criterion_main, BatchSize, Criterion, Throughput};
use netsim::{EventLog, EventMask, Network, NetworkConfig, StaticLevelPolicy};

fn loaded_net<T: netsim::Tracer>(tracer: T) -> Network<T> {
    let mut net = Network::with_tracer(
        NetworkConfig::paper_8x8(),
        |_, _| Box::new(StaticLevelPolicy::default()),
        tracer,
    )
    .expect("valid");
    for i in 0..500u64 {
        net.inject((i * 7 % 64) as usize, ((i * 11 + 13) % 64) as usize);
    }
    net
}

fn tracer_overhead(c: &mut Criterion) {
    let mut g = c.benchmark_group("tracing");
    g.throughput(Throughput::Elements(1_000));
    g.bench_function("noop_8x8_1k_cycles", |b| {
        b.iter_batched(
            || loaded_net(netsim::NoopTracer),
            |mut net| net.run(1_000),
            BatchSize::SmallInput,
        );
    });
    g.bench_function("event_log_8x8_1k_cycles", |b| {
        b.iter_batched(
            || loaded_net(EventLog::with_capacity(100_000)),
            |mut net| net.run(1_000),
            BatchSize::SmallInput,
        );
    });
    g.bench_function("event_log_dvs_mask_8x8_1k_cycles", |b| {
        // Masked capture still pays per-event counting, but stores almost
        // nothing — the realistic "trace DVS only" configuration.
        b.iter_batched(
            || loaded_net(EventLog::with_capacity(100_000).with_mask(EventMask::DVS)),
            |mut net| net.run(1_000),
            BatchSize::SmallInput,
        );
    });
    g.finish();
}

criterion_group!(benches, tracer_overhead);
criterion_main!(benches);
