//! Criterion benchmarks of the cycle-loop schedulers: full-scan vs.
//! active-set on the same three workloads the `bench_netsim` CI gate runs
//! (loaded, paper DVS operating point, near-idle). Throughput is reported
//! in simulated cycles per second.

use criterion::{criterion_group, criterion_main, BatchSize, Criterion, Throughput};
use linkdvs_bench::scheduler_scenarios::Scenario;
use netsim::SchedulerMode;

fn scheduler_modes(c: &mut Criterion) {
    for scenario in Scenario::suite(true) {
        let mut g = c.benchmark_group("scheduler");
        g.throughput(Throughput::Elements(scenario.sim_cycles));
        for (label, mode) in [
            ("full_scan", SchedulerMode::FullScan),
            ("active_set", SchedulerMode::ActiveSet),
        ] {
            g.bench_function(format!("{}/{label}", scenario.name), |b| {
                b.iter_batched(
                    || scenario.build(mode),
                    |mut net| scenario.run(&mut net),
                    BatchSize::PerIteration,
                );
            });
        }
        g.finish();
    }
}

criterion_group!(benches, scheduler_modes);
criterion_main!(benches);
