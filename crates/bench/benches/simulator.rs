//! Criterion micro-benchmarks of the flit-level simulator core.

use criterion::{criterion_group, criterion_main, BatchSize, Criterion, Throughput};
use netsim::{Network, NetworkConfig, Topology};

fn idle_network(c: &mut Criterion) {
    let mut g = c.benchmark_group("simulator");
    g.throughput(Throughput::Elements(1_000));
    g.bench_function("idle_8x8_1k_cycles", |b| {
        b.iter_batched(
            || Network::new(NetworkConfig::paper_8x8()).expect("valid"),
            |mut net| net.run(1_000),
            BatchSize::SmallInput,
        );
    });
    g.finish();
}

fn loaded_network(c: &mut Criterion) {
    let mut g = c.benchmark_group("simulator");
    g.throughput(Throughput::Elements(1_000));
    g.bench_function("loaded_8x8_1k_cycles", |b| {
        b.iter_batched(
            || {
                let mut net = Network::new(NetworkConfig::paper_8x8()).expect("valid");
                for i in 0..500u64 {
                    net.inject((i * 7 % 64) as usize, ((i * 11 + 13) % 64) as usize);
                }
                net
            },
            |mut net| net.run(1_000),
            BatchSize::SmallInput,
        );
    });
    g.finish();
}

fn injection(c: &mut Criterion) {
    let mut g = c.benchmark_group("simulator");
    g.bench_function("inject_packet", |b| {
        let mut net = Network::new(NetworkConfig::paper_8x8()).expect("valid");
        let mut i = 0u64;
        b.iter(|| {
            i += 1;
            net.inject((i % 64) as usize, ((i * 13 + 7) % 64) as usize)
        });
    });
    g.finish();
}

fn topology_math(c: &mut Criterion) {
    let topo = Topology::mesh(8, 2).expect("valid");
    let mut g = c.benchmark_group("topology");
    g.bench_function("distance_all_pairs", |b| {
        b.iter(|| {
            let mut sum = 0u32;
            for a in topo.nodes() {
                for z in topo.nodes() {
                    sum += topo.distance(a, z);
                }
            }
            sum
        });
    });
    g.finish();
}

criterion_group!(
    benches,
    idle_network,
    loaded_network,
    injection,
    topology_math
);
criterion_main!(benches);
