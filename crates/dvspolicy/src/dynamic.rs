use dvslink::DvsChannel;
use netsim::{LinkPolicy, PolicyObservation, WindowMeasures};

use crate::{HistoryDvsConfig, HistoryDvsPolicy};

/// The paper's §4.4.2 extension: dynamically adjusted threshold settings.
///
/// The paper observes that Table 2's settings trade latency for power
/// monotonically and "point to the possibility of dynamically adjusting
/// threshold settings". This policy implements that suggestion: it runs the
/// ordinary history-based policy, but every `adjust_every` windows it moves
/// the light-load threshold setting one step more aggressive (toward VI)
/// while the port has seen sustained slack, and one step more conservative
/// (toward I) when predicted buffer utilization indicates rising pressure.
#[derive(Debug, Clone)]
pub struct DynamicThresholdPolicy {
    inner: HistoryDvsPolicy,
    setting: usize,
    adjust_every: u64,
    windows_seen: u64,
    /// Buffer-utilization level treated as "pressure" for tuning purposes.
    pressure_bu: f64,
    /// Link-utilization level treated as "slack" for tuning purposes.
    slack_lu: f64,
    adjustments: u64,
}

impl DynamicThresholdPolicy {
    /// Create a dynamic-threshold policy starting at Table 2 setting
    /// `initial_setting` (`1..=6`), re-tuning every `adjust_every` windows.
    ///
    /// # Panics
    ///
    /// Panics if `initial_setting` is outside `1..=6` or `adjust_every`
    /// is zero.
    pub fn new(initial_setting: usize, adjust_every: u64) -> Self {
        assert!(
            (1..=6).contains(&initial_setting),
            "initial setting must be a Table 2 setting (1..=6)"
        );
        assert!(adjust_every > 0, "adjustment period must be positive");
        Self {
            inner: HistoryDvsPolicy::new(HistoryDvsConfig::paper_table2(initial_setting)),
            setting: initial_setting,
            adjust_every,
            windows_seen: 0,
            pressure_bu: 0.3,
            slack_lu: 0.2,
            adjustments: 0,
        }
    }

    /// Paper defaults: start at setting III, re-tune every 50 windows
    /// (10 k cycles at `H = 200`).
    pub fn paper() -> Self {
        Self::new(3, 50)
    }

    /// The Table 2 setting currently active.
    pub fn setting(&self) -> usize {
        self.setting
    }

    /// How many times the setting changed.
    pub fn adjustments(&self) -> u64 {
        self.adjustments
    }

    fn retune(&mut self) {
        let lu = self.inner.predicted_link_utilization().unwrap_or(0.0);
        let bu = self.inner.predicted_buffer_utilization().unwrap_or(0.0);
        let new = if bu > self.pressure_bu && self.setting > 1 {
            self.setting - 1
        } else if lu < self.slack_lu && bu < self.pressure_bu / 2.0 && self.setting < 6 {
            self.setting + 1
        } else {
            self.setting
        };
        if new != self.setting {
            self.setting = new;
            self.adjustments += 1;
            // Preserve the EWMA state across the threshold change.
            let mut replacement = HistoryDvsPolicy::new(HistoryDvsConfig::paper_table2(new));
            std::mem::swap(&mut replacement, &mut self.inner);
            self.inner = Self::transplant(replacement, new);
        }
    }

    fn transplant(old: HistoryDvsPolicy, setting: usize) -> HistoryDvsPolicy {
        // Rebuild with the new thresholds, carrying the EWMA state across so
        // the swap does not erase the accumulated history.
        let mut fresh = HistoryDvsPolicy::new(HistoryDvsConfig::paper_table2(setting));
        if let (Some(lu), Some(bu)) = (
            old.predicted_link_utilization(),
            old.predicted_buffer_utilization(),
        ) {
            let mut lu_e = crate::Ewma::new(fresh.config().weight);
            lu_e.update(lu);
            let mut bu_e = crate::Ewma::new(fresh.config().weight);
            bu_e.update(bu);
            fresh.set_predictors(lu_e, bu_e);
        }
        fresh
    }
}

impl LinkPolicy for DynamicThresholdPolicy {
    fn window_cycles(&self) -> u64 {
        self.inner.window_cycles()
    }

    fn on_window(&mut self, measures: &WindowMeasures, channel: &mut DvsChannel) {
        self.inner.on_window(measures, channel);
        self.windows_seen += 1;
        if self.windows_seen.is_multiple_of(self.adjust_every) {
            self.retune();
        }
    }

    fn observe(&self) -> Option<PolicyObservation> {
        self.inner.observe()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use dvslink::{RegulatorParams, TransitionTiming, VfTable};

    fn channel_at(level: usize) -> DvsChannel {
        DvsChannel::new(
            VfTable::paper(),
            TransitionTiming::paper_conservative(),
            RegulatorParams::paper(),
            level,
        )
    }

    fn measures(lu: f64, bu: f64, now: u64) -> WindowMeasures {
        WindowMeasures {
            window_cycles: 200,
            flits_sent: (lu * 200.0).round() as u64,
            link_slots: 200,
            buf_occupancy_sum: (bu * 200.0 * 128.0).round() as u64,
            buf_capacity: 128,
            now,
        }
    }

    #[test]
    fn sustained_slack_moves_toward_aggressive_settings() {
        let mut p = DynamicThresholdPolicy::new(3, 5);
        let mut ch = channel_at(0); // already slowest; no transitions interfere
        for i in 0..30 {
            p.on_window(&measures(0.05, 0.0, 200 * (i + 1)), &mut ch);
        }
        assert!(p.setting() > 3, "setting {} did not increase", p.setting());
        assert!(p.adjustments() > 0);
    }

    #[test]
    fn buffer_pressure_moves_toward_conservative_settings() {
        let mut p = DynamicThresholdPolicy::new(3, 5);
        let mut ch = channel_at(9); // already fastest
        for i in 0..30 {
            p.on_window(&measures(0.9, 0.6, 200 * (i + 1)), &mut ch);
        }
        assert!(p.setting() < 3, "setting {} did not decrease", p.setting());
    }

    #[test]
    fn settings_stay_in_table2_range() {
        let mut p = DynamicThresholdPolicy::new(1, 2);
        let mut ch = channel_at(9);
        for i in 0..100 {
            p.on_window(&measures(0.9, 0.9, 200 * (i + 1)), &mut ch);
            assert!((1..=6).contains(&p.setting()));
        }
        let mut p = DynamicThresholdPolicy::new(6, 2);
        let mut ch = channel_at(0);
        for i in 0..100 {
            p.on_window(&measures(0.0, 0.0, 200 * (i + 1)), &mut ch);
            assert!((1..=6).contains(&p.setting()));
        }
    }

    #[test]
    #[should_panic(expected = "Table 2 setting")]
    fn bad_initial_setting_panics() {
        let _ = DynamicThresholdPolicy::new(0, 5);
    }
}
