/// The paper's exponentially weighted average predictor (Eq. 5):
///
/// ```text
/// Par_predict = (W · Par_current + Par_past) / (W + 1)
/// ```
///
/// where `Par_past` is the previous *prediction* (not the previous raw
/// sample). With `W = 3` the divide is a right-shift and the numerator a
/// shift-and-add — the hardware realization the paper synthesizes.
///
/// # Example
///
/// ```
/// use dvspolicy::Ewma;
///
/// let mut e = Ewma::new(3);
/// assert_eq!(e.update(0.8), 0.8); // first sample seeds the history
/// let second = e.update(0.0);
/// assert!((second - 0.2).abs() < 1e-12); // (3*0.0 + 0.8) / 4
/// ```
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct Ewma {
    weight: u32,
    past: Option<f64>,
}

impl Ewma {
    /// Create a predictor with weight `W` on the current sample.
    pub fn new(weight: u32) -> Self {
        Self { weight, past: None }
    }

    /// The paper's `W = 3`.
    pub fn paper() -> Self {
        Self::new(3)
    }

    /// The configured weight.
    pub fn weight(&self) -> u32 {
        self.weight
    }

    /// Feed one sample; returns the new prediction. The first sample seeds
    /// the history directly.
    pub fn update(&mut self, current: f64) -> f64 {
        let predict = match self.past {
            None => current,
            Some(past) => (f64::from(self.weight) * current + past) / f64::from(self.weight + 1),
        };
        self.past = Some(predict);
        predict
    }

    /// The latest prediction, if any sample has been seen.
    pub fn prediction(&self) -> Option<f64> {
        self.past
    }

    /// Forget all history.
    pub fn reset(&mut self) {
        self.past = None;
    }
}

impl Default for Ewma {
    fn default() -> Self {
        Self::paper()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn first_sample_seeds() {
        let mut e = Ewma::paper();
        assert_eq!(e.prediction(), None);
        assert_eq!(e.update(0.5), 0.5);
        assert_eq!(e.prediction(), Some(0.5));
    }

    #[test]
    fn follows_paper_recurrence() {
        let mut e = Ewma::new(3);
        e.update(1.0);
        // (3*0 + 1)/4 = 0.25
        assert!((e.update(0.0) - 0.25).abs() < 1e-12);
        // (3*0 + 0.25)/4 = 0.0625
        assert!((e.update(0.0) - 0.0625).abs() < 1e-12);
    }

    #[test]
    fn converges_to_constant_input() {
        let mut e = Ewma::new(3);
        e.update(0.0);
        let mut last = 0.0;
        for _ in 0..50 {
            last = e.update(0.8);
        }
        assert!((last - 0.8).abs() < 1e-3);
    }

    #[test]
    fn higher_weight_tracks_faster() {
        let mut slow = Ewma::new(1);
        let mut fast = Ewma::new(7);
        slow.update(0.0);
        fast.update(0.0);
        let s = slow.update(1.0);
        let f = fast.update(1.0);
        assert!(
            f > s,
            "weight 7 ({f}) should track a step faster than weight 1 ({s})"
        );
    }

    #[test]
    fn stays_within_input_bounds() {
        let mut e = Ewma::paper();
        let inputs = [0.9, 0.1, 0.4, 0.0, 1.0, 0.7];
        for v in inputs {
            let p = e.update(v);
            assert!((0.0..=1.0).contains(&p));
        }
    }

    #[test]
    fn reset_clears_history() {
        let mut e = Ewma::paper();
        e.update(0.9);
        e.reset();
        assert_eq!(e.prediction(), None);
        assert_eq!(e.update(0.1), 0.1);
    }
}
