use dvslink::{DvsChannel, NoiseModel, TransitionError, VfTable};
use netsim::{LinkPolicy, PolicyObservation, WindowMeasures};

/// Reliability constraint on DVS decisions: a noise model plus a bit-error
/// rate the link must not exceed at any commanded operating point.
///
/// The paper assumes the whole table stays at 10⁻¹⁵ BER, so its policies can
/// scale freely; in noisier environments (higher supply noise, tighter
/// swings) the *lowest* levels of a table may violate the application's BER
/// budget, and power-minded policies would happily park links there. The
/// guard computes the lowest admissible level — the **reliability floor** —
/// and [`GuardedPolicy`] enforces it around any inner policy.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct ReliabilityGuard {
    noise: NoiseModel,
    target_ber: f64,
}

impl ReliabilityGuard {
    /// Guard requiring every commanded level to achieve `target_ber` (e.g.
    /// `1e-15`) under `noise`.
    ///
    /// # Panics
    ///
    /// Panics if `target_ber` is not in `(0, 1)`.
    pub fn new(noise: NoiseModel, target_ber: f64) -> Self {
        assert!(
            target_ber > 0.0 && target_ber < 1.0,
            "BER target must be in (0, 1)"
        );
        Self { noise, target_ber }
    }

    /// The BER this guard enforces.
    pub fn target_ber(&self) -> f64 {
        self.target_ber
    }

    /// The lowest level of `table` that still meets the BER target.
    ///
    /// BER decreases monotonically with level in any well-formed table
    /// (voltage and margin grow with level faster than frequency erodes the
    /// timing slack), so the floor is found by scanning down from the top
    /// and stopping at the first violation. If even the top level misses the
    /// target the floor is the top level: the guard pins the link at its
    /// most reliable point rather than pretending a safe level exists.
    pub fn floor_level(&self, table: &VfTable) -> usize {
        let mut floor = table.top();
        for i in (0..=table.top()).rev() {
            let level = table.get(i).expect("index within table");
            if self.noise.ber(level) <= self.target_ber {
                floor = i;
            } else {
                break;
            }
        }
        floor
    }
}

/// A [`LinkPolicy`] decorator that keeps any inner policy above a
/// [`ReliabilityGuard`]'s floor.
///
/// On every window it (re)establishes the channel's minimum level (so the
/// inner policy's step-down requests at the floor fail with
/// `AtMinLevel`, which every policy in this crate already tolerates), and
/// if the channel somehow sits *below* the floor — e.g. the floor is being
/// introduced on a running network — it steps up toward it, taking
/// precedence over the inner policy for that window.
pub struct GuardedPolicy {
    guard: ReliabilityGuard,
    inner: Box<dyn LinkPolicy>,
    floor: Option<usize>,
}

impl GuardedPolicy {
    /// Wrap `inner` so it never drives the channel below `guard`'s floor.
    pub fn new(guard: ReliabilityGuard, inner: Box<dyn LinkPolicy>) -> Self {
        Self {
            guard,
            inner,
            floor: None,
        }
    }

    /// The floor computed for the channel's table, once known (after the
    /// first window).
    pub fn floor(&self) -> Option<usize> {
        self.floor
    }
}

impl LinkPolicy for GuardedPolicy {
    fn window_cycles(&self) -> u64 {
        self.inner.window_cycles()
    }

    fn on_window(&mut self, measures: &WindowMeasures, channel: &mut DvsChannel) {
        let floor = *self
            .floor
            .get_or_insert_with(|| self.guard.floor_level(channel.table()));
        channel.set_min_level(floor);
        if channel.level() < floor && channel.is_stable() {
            match channel.request_step_up(measures.now) {
                Ok(()) | Err(TransitionError::AtMaxLevel) => {}
                Err(e) => unreachable!("stable channel rejected step up: {e}"),
            }
            return;
        }
        self.inner.on_window(measures, channel);
    }

    fn observe(&self) -> Option<PolicyObservation> {
        self.inner.observe()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::ReactiveDvsPolicy;
    use dvslink::{RegulatorParams, TransitionTiming};

    fn channel_at(level: usize) -> DvsChannel {
        DvsChannel::new(
            VfTable::paper(),
            TransitionTiming::paper_conservative(),
            RegulatorParams::paper(),
            level,
        )
    }

    fn idle_measures(now: u64) -> WindowMeasures {
        WindowMeasures {
            window_cycles: 200,
            flits_sent: 0,
            link_slots: 200,
            buf_occupancy_sum: 0,
            buf_capacity: 128,
            now,
        }
    }

    #[test]
    fn paper_noise_floor_is_level_zero() {
        // The paper's table meets 1e-15 everywhere, so the guard is inert.
        let g = ReliabilityGuard::new(NoiseModel::paper(), 1e-15);
        assert_eq!(g.floor_level(&VfTable::paper()), 0);
    }

    #[test]
    fn noisy_environment_raises_the_floor() {
        let noisy = NoiseModel {
            sigma_v: 0.18,
            ..NoiseModel::paper()
        };
        let g = ReliabilityGuard::new(noisy, 1e-6);
        let floor = g.floor_level(&VfTable::paper());
        assert!(floor > 0, "noisy link cannot run the lowest levels");
        let table = VfTable::paper();
        assert!(noisy.ber(table.get(floor).unwrap()) <= 1e-6);
        assert!(noisy.ber(table.get(floor - 1).unwrap()) > 1e-6);
        // Tighter targets give higher (or equal) floors; at 1e-12 not even
        // the top level qualifies, so the guard pins the link there.
        let tighter = ReliabilityGuard::new(noisy, 1e-12).floor_level(&table);
        assert!(tighter >= floor);
        assert_eq!(tighter, table.top());
    }

    #[test]
    fn hopeless_table_floors_at_the_top() {
        let hopeless = NoiseModel {
            sigma_v: 10.0,
            ..NoiseModel::paper()
        };
        let g = ReliabilityGuard::new(hopeless, 1e-15);
        assert_eq!(g.floor_level(&VfTable::paper()), VfTable::paper().top());
    }

    #[test]
    fn guarded_policy_stops_descent_at_the_floor() {
        let noisy = NoiseModel {
            sigma_v: 0.18,
            ..NoiseModel::paper()
        };
        let guard = ReliabilityGuard::new(noisy, 1e-6);
        let floor = guard.floor_level(&VfTable::paper());
        assert!(floor < 9, "test needs room to descend");
        let mut p = GuardedPolicy::new(guard, Box::new(ReactiveDvsPolicy::paper()));
        let mut ch = channel_at(9);
        // An endlessly idle link: the reactive policy wants level 0, the
        // guard must hold it at the floor.
        let mut now = 0;
        for _ in 0..200 {
            now += 200;
            ch.advance(now);
            if ch.is_stable() {
                p.on_window(&idle_measures(now), &mut ch);
            }
        }
        while !ch.is_stable() {
            now += 200;
            ch.advance(now);
        }
        assert_eq!(ch.level(), floor);
        assert_eq!(ch.min_level(), floor);
        assert_eq!(p.floor(), Some(floor));
    }

    #[test]
    fn guarded_policy_recovers_a_channel_below_the_floor() {
        let noisy = NoiseModel {
            sigma_v: 0.18,
            ..NoiseModel::paper()
        };
        let guard = ReliabilityGuard::new(noisy, 1e-6);
        let floor = guard.floor_level(&VfTable::paper());
        assert!(floor >= 2, "test needs headroom below the floor");
        // Channel starts below the floor (as if the guard were switched on
        // mid-run): the guard steps it back up, overriding the idle-driven
        // step-down the inner policy would issue.
        let mut p = GuardedPolicy::new(guard, Box::new(ReactiveDvsPolicy::paper()));
        let mut ch = channel_at(0);
        let mut now = 0;
        // Up-steps pay the ~10 µs voltage ramp each, so give the guard
        // plenty of windows to climb the whole way.
        for _ in 0..2_000 {
            now += 200;
            ch.advance(now);
            if ch.is_stable() {
                p.on_window(&idle_measures(now), &mut ch);
            }
        }
        while !ch.is_stable() {
            now += 200;
            ch.advance(now);
        }
        assert_eq!(ch.level(), floor);
    }

    #[test]
    #[should_panic(expected = "BER target")]
    fn zero_target_panics() {
        let _ = ReliabilityGuard::new(NoiseModel::paper(), 0.0);
    }
}
