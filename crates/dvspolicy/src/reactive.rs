use dvslink::{DvsChannel, TransitionError};
use netsim::{LinkPolicy, PolicyObservation, WindowMeasures};

use crate::DualThresholds;

/// Ablation of [`crate::HistoryDvsPolicy`]: the same four-threshold decision
/// rule applied to each window's *raw* measures, with no exponentially
/// weighted history.
///
/// The paper argues history is what filters out transient fluctuations; this
/// policy exists to quantify that claim (it reacts to every burst and dip,
/// so it transitions far more often for little extra benefit — see the
/// ablation benches).
#[derive(Debug, Clone)]
pub struct ReactiveDvsPolicy {
    window: u64,
    thresholds: DualThresholds,
    steps_up: u64,
    steps_down: u64,
    /// Most recent informative window measures, for tracing. A memoryless
    /// policy's "prediction" is just the last raw sample.
    last_lu: Option<f64>,
    last_bu: Option<f64>,
}

impl ReactiveDvsPolicy {
    /// Create a reactive policy with history window `window` and the given
    /// thresholds.
    ///
    /// # Panics
    ///
    /// Panics if `window` is zero.
    pub fn new(window: u64, thresholds: DualThresholds) -> Self {
        assert!(window > 0, "history window must be positive");
        Self {
            window,
            thresholds,
            steps_up: 0,
            steps_down: 0,
            last_lu: None,
            last_bu: None,
        }
    }

    /// The paper's window and thresholds, minus the history.
    pub fn paper() -> Self {
        Self::new(200, DualThresholds::paper())
    }

    /// Step-up decisions taken so far.
    pub fn steps_up(&self) -> u64 {
        self.steps_up
    }

    /// Step-down decisions taken so far.
    pub fn steps_down(&self) -> u64 {
        self.steps_down
    }
}

impl LinkPolicy for ReactiveDvsPolicy {
    fn window_cycles(&self) -> u64 {
        self.window
    }

    fn on_window(&mut self, measures: &WindowMeasures, channel: &mut DvsChannel) {
        if measures.link_slots > 0 {
            self.last_lu = Some(measures.link_utilization());
        }
        self.last_bu = Some(measures.buffer_utilization());
        if !channel.is_stable() {
            return;
        }
        // No transmission opportunity -> no utilization information.
        if measures.link_slots == 0 {
            return;
        }
        let t = self.thresholds.select(measures.buffer_utilization());
        let lu = measures.link_utilization();
        if lu < t.low() {
            match channel.request_step_down(measures.now) {
                Ok(()) => self.steps_down += 1,
                Err(TransitionError::AtMinLevel) => {}
                Err(e) => unreachable!("stable channel rejected step down: {e}"),
            }
        } else if lu > t.high() {
            match channel.request_step_up(measures.now) {
                Ok(()) => self.steps_up += 1,
                Err(TransitionError::AtMaxLevel) => {}
                Err(e) => unreachable!("stable channel rejected step up: {e}"),
            }
        }
    }

    fn observe(&self) -> Option<PolicyObservation> {
        let lu = self.last_lu?;
        let bu = self.last_bu.unwrap_or(0.0);
        let t = self.thresholds.select(bu);
        Some(PolicyObservation {
            predicted_lu: lu,
            predicted_bu: bu,
            threshold_low: t.low(),
            threshold_high: t.high(),
            congested: bu >= self.thresholds.b_congested(),
        })
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use dvslink::{RegulatorParams, TransitionTiming, VfTable};

    fn channel_at(level: usize) -> DvsChannel {
        DvsChannel::new(
            VfTable::paper(),
            TransitionTiming::paper_conservative(),
            RegulatorParams::paper(),
            level,
        )
    }

    fn measures(lu: f64, bu: f64, now: u64) -> WindowMeasures {
        WindowMeasures {
            window_cycles: 200,
            flits_sent: (lu * 200.0).round() as u64,
            link_slots: 200,
            buf_occupancy_sum: (bu * 200.0 * 128.0).round() as u64,
            buf_capacity: 128,
            now,
        }
    }

    #[test]
    fn reacts_immediately_to_a_single_window() {
        let mut p = ReactiveDvsPolicy::paper();
        let mut ch = channel_at(9);
        // History-based would need several idle windows from a high EWMA;
        // reactive drops on the first one.
        p.on_window(&measures(0.0, 0.0, 200), &mut ch);
        assert_eq!(ch.target_level(), Some(8));
        assert_eq!(p.steps_down(), 1);
    }

    #[test]
    fn same_thresholds_as_history_policy() {
        let mut p = ReactiveDvsPolicy::paper();
        let mut ch = channel_at(5);
        p.on_window(&measures(0.35, 0.0, 200), &mut ch);
        assert!(ch.is_stable(), "middle band holds");
        p.on_window(&measures(0.5, 0.9, 400), &mut ch);
        assert_eq!(ch.target_level(), Some(4), "congested thresholds apply");
    }

    #[test]
    fn observe_reports_last_raw_window() {
        let mut p = ReactiveDvsPolicy::paper();
        assert!(p.observe().is_none(), "no window seen yet");
        let mut ch = channel_at(5);
        p.on_window(&measures(0.35, 0.2, 200), &mut ch);
        let o = p.observe().unwrap();
        assert!((o.predicted_lu - 0.35).abs() < 1e-9);
        assert!((o.predicted_bu - 0.2).abs() < 1e-9);
        assert!(!o.congested);
        // Raw, not smoothed: the next window fully replaces the last.
        p.on_window(&measures(0.8, 0.9, 400), &mut ch);
        let o = p.observe().unwrap();
        assert!((o.predicted_lu - 0.8).abs() < 1e-9);
        assert!(o.congested);
        assert_eq!(o.threshold_low, 0.6);
    }

    #[test]
    #[should_panic(expected = "history window")]
    fn zero_window_panics() {
        let _ = ReactiveDvsPolicy::new(0, DualThresholds::paper());
    }
}
