//! History-based dynamic voltage scaling policies for network links.
//!
//! This crate implements the *contribution* of the HPCA 2003 paper: the
//! distributed, history-based DVS policy (its Algorithm 1) that sits at each
//! router output port, predicts near-future traffic from past link and
//! input-buffer utilization, and steps the port's [`dvslink::DvsChannel`] up
//! or down one level at a time.
//!
//! The policy combines two locally observable measures:
//!
//! - **link utilization** (`LU`, paper Eq. 2) — the primary signal, highly
//!   sensitive to load below saturation but ambiguous near congestion (it
//!   *drops* when the downstream buffers fill up);
//! - **input-buffer utilization** (`BU`, paper Eq. 3) — a congestion litmus
//!   that switches the policy to a more aggressive threshold pair when the
//!   downstream router is backed up (link delay is hidden by queueing there,
//!   so lowering frequency is nearly free).
//!
//! Both are smoothed by an exponentially weighted average (paper Eq. 5)
//! with a hardware-friendly weight (`W = 3` makes the divide a shift).
//!
//! Besides the paper's policy, the crate provides baselines and ablations:
//! [`ReactiveDvsPolicy`] (no history — acts on the raw window measures) and
//! [`DynamicThresholdPolicy`] (the paper's §4.4.2 suggestion of adapting the
//! threshold set at runtime), plus the [`HardwareCost`] model from §3.3.
//!
//! # Example
//!
//! ```
//! use dvspolicy::{HistoryDvsConfig, HistoryDvsPolicy};
//! use netsim::{Network, NetworkConfig};
//!
//! let cfg = HistoryDvsConfig::paper();
//! let mut net = Network::with_policies(NetworkConfig::paper_8x8(), |_, _| {
//!     Box::new(HistoryDvsPolicy::new(cfg.clone()))
//! })
//! .unwrap();
//! // An idle network drifts toward the lowest level.
//! for _ in 0..200_000 {
//!     net.step();
//! }
//! assert!(net.mean_channel_level() < 1.0);
//! ```

#![forbid(unsafe_code)]
#![warn(missing_docs)]

mod dynamic;
mod ewma;
mod guard;
mod hardware;
mod history;
mod reactive;
mod target;
mod thresholds;

pub use dynamic::DynamicThresholdPolicy;
pub use ewma::Ewma;
pub use guard::{GuardedPolicy, ReliabilityGuard};
pub use hardware::HardwareCost;
pub use history::{HistoryDvsConfig, HistoryDvsPolicy};
pub use reactive::ReactiveDvsPolicy;
pub use target::TargetUtilizationPolicy;
pub use thresholds::{DualThresholds, ThresholdError, ThresholdSet};
