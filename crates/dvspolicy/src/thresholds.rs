use std::error::Error;
use std::fmt;

/// Error constructing thresholds.
#[derive(Debug, Clone, Copy, PartialEq)]
pub enum ThresholdError {
    /// A threshold lies outside `[0, 1]` or is not finite.
    OutOfRange(f64),
    /// `low` does not lie strictly below `high`.
    Inverted {
        /// The configured low threshold.
        low: f64,
        /// The configured high threshold.
        high: f64,
    },
}

impl fmt::Display for ThresholdError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            ThresholdError::OutOfRange(v) => write!(f, "threshold {v} outside [0, 1]"),
            ThresholdError::Inverted { low, high } => {
                write!(f, "low threshold {low} not below high threshold {high}")
            }
        }
    }
}

impl Error for ThresholdError {}

/// A `(low, high)` utilization threshold pair: predicted link utilization
/// below `low` steps the link slower, above `high` steps it faster, and in
/// between leaves it alone.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct ThresholdSet {
    low: f64,
    high: f64,
}

impl ThresholdSet {
    /// Create a pair with `0 ≤ low < high ≤ 1`.
    ///
    /// # Errors
    ///
    /// Returns [`ThresholdError`] otherwise.
    pub fn new(low: f64, high: f64) -> Result<Self, ThresholdError> {
        for v in [low, high] {
            if !v.is_finite() || !(0.0..=1.0).contains(&v) {
                return Err(ThresholdError::OutOfRange(v));
            }
        }
        if low >= high {
            return Err(ThresholdError::Inverted { low, high });
        }
        Ok(Self { low, high })
    }

    /// The six light-load threshold settings of the paper's Table 2,
    /// `setting` in `1..=6` (I–VI). Setting III is the paper's default.
    ///
    /// # Panics
    ///
    /// Panics if `setting` is outside `1..=6`.
    pub fn paper_table2(setting: usize) -> Self {
        let (low, high) = match setting {
            1 => (0.20, 0.30),
            2 => (0.25, 0.35),
            3 => (0.30, 0.40),
            4 => (0.35, 0.45),
            5 => (0.40, 0.50),
            6 => (0.50, 0.60),
            _ => panic!("Table 2 settings are I..=VI (1..=6), got {setting}"),
        };
        Self::new(low, high).expect("Table 2 values are valid")
    }

    /// Threshold below which the link steps slower.
    pub fn low(&self) -> f64 {
        self.low
    }

    /// Threshold above which the link steps faster.
    pub fn high(&self) -> f64 {
        self.high
    }
}

/// The paper's four-threshold scheme: one [`ThresholdSet`] used while the
/// network is lightly loaded (`TL`) and a more aggressive one while the
/// downstream router looks congested (`TH`), selected by comparing predicted
/// buffer utilization against `b_congested`.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct DualThresholds {
    light: ThresholdSet,
    congested: ThresholdSet,
    b_congested: f64,
}

impl DualThresholds {
    /// Combine a light-load and a congested threshold pair.
    ///
    /// # Errors
    ///
    /// Returns [`ThresholdError::OutOfRange`] if `b_congested` is outside
    /// `[0, 1]`.
    pub fn new(
        light: ThresholdSet,
        congested: ThresholdSet,
        b_congested: f64,
    ) -> Result<Self, ThresholdError> {
        if !b_congested.is_finite() || !(0.0..=1.0).contains(&b_congested) {
            return Err(ThresholdError::OutOfRange(b_congested));
        }
        Ok(Self {
            light,
            congested,
            b_congested,
        })
    }

    /// The paper's Table 1 values: `TL = (0.3, 0.4)`, `TH = (0.6, 0.7)`,
    /// `B_congested = 0.5`.
    pub fn paper() -> Self {
        Self::new(
            ThresholdSet::new(0.3, 0.4).expect("valid"),
            ThresholdSet::new(0.6, 0.7).expect("valid"),
            0.5,
        )
        .expect("paper thresholds are valid")
    }

    /// The paper's defaults with the light-load pair replaced by a Table 2
    /// setting (used by the §4.4.2 trade-off study).
    pub fn paper_with_table2(setting: usize) -> Self {
        Self {
            light: ThresholdSet::paper_table2(setting),
            ..Self::paper()
        }
    }

    /// The pair active at `buffer_utilization`.
    pub fn select(&self, buffer_utilization: f64) -> &ThresholdSet {
        if buffer_utilization < self.b_congested {
            &self.light
        } else {
            &self.congested
        }
    }

    /// Light-load pair (`TL`).
    pub fn light(&self) -> &ThresholdSet {
        &self.light
    }

    /// Congested pair (`TH`).
    pub fn congested(&self) -> &ThresholdSet {
        &self.congested
    }

    /// Buffer-utilization level at which the congested pair takes over.
    pub fn b_congested(&self) -> f64 {
        self.b_congested
    }
}

impl Default for DualThresholds {
    fn default() -> Self {
        Self::paper()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn paper_values_match_table1() {
        let d = DualThresholds::paper();
        assert_eq!((d.light().low(), d.light().high()), (0.3, 0.4));
        assert_eq!((d.congested().low(), d.congested().high()), (0.6, 0.7));
        assert_eq!(d.b_congested(), 0.5);
    }

    #[test]
    fn selection_switches_at_b_congested() {
        let d = DualThresholds::paper();
        assert_eq!(d.select(0.0), d.light());
        assert_eq!(d.select(0.49), d.light());
        assert_eq!(d.select(0.5), d.congested());
        assert_eq!(d.select(1.0), d.congested());
    }

    #[test]
    fn table2_settings_match_paper_and_grow_monotonically() {
        let expected = [
            (0.20, 0.30),
            (0.25, 0.35),
            (0.30, 0.40),
            (0.35, 0.45),
            (0.40, 0.50),
            (0.50, 0.60),
        ];
        for (i, (lo, hi)) in expected.iter().enumerate() {
            let t = ThresholdSet::paper_table2(i + 1);
            assert_eq!((t.low(), t.high()), (*lo, *hi));
        }
        // Setting III is the paper default.
        let d = DualThresholds::paper();
        let iii = ThresholdSet::paper_table2(3);
        assert_eq!(d.light(), &iii);
    }

    #[test]
    #[should_panic(expected = "Table 2")]
    fn table2_setting_out_of_range_panics() {
        let _ = ThresholdSet::paper_table2(7);
    }

    #[test]
    fn invalid_thresholds_rejected() {
        assert!(matches!(
            ThresholdSet::new(-0.1, 0.5),
            Err(ThresholdError::OutOfRange(_))
        ));
        assert!(matches!(
            ThresholdSet::new(0.2, 1.5),
            Err(ThresholdError::OutOfRange(_))
        ));
        assert!(matches!(
            ThresholdSet::new(0.5, 0.4),
            Err(ThresholdError::Inverted { .. })
        ));
        assert!(matches!(
            ThresholdSet::new(0.4, 0.4),
            Err(ThresholdError::Inverted { .. })
        ));
        let t = ThresholdSet::new(0.1, 0.9).unwrap();
        assert!(matches!(
            DualThresholds::new(t, t, 2.0),
            Err(ThresholdError::OutOfRange(_))
        ));
    }

    #[test]
    fn error_display_is_informative() {
        let e = ThresholdSet::new(0.5, 0.4).unwrap_err();
        assert!(e.to_string().contains("0.5"));
        assert!(e.to_string().contains("0.4"));
    }
}
