use dvslink::DvsChannel;
use netsim::{LinkPolicy, PolicyObservation, WindowMeasures};

use crate::Ewma;

/// A "future work" extension of the paper's policy: instead of comparing
/// utilization against fixed thresholds and stepping ±1, estimate the
/// *demand* in flits/cycle from the EWMA-smoothed measures and head for the
/// slowest level whose capacity keeps utilization at a set point.
///
/// Transitions still move one level at a time (that is a hardware
/// constraint of the link, not of the policy), but the direction is chosen
/// against an absolute target instead of a local band, which avoids the
/// threshold policy's hunting between adjacent levels whose utilizations
/// straddle the band.
#[derive(Debug, Clone)]
pub struct TargetUtilizationPolicy {
    window: u64,
    /// Desired utilization of the chosen level, in `(0, 1)`.
    set_point: f64,
    demand: Ewma,
    steps: u64,
}

impl TargetUtilizationPolicy {
    /// Create a policy with history window `window` cycles targeting
    /// `set_point` utilization.
    ///
    /// # Panics
    ///
    /// Panics if `window` is zero or `set_point` is not in `(0, 1)`.
    pub fn new(window: u64, set_point: f64) -> Self {
        assert!(window > 0, "history window must be positive");
        assert!(
            set_point > 0.0 && set_point < 1.0,
            "set point must be in (0, 1)"
        );
        Self {
            window,
            set_point,
            demand: Ewma::paper(),
            steps: 0,
        }
    }

    /// Paper-comparable defaults: `H = 200`, 35% utilization set point (the
    /// middle of the paper's TL band).
    pub fn paper_comparable() -> Self {
        Self::new(200, 0.35)
    }

    /// Level transitions initiated so far.
    pub fn steps(&self) -> u64 {
        self.steps
    }

    /// The level this policy would pick for `demand` flits/cycle on
    /// `channel`'s table: the slowest level whose capacity at the set point
    /// covers the demand.
    fn target_level(&self, channel: &DvsChannel, demand: f64) -> usize {
        let table = channel.table();
        for (i, level) in table.iter().enumerate() {
            let capacity = f64::from(level.freq_x9()) / 9000.0;
            if capacity * self.set_point >= demand {
                return i;
            }
        }
        table.top()
    }
}

impl LinkPolicy for TargetUtilizationPolicy {
    fn window_cycles(&self) -> u64 {
        self.window
    }

    fn on_window(&mut self, measures: &WindowMeasures, channel: &mut DvsChannel) {
        // Demand in flits per router cycle: flits sent per wall-clock cycle.
        // Under credit stalls this *under*-estimates true demand, like the
        // paper's LU; the EWMA smooths bursts the same way.
        if measures.window_cycles == 0 {
            return;
        }
        let raw = measures.flits_sent as f64 / measures.window_cycles as f64;
        let demand = self.demand.update(raw);
        if !channel.is_stable() {
            return;
        }
        let target = self.target_level(channel, demand);
        let result = match target.cmp(&channel.level()) {
            std::cmp::Ordering::Greater => channel.request_step_up(measures.now),
            std::cmp::Ordering::Less => channel.request_step_down(measures.now),
            std::cmp::Ordering::Equal => return,
        };
        if result.is_ok() {
            self.steps += 1;
        }
    }

    fn observe(&self) -> Option<PolicyObservation> {
        // No threshold band: the set point is both edges, and congestion
        // plays no role in this policy's decisions.
        Some(PolicyObservation {
            predicted_lu: self.demand.prediction()?,
            predicted_bu: 0.0,
            threshold_low: self.set_point,
            threshold_high: self.set_point,
            congested: false,
        })
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use dvslink::{RegulatorParams, TransitionTiming, VfTable};

    fn channel_at(level: usize) -> DvsChannel {
        DvsChannel::new(
            VfTable::paper(),
            TransitionTiming::paper_conservative(),
            RegulatorParams::paper(),
            level,
        )
    }

    fn measures(flits_per_cycle: f64, now: u64) -> WindowMeasures {
        WindowMeasures {
            window_cycles: 200,
            flits_sent: (flits_per_cycle * 200.0).round() as u64,
            link_slots: 200,
            buf_occupancy_sum: 0,
            buf_capacity: 128,
            now,
        }
    }

    #[test]
    fn idle_heads_to_bottom_and_busy_to_top() {
        let mut p = TargetUtilizationPolicy::paper_comparable();
        let mut ch = channel_at(9);
        p.on_window(&measures(0.0, 200), &mut ch);
        assert_eq!(ch.target_level(), Some(8), "idle heads down");

        let mut p2 = TargetUtilizationPolicy::paper_comparable();
        let mut ch2 = channel_at(0);
        // 0.9 flits/cycle needs the top level even at 100% utilization.
        for i in 0..10 {
            ch2.advance(200_000 * (i + 1));
            p2.on_window(&measures(0.9, 200_000 * (i + 1)), &mut ch2);
        }
        assert!(
            ch2.level() > 0 || ch2.target_level().is_some(),
            "sustained demand must climb"
        );
    }

    #[test]
    fn chooses_the_slowest_sufficient_level() {
        let p = TargetUtilizationPolicy::new(200, 0.35);
        let ch = channel_at(5);
        // demand 0.1 flits/cycle: need capacity >= 0.286. Level 1 has
        // 0.222, level 2 has 0.319 -> target level 2.
        assert_eq!(p.target_level(&ch, 0.1), 2);
        // Tiny demand -> bottom; impossible demand -> top.
        assert_eq!(p.target_level(&ch, 0.001), 0);
        assert_eq!(p.target_level(&ch, 5.0), 9);
    }

    #[test]
    fn no_hunting_at_a_stable_demand() {
        // Demand sits exactly between two levels' band edges under the
        // threshold policy; the target policy must settle and stop stepping.
        let mut p = TargetUtilizationPolicy::paper_comparable();
        let mut ch = channel_at(2);
        let mut now = 0;
        for _ in 0..50 {
            now += 200_000; // long enough for any transition to settle
            ch.advance(now);
            p.on_window(&measures(0.1, now), &mut ch);
        }
        ch.advance(now + 200_000);
        assert_eq!(ch.level(), 2, "settled at the sufficient level");
        assert!(p.steps() <= 2, "stepped {} times", p.steps());
    }

    #[test]
    fn empty_window_feeds_zero_demand_into_the_ewma() {
        // Regression (paper Eq. 5 semantics): a window with no flits is a
        // real zero-demand observation — the EWMA must decay toward 0, not
        // freeze at the last busy estimate.
        let mut p = TargetUtilizationPolicy::paper_comparable();
        let mut ch = channel_at(9);
        p.on_window(&measures(0.4, 200), &mut ch);
        let busy = p.observe().unwrap().predicted_lu;
        assert!((busy - 0.4).abs() < 1e-9);
        p.on_window(&measures(0.0, 400), &mut ch);
        let after = p.observe().unwrap().predicted_lu;
        assert!(
            (after - 0.1).abs() < 1e-9,
            "zero-traffic window must fold 0.0 in per Eq. 5: {after}"
        );
    }

    #[test]
    #[should_panic(expected = "set point")]
    fn bad_set_point_panics() {
        let _ = TargetUtilizationPolicy::new(200, 1.5);
    }
}
