use dvslink::{DvsChannel, TransitionError};
use netsim::{LinkPolicy, PolicyObservation, WindowMeasures};

use crate::{DualThresholds, Ewma};

/// Configuration of the history-based DVS policy (paper Table 1 defaults).
#[derive(Debug, Clone, PartialEq)]
pub struct HistoryDvsConfig {
    /// History window `H` in router cycles.
    pub window: u64,
    /// EWMA weight `W` on the current sample.
    pub weight: u32,
    /// The four-threshold scheme.
    pub thresholds: DualThresholds,
}

impl HistoryDvsConfig {
    /// The paper's parameters: `W = 3`, `H = 200`, Table 1 thresholds.
    pub fn paper() -> Self {
        Self {
            window: 200,
            weight: 3,
            thresholds: DualThresholds::paper(),
        }
    }

    /// Paper defaults with the light-load thresholds replaced by Table 2
    /// setting `1..=6` (the §4.4.2 trade-off study).
    pub fn paper_table2(setting: usize) -> Self {
        Self {
            thresholds: DualThresholds::paper_with_table2(setting),
            ..Self::paper()
        }
    }
}

impl Default for HistoryDvsConfig {
    fn default() -> Self {
        Self::paper()
    }
}

/// The paper's Algorithm 1: a distributed history-based DVS policy living at
/// one router output port.
///
/// Every history window it folds the window's link utilization (`LU`) and
/// downstream input-buffer utilization (`BU`) into EWMA predictions, selects
/// the light-load or congested threshold pair by comparing predicted `BU`
/// against `B_congested`, and then steps the channel one level down (when
/// `LU` is below the low threshold), one level up (above the high
/// threshold), or not at all.
///
/// Predictions update every window; *actions* apply only when the channel is
/// stable — the paper's conservative links spend 10 µs per voltage ramp, far
/// longer than `H = 200` cycles, so decisions made mid-transition would act
/// on stale state. Step requests at the top/bottom level are no-ops.
#[derive(Debug, Clone)]
pub struct HistoryDvsPolicy {
    config: HistoryDvsConfig,
    lu: Ewma,
    bu: Ewma,
    steps_up: u64,
    steps_down: u64,
}

impl HistoryDvsPolicy {
    /// Create a policy instance (one per output port).
    pub fn new(config: HistoryDvsConfig) -> Self {
        let w = config.weight;
        Self {
            config,
            lu: Ewma::new(w),
            bu: Ewma::new(w),
            steps_up: 0,
            steps_down: 0,
        }
    }

    /// The configuration in use.
    pub fn config(&self) -> &HistoryDvsConfig {
        &self.config
    }

    /// Latest link-utilization prediction.
    pub fn predicted_link_utilization(&self) -> Option<f64> {
        self.lu.prediction()
    }

    /// Latest buffer-utilization prediction.
    pub fn predicted_buffer_utilization(&self) -> Option<f64> {
        self.bu.prediction()
    }

    /// Step-up decisions taken so far.
    pub fn steps_up(&self) -> u64 {
        self.steps_up
    }

    /// Step-down decisions taken so far.
    pub fn steps_down(&self) -> u64 {
        self.steps_down
    }

    pub(crate) fn set_predictors(&mut self, lu: Ewma, bu: Ewma) {
        self.lu = lu;
        self.bu = bu;
    }
}

impl LinkPolicy for HistoryDvsPolicy {
    fn window_cycles(&self) -> u64 {
        self.config.window
    }

    fn on_window(&mut self, measures: &WindowMeasures, channel: &mut DvsChannel) {
        // A window in which the link had no transmission opportunity (it was
        // frequency-locking the whole time) carries no utilization
        // information; folding a spurious 0 into the EWMA right after an
        // upgrade would immediately undo it.
        let lu = if measures.link_slots > 0 {
            self.lu.update(measures.link_utilization())
        } else {
            match self.lu.prediction() {
                Some(p) => p,
                None => return,
            }
        };
        let bu = self.bu.update(measures.buffer_utilization());
        if !channel.is_stable() {
            return;
        }
        let t = self.config.thresholds.select(bu);
        if lu < t.low() {
            match channel.request_step_down(measures.now) {
                Ok(()) => self.steps_down += 1,
                Err(TransitionError::AtMinLevel) => {}
                Err(e) => unreachable!("stable channel rejected step down: {e}"),
            }
        } else if lu > t.high() {
            match channel.request_step_up(measures.now) {
                Ok(()) => self.steps_up += 1,
                Err(TransitionError::AtMaxLevel) => {}
                Err(e) => unreachable!("stable channel rejected step up: {e}"),
            }
        }
    }

    fn observe(&self) -> Option<PolicyObservation> {
        let lu = self.lu.prediction()?;
        let bu = self.bu.prediction().unwrap_or(0.0);
        let t = self.config.thresholds.select(bu);
        Some(PolicyObservation {
            predicted_lu: lu,
            predicted_bu: bu,
            threshold_low: t.low(),
            threshold_high: t.high(),
            congested: bu >= self.config.thresholds.b_congested(),
        })
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use dvslink::{RegulatorParams, TransitionTiming, VfTable};

    fn channel_at(level: usize) -> DvsChannel {
        DvsChannel::new(
            VfTable::paper(),
            TransitionTiming::paper_conservative(),
            RegulatorParams::paper(),
            level,
        )
    }

    fn measures(lu: f64, bu: f64, now: u64) -> WindowMeasures {
        // Construct measures whose derived LU/BU equal the given values.
        let window = 200;
        let slots = 200;
        WindowMeasures {
            window_cycles: window,
            flits_sent: (lu * slots as f64).round() as u64,
            link_slots: slots,
            buf_occupancy_sum: (bu * window as f64 * 128.0).round() as u64,
            buf_capacity: 128,
            now,
        }
    }

    #[test]
    fn idle_link_steps_down() {
        let mut p = HistoryDvsPolicy::new(HistoryDvsConfig::paper());
        let mut ch = channel_at(9);
        p.on_window(&measures(0.0, 0.0, 200), &mut ch);
        assert_eq!(ch.target_level(), Some(8));
        assert_eq!(p.steps_down(), 1);
    }

    #[test]
    fn busy_link_steps_up() {
        let mut p = HistoryDvsPolicy::new(HistoryDvsConfig::paper());
        let mut ch = channel_at(0);
        p.on_window(&measures(0.9, 0.0, 200), &mut ch);
        assert_eq!(ch.target_level(), Some(1));
        assert_eq!(p.steps_up(), 1);
    }

    #[test]
    fn middle_band_does_nothing() {
        let mut p = HistoryDvsPolicy::new(HistoryDvsConfig::paper());
        let mut ch = channel_at(5);
        p.on_window(&measures(0.35, 0.0, 200), &mut ch);
        assert!(ch.is_stable());
        assert_eq!(ch.level(), 5);
        assert_eq!(p.steps_up() + p.steps_down(), 0);
    }

    #[test]
    fn congestion_switches_to_aggressive_thresholds() {
        // LU = 0.5 is "keep" under TL (0.3/0.4 -> up at >0.4... actually 0.5
        // exceeds TL_high and would step UP), but under TH (0.6/0.7) it is
        // below TH_low and steps DOWN. Buffer utilization decides.
        let mut light = HistoryDvsPolicy::new(HistoryDvsConfig::paper());
        let mut ch1 = channel_at(5);
        light.on_window(&measures(0.5, 0.1, 200), &mut ch1);
        assert_eq!(ch1.target_level(), Some(6), "light load: step up");

        let mut congested = HistoryDvsPolicy::new(HistoryDvsConfig::paper());
        let mut ch2 = channel_at(5);
        congested.on_window(&measures(0.5, 0.9, 200), &mut ch2);
        assert_eq!(ch2.target_level(), Some(4), "congested: step down");
    }

    #[test]
    fn no_action_while_transitioning_but_history_updates() {
        let mut p = HistoryDvsPolicy::new(HistoryDvsConfig::paper());
        let mut ch = channel_at(5);
        p.on_window(&measures(0.0, 0.0, 200), &mut ch);
        assert!(!ch.is_stable());
        let before = p.predicted_link_utilization().unwrap();
        p.on_window(&measures(1.0, 0.0, 400), &mut ch);
        let after = p.predicted_link_utilization().unwrap();
        assert!(after > before, "prediction still updates mid-transition");
        assert_eq!(p.steps_down(), 1, "no second action while busy");
    }

    #[test]
    fn bottom_and_top_levels_are_no_ops() {
        let mut p = HistoryDvsPolicy::new(HistoryDvsConfig::paper());
        let mut low = channel_at(0);
        p.on_window(&measures(0.0, 0.0, 200), &mut low);
        assert!(low.is_stable());
        assert_eq!(low.level(), 0);

        let mut p2 = HistoryDvsPolicy::new(HistoryDvsConfig::paper());
        let mut high = channel_at(9);
        p2.on_window(&measures(1.0, 0.0, 200), &mut high);
        assert!(high.is_stable());
        assert_eq!(high.level(), 9);
    }

    #[test]
    fn ewma_filters_transient_dips_that_would_trip_a_reactive_policy() {
        // After a long history at LU = 0.38, a single window at 0.28 is
        // below TL_low = 0.3, so a memoryless policy would step down; the
        // EWMA keeps the prediction at (3·0.28 + 0.38)/4 = 0.305 ≥ 0.3 and
        // holds the level.
        let mut p = HistoryDvsPolicy::new(HistoryDvsConfig::paper());
        let mut ch = channel_at(9);
        for i in 0..20 {
            p.on_window(&measures(0.38, 0.0, 200 * (i + 1)), &mut ch);
        }
        assert!(ch.is_stable());
        p.on_window(&measures(0.28, 0.0, 4400), &mut ch);
        assert!(ch.is_stable(), "one moderate dip is filtered out");
        assert_eq!(ch.level(), 9);
        // A memoryless policy on the same trace does step down.
        let mut r = crate::ReactiveDvsPolicy::paper();
        let mut ch2 = channel_at(9);
        r.on_window(&measures(0.28, 0.0, 200), &mut ch2);
        assert_eq!(ch2.target_level(), Some(8));
    }

    #[test]
    fn empty_window_feeds_zero_into_the_ewma() {
        // Regression (paper Eq. 5): a window that had link slots but moved
        // no flits is a genuine LU = 0 observation and must decay the
        // prediction — skipping it would freeze the predicted utilization
        // at its last busy value and keep an idle link at high voltage.
        let mut p = HistoryDvsPolicy::new(HistoryDvsConfig::paper());
        let mut ch = channel_at(9);
        p.on_window(&measures(0.8, 0.0, 200), &mut ch);
        assert!((p.predicted_link_utilization().unwrap() - 0.8).abs() < 1e-9);
        p.on_window(&measures(0.0, 0.0, 400), &mut ch);
        let after = p.predicted_link_utilization().unwrap();
        assert!(
            (after - 0.2).abs() < 1e-9,
            "zero-traffic window must fold 0.0 in per Eq. 5: {after}"
        );
        // Repeated empty windows keep decaying toward 0.
        p.on_window(&measures(0.0, 0.0, 600), &mut ch);
        assert!(p.predicted_link_utilization().unwrap() < 0.06);
    }

    #[test]
    fn zero_slot_window_keeps_prediction_but_updates_buffers() {
        // The documented exception: a window with *no* transmission
        // opportunity (the link frequency-locked throughout) carries no LU
        // information, so the prediction is held rather than polluted with
        // a spurious 0; BU still updates from the measured occupancy.
        let mut p = HistoryDvsPolicy::new(HistoryDvsConfig::paper());
        let mut ch = channel_at(9);
        p.on_window(&measures(0.8, 0.2, 200), &mut ch);
        let locked = WindowMeasures {
            window_cycles: 200,
            flits_sent: 0,
            link_slots: 0,
            buf_occupancy_sum: (0.6f64 * 200.0 * 128.0).round() as u64,
            buf_capacity: 128,
            now: 400,
        };
        p.on_window(&locked, &mut ch);
        assert!(
            (p.predicted_link_utilization().unwrap() - 0.8).abs() < 1e-9,
            "no-slot window must not decay the LU prediction"
        );
        assert!(
            p.predicted_buffer_utilization().unwrap() > 0.2,
            "BU still folds the locked window's occupancy in"
        );
    }

    #[test]
    fn observe_exposes_predictions_and_selected_thresholds() {
        let mut p = HistoryDvsPolicy::new(HistoryDvsConfig::paper());
        assert!(p.observe().is_none(), "no history yet");
        let mut ch = channel_at(5);
        p.on_window(&measures(0.4, 0.1, 200), &mut ch);
        let o = p.observe().unwrap();
        assert!((o.predicted_lu - 0.4).abs() < 1e-9);
        assert!((o.predicted_bu - 0.1).abs() < 1e-9);
        assert!(!o.congested, "BU below B_congested");
        assert_eq!(o.threshold_low, 0.3);
        assert_eq!(o.threshold_high, 0.4);
        // Drive BU above B_congested: the congested pair takes over.
        for i in 0..20 {
            p.on_window(&measures(0.4, 0.9, 400 + 200 * i), &mut ch);
        }
        let o = p.observe().unwrap();
        assert!(o.congested);
        assert_eq!(o.threshold_low, 0.6);
        assert_eq!(o.threshold_high, 0.7);
    }

    #[test]
    fn table2_settings_change_aggressiveness() {
        // LU = 0.45: setting I (0.2/0.3) steps up; setting VI (0.5/0.6)
        // steps down.
        let mut p1 = HistoryDvsPolicy::new(HistoryDvsConfig::paper_table2(1));
        let mut c1 = channel_at(5);
        p1.on_window(&measures(0.45, 0.0, 200), &mut c1);
        assert_eq!(c1.target_level(), Some(6));

        let mut p6 = HistoryDvsPolicy::new(HistoryDvsConfig::paper_table2(6));
        let mut c6 = channel_at(5);
        p6.on_window(&measures(0.45, 0.0, 200), &mut c6);
        assert_eq!(c6.target_level(), Some(4));
    }
}
