/// Hardware cost model of the policy circuit (paper §3.3).
///
/// The paper synthesized its per-port policy hardware — two utilization
/// counters, a Booth multiplier, two EWMA registers with shift-and-add
/// update (`W = 3`), and threshold comparators — with Synopsys Design
/// Compiler in TSMC 0.25 µm, arriving at ~500 equivalent gates and <3 mW per
/// router port, off the router's critical path. We embed those published
/// numbers; [`network_power_overhead_w`](Self::network_power_overhead_w)
/// lets experiments verify the control overhead is negligible against the
/// hundreds of watts of link power it manages.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct HardwareCost {
    gates_per_port: u32,
    power_per_port_w: f64,
}

impl HardwareCost {
    /// The paper's synthesis results: 500 gates, 3 mW per port (the paper's
    /// stated upper bound).
    pub fn paper() -> Self {
        Self {
            gates_per_port: 500,
            power_per_port_w: 0.003,
        }
    }

    /// Equivalent logic gates per router port.
    pub fn gates_per_port(&self) -> u32 {
        self.gates_per_port
    }

    /// Policy-circuit power per router port, in watts.
    pub fn power_per_port_w(&self) -> f64 {
        self.power_per_port_w
    }

    /// Total gate count for a network of `routers` routers with
    /// `ports_per_router` DVS-controlled ports each.
    pub fn network_gates(&self, routers: usize, ports_per_router: usize) -> u64 {
        u64::from(self.gates_per_port) * routers as u64 * ports_per_router as u64
    }

    /// Total policy power overhead for a network, in watts.
    pub fn network_power_overhead_w(&self, routers: usize, ports_per_router: usize) -> f64 {
        self.power_per_port_w * routers as f64 * ports_per_router as f64
    }
}

impl Default for HardwareCost {
    fn default() -> Self {
        Self::paper()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn paper_values() {
        let h = HardwareCost::paper();
        assert_eq!(h.gates_per_port(), 500);
        assert!((h.power_per_port_w() - 0.003).abs() < 1e-12);
    }

    #[test]
    fn network_totals_scale() {
        let h = HardwareCost::paper();
        // The paper's 8x8 mesh: 64 routers x 4 network ports.
        assert_eq!(h.network_gates(64, 4), 128_000);
        let p = h.network_power_overhead_w(64, 4);
        assert!((p - 0.768).abs() < 1e-12);
        // Overhead must be negligible against the 409.6 W link budget.
        assert!(p / 409.6 < 0.002);
    }
}
