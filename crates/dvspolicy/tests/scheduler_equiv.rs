//! Scheduler-equivalence property suite: the active-set scheduler must be
//! **bit-identical** to the full-scan loop, not merely statistically close.
//!
//! For every policy in the repo's canonical five-policy set, with and
//! without fault injection, two networks differing *only* in
//! [`SchedulerMode`] are driven through an identical injection schedule
//! (bursts, trickles, and long idle gaps chosen to exercise DVS
//! down-transitions, window boundaries, and the drained fast-forward path).
//! At several checkpoints and at the end, everything the simulator can
//! observe is compared: the full [`NetworkSnapshot`] (per-channel V/f
//! state, energy ledgers, utilization counters), [`NetStats`] including the
//! latency histogram and attribution breakdown, the energy ledger bits,
//! fault totals, flit conservation counters, and the complete trace event
//! stream recorded by an [`EventLog`].
//!
//! Any divergence — an extra wake, a missed window, a stale utilization
//! accumulator, an event emitted one cycle late — fails loudly with the
//! first differing event or field.

use dvslink::{NoiseModel, VfTable};
use dvspolicy::{
    DynamicThresholdPolicy, HistoryDvsConfig, HistoryDvsPolicy, ReactiveDvsPolicy,
    TargetUtilizationPolicy,
};
use netsim::{
    Event, EventLog, FaultConfig, LinkPolicy, NetStats, Network, NetworkConfig, NetworkSnapshot,
    SchedulerMode, StaticLevelPolicy, Topology,
};
use proptest::prelude::*;

/// The canonical five policies (same set as the bench/attribution tools).
const POLICIES: [&str; 5] = ["no-dvs", "history", "reactive", "threshold", "target"];

fn make_policy(name: &str) -> Box<dyn LinkPolicy> {
    match name {
        "no-dvs" => Box::new(StaticLevelPolicy::default()),
        "history" => Box::new(HistoryDvsPolicy::new(HistoryDvsConfig::paper())),
        "reactive" => Box::new(ReactiveDvsPolicy::paper()),
        "threshold" => Box::new(DynamicThresholdPolicy::paper()),
        "target" => Box::new(TargetUtilizationPolicy::paper_comparable()),
        other => panic!("unknown policy {other}"),
    }
}

/// A `ber_scale` making the top level's per-bit error probability `p_bit`
/// (the paper-level BER ~1e-15 would never fire in a short test).
fn scale_for_p_bit(p_bit: f64) -> f64 {
    let noise = NoiseModel::paper();
    let table = VfTable::paper();
    p_bit / noise.ber(table.get(table.top()).unwrap())
}

fn config(mode: SchedulerMode, faults: bool, seed: u64) -> NetworkConfig {
    let mut cfg = NetworkConfig::paper_8x8();
    cfg.topology = Topology::mesh(4, 2).unwrap();
    cfg.scheduler = mode;
    if faults {
        cfg.faults = Some(FaultConfig::new(seed).with_ber_scale(scale_for_p_bit(1.5e-3)));
    }
    cfg
}

/// Everything observable about a run, captured at one checkpoint.
#[derive(Debug, Clone, PartialEq)]
struct Checkpoint {
    time: u64,
    snapshot: NetworkSnapshot,
    stats: NetStats,
    energy_bits: u64,
    in_network: usize,
    in_source_queues: usize,
    fault_totals_debug: String,
}

fn checkpoint(net: &Network<EventLog>) -> Checkpoint {
    Checkpoint {
        time: net.time(),
        snapshot: NetworkSnapshot::capture(net),
        stats: *net.stats(),
        energy_bits: net.energy_j().to_bits(),
        in_network: net.flits_in_network(),
        in_source_queues: net.flits_in_source_queues(),
        fault_totals_debug: format!("{:?}", net.fault_totals()),
    }
}

/// Drive one network through the shared schedule, checkpointing after each
/// phase; returns the checkpoints and the complete recorded event stream.
fn drive(
    mode: SchedulerMode,
    policy: &str,
    faults: bool,
    seed: u64,
) -> (Vec<Checkpoint>, Vec<Event>) {
    let cfg = config(mode, faults, seed);
    let mut net = Network::with_tracer(cfg, |_, _| make_policy(policy), EventLog::unbounded())
        .expect("valid config");
    let nodes = net.topology().num_nodes() as u64;
    let mut checkpoints = Vec::new();
    let mut rng = seed | 1;
    let mut next = move || {
        // xorshift64: deterministic, dependency-free.
        rng ^= rng << 13;
        rng ^= rng >> 7;
        rng ^= rng << 17;
        rng
    };

    // Phase A: a dense burst, then drain. Exercises allocation, wire rings,
    // and (with faults) retransmission under load.
    for _ in 0..120 {
        let s = (next() % nodes) as usize;
        let mut d = (next() % nodes) as usize;
        if d == s {
            d = (d + 1) % nodes as usize;
        }
        net.inject(s, d);
    }
    net.run(1_500);
    checkpoints.push(checkpoint(&net));

    // Phase B: a trickle with idle gaps long enough for DVS policies to
    // step links down and for transitions to start *and* complete inside
    // otherwise-quiescent stretches — the regime where the active-set
    // scheduler's closed-form catch-up must match per-cycle stepping.
    for _ in 0..8 {
        let s = (next() % nodes) as usize;
        let mut d = (next() % nodes) as usize;
        if d == s {
            d = (d + 1) % nodes as usize;
        }
        net.inject(s, d);
        net.run(900 + (next() % 500));
    }
    checkpoints.push(checkpoint(&net));

    // Phase C: a long fully-idle stretch (the run() fast-forward path),
    // then one final packet to prove the woken state is coherent.
    net.run(25_000);
    checkpoints.push(checkpoint(&net));
    net.inject(0, nodes as usize - 1);
    net.run(2_000);
    checkpoints.push(checkpoint(&net));

    let events: Vec<Event> = net.into_tracer().events().cloned().collect();
    (checkpoints, events)
}

fn assert_equivalent(policy: &str, faults: bool, seed: u64) {
    let (full_cp, full_ev) = drive(SchedulerMode::FullScan, policy, faults, seed);
    let (act_cp, act_ev) = drive(SchedulerMode::ActiveSet, policy, faults, seed);

    for (i, (f, a)) in full_cp.iter().zip(&act_cp).enumerate() {
        assert_eq!(
            f, a,
            "policy {policy} faults {faults} seed {seed:#x}: checkpoint {i} diverged"
        );
    }

    // Compare event streams element-wise so a failure names the first
    // divergent event instead of dumping two multi-thousand-entry vectors.
    let n = full_ev.len().min(act_ev.len());
    for i in 0..n {
        assert_eq!(
            full_ev[i], act_ev[i],
            "policy {policy} faults {faults} seed {seed:#x}: event {i} diverged \
             (full-scan vs active-set)"
        );
    }
    assert_eq!(
        full_ev.len(),
        act_ev.len(),
        "policy {policy} faults {faults} seed {seed:#x}: event stream lengths diverged \
         (first {n} events identical)"
    );
    assert!(
        !full_ev.is_empty(),
        "vacuous comparison: no events were recorded"
    );
}

#[test]
fn all_policies_bit_identical_without_faults() {
    for policy in POLICIES {
        assert_equivalent(policy, false, 0x0edc_0ffe_e000_0001);
    }
}

#[test]
fn all_policies_bit_identical_with_faults() {
    for policy in POLICIES {
        assert_equivalent(policy, true, 0x0edc_0ffe_e000_0002);
    }
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(6))]

    /// Random seeds vary the injection pattern, gap lengths, and (when
    /// enabled) the fault RNG; equivalence must hold for all of them.
    #[test]
    fn random_schedules_stay_bit_identical(
        seed in any::<u64>(),
        policy_idx in 0usize..5,
        faults in any::<bool>(),
    ) {
        assert_equivalent(POLICIES[policy_idx], faults, seed);
    }
}
