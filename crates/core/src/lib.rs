//! Experiment layer for the HPCA 2003 link-DVS reproduction.
//!
//! This crate glues the substrates together — the [`netsim`] flit-level
//! simulator, the [`dvslink`] DVS channel model, the [`dvspolicy`] policies,
//! and the [`trafficgen`] workloads — into the experiments the paper
//! reports:
//!
//! - [`ExperimentConfig`] describes one simulated system: network
//!   configuration, link policy, workload model, and run lengths.
//! - [`run_point`] simulates one offered load and returns a [`RunResult`]
//!   with the paper's metrics (average packet latency, throughput, link
//!   power normalized to the 409.6 W non-DVS budget, power-savings factor).
//! - [`sweep`] runs an injection-rate sweep — the x-axis of Figs. 10–17 —
//!   and [`SweepSummary`] derives the headline numbers (zero-load latency,
//!   saturation point, average pre-saturation latency increase, average and
//!   peak power savings).
//! - [`SweepPlan`] batches many `(config, rate)` points — whole figures at
//!   a time — and fans them across a worker pool ([`sweep_par`] is the
//!   one-series shorthand). Per-point seeds derive only from the point's
//!   identity, so parallel and serial execution are bit-identical, and
//!   each point yields a [`RunTelemetry`] record (wall-clock, simulated
//!   cycles/sec, worker id) for run observability.
//!
//! # Example
//!
//! ```no_run
//! use linkdvs::{ExperimentConfig, PolicyKind, WorkloadKind};
//!
//! let cfg = ExperimentConfig::paper_baseline()
//!     .with_policy(PolicyKind::HistoryDvs(Default::default()))
//!     .with_workload(WorkloadKind::paper_two_level_100());
//! let result = linkdvs::run_point(&cfg, 0.8);
//! println!(
//!     "latency {:.0} cycles, {:.1}x power savings",
//!     result.avg_latency_cycles.unwrap_or(f64::NAN),
//!     result.power_savings
//! );
//! ```

#![forbid(unsafe_code)]
#![warn(missing_docs)]

mod experiment;
mod plan;
mod result;
mod runner;
mod telemetry;

pub use experiment::{ExperimentConfig, PolicyKind, WorkloadKind};
pub use plan::{sweep_par, PointOutcome, ProgressFn, SweepPlan, SweepPoint};
pub use result::{write_csv, RunResult, SweepSummary};
pub use runner::{
    run_point, run_point_full, run_point_indexed, run_point_indexed_full, sweep, zero_load_latency,
};
pub use telemetry::{
    write_telemetry_jsonl, FaultSummary, RunTelemetry, TraceSummary, TELEMETRY_SCHEMA_VERSION,
};

pub use dvslink::Cycles;
