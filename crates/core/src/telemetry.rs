use std::io::{self, Write};

use netsim::{EventKind, EventLog, FaultStats};

/// Version of the telemetry JSONL record format, serialized as the leading
/// `schema` key of every record.
///
/// Bump this when the record layout changes incompatibly (a key renamed,
/// removed, or re-typed — *adding* an optional key is compatible). History:
///
/// - **1** (implicit): the original record, no `schema` key.
/// - **2**: `schema` key added; optional `faults` object (omitted when the
///   fault subsystem is disabled).
/// - **3**: optional `events` object (omitted when the run traced nothing):
///   events recorded/stored/dropped plus per-kind drop counts, so consumers
///   can tell whether a trace artifact is complete before analyzing it.
pub const TELEMETRY_SCHEMA_VERSION: u32 = 3;

/// Fault/recovery outcome of one executed sweep point, aggregated over
/// every channel in the network. Present only when the experiment enabled
/// the fault subsystem ([`netsim::NetworkConfig::faults`]).
#[derive(Debug, Clone, Copy, PartialEq, Eq, Default)]
pub struct FaultSummary {
    /// Transmission attempts, including corrupted ones.
    pub transmitted: u64,
    /// Attempts corrupted in flight (detected + undetected).
    pub corrupted: u64,
    /// Detected corruptions that triggered a retransmission.
    pub retransmissions: u64,
    /// Corrupted flits the CRC syndrome missed (delivered anyway).
    pub residual_errors: u64,
    /// Transient link-outage episodes.
    pub outages: u64,
    /// Cycles spent inside outage episodes.
    pub outage_cycles: u64,
    /// Links that exhausted their retry budget and fail-stopped.
    pub failed_links: u64,
    /// Attempts that put a flit on the downstream wire.
    pub delivered_attempts: u64,
}

impl From<FaultStats> for FaultSummary {
    fn from(s: FaultStats) -> Self {
        Self {
            transmitted: s.transmitted,
            corrupted: s.corrupted,
            retransmissions: s.retransmissions,
            residual_errors: s.residual_errors,
            outages: s.outages,
            outage_cycles: s.outage_cycles,
            failed_links: s.failed_links,
            delivered_attempts: s.delivered_attempts(),
        }
    }
}

/// Trace-completeness summary of one run's [`EventLog`]: how many events
/// the simulator recorded, how many the log still holds, and how many the
/// capacity bound evicted (overall and per kind).
///
/// A non-zero `dropped` means downstream trace artifacts (JSONL/Perfetto)
/// are missing their *oldest* events — attribution built from the log's
/// event stream undercounts accordingly.
#[derive(Debug, Clone, PartialEq, Eq, Default)]
pub struct TraceSummary {
    /// Events recorded across all kinds, independent of mask and eviction.
    pub recorded: u64,
    /// Events still stored in the log.
    pub stored: u64,
    /// Stored events evicted by the capacity bound.
    pub dropped: u64,
    /// Per-kind eviction counts, `(kind_name, dropped)`, only kinds with a
    /// non-zero count, in [`EventKind`] declaration order.
    pub dropped_by_kind: Vec<(String, u64)>,
}

impl TraceSummary {
    /// Summarize `log` at the end of a run.
    pub fn from_log(log: &EventLog) -> Self {
        Self {
            recorded: log.total(),
            stored: log.len() as u64,
            dropped: log.dropped(),
            dropped_by_kind: EventKind::ALL
                .iter()
                .filter(|k| log.dropped_count(**k) > 0)
                .map(|k| (k.name().to_string(), log.dropped_count(*k)))
                .collect(),
        }
    }
}

/// Observability record for one executed sweep point: where it ran, how
/// long it took, and how fast the simulator churned through it.
///
/// Emitted by [`SweepPlan::run`](crate::SweepPlan::run) alongside each
/// [`RunResult`](crate::RunResult), and serialized as JSON lines next to
/// the CSV artifacts so CI can track simulator throughput over time.
#[derive(Debug, Clone, PartialEq)]
pub struct RunTelemetry {
    /// Index of the series this point belongs to (plan construction order).
    pub series: usize,
    /// Position of the point within its series (also the seed-derivation
    /// index).
    pub point_index: usize,
    /// Position of the point within the whole plan.
    pub global_index: usize,
    /// Offered injection rate of the point, packets/cycle.
    pub offered_rate: f64,
    /// Worker slot that executed the point (0 for serial runs).
    pub worker: usize,
    /// Wall-clock time spent simulating the point, seconds.
    pub wall_s: f64,
    /// Cycles simulated (warm-up + measurement).
    pub sim_cycles: u64,
    /// Simulated cycles per wall-clock second.
    pub cycles_per_sec: f64,
    /// Packets delivered during the measurement phase.
    pub packets_delivered: u64,
    /// Fault/retransmission counters, when the fault subsystem was enabled.
    /// `None` keeps the serialized record byte-identical to pre-fault
    /// builds, so fault-free artifact diffs stay clean.
    pub faults: Option<FaultSummary>,
    /// Event-trace completeness, when the run captured an [`EventLog`].
    /// `None` (the untraced common case) omits the key entirely, keeping
    /// the record layout identical to schema v2 apart from the version
    /// number.
    pub events: Option<TraceSummary>,
}

impl RunTelemetry {
    /// This record as one JSON object (one line, no trailing newline).
    ///
    /// Hand-rolled rather than pulling in a serialization dependency: every
    /// field is a finite number, so `Display` formatting is valid JSON.
    pub fn to_json(&self) -> String {
        let mut json = format!(
            concat!(
                "{{\"schema\":{},",
                "\"series\":{},\"point_index\":{},\"global_index\":{},",
                "\"offered_rate\":{},\"worker\":{},\"wall_s\":{:.6},",
                "\"sim_cycles\":{},\"cycles_per_sec\":{:.1},",
                "\"packets_delivered\":{}"
            ),
            TELEMETRY_SCHEMA_VERSION,
            self.series,
            self.point_index,
            self.global_index,
            self.offered_rate,
            self.worker,
            self.wall_s,
            self.sim_cycles,
            self.cycles_per_sec,
            self.packets_delivered,
        );
        if let Some(f) = &self.faults {
            json.push_str(&format!(
                concat!(
                    ",\"faults\":{{\"transmitted\":{},\"corrupted\":{},",
                    "\"retransmissions\":{},\"residual_errors\":{},",
                    "\"outages\":{},\"outage_cycles\":{},\"failed_links\":{},",
                    "\"delivered_attempts\":{}}}"
                ),
                f.transmitted,
                f.corrupted,
                f.retransmissions,
                f.residual_errors,
                f.outages,
                f.outage_cycles,
                f.failed_links,
                f.delivered_attempts,
            ));
        }
        if let Some(e) = &self.events {
            json.push_str(&format!(
                ",\"events\":{{\"recorded\":{},\"stored\":{},\"dropped\":{}",
                e.recorded, e.stored, e.dropped,
            ));
            json.push_str(",\"dropped_by_kind\":{");
            for (i, (name, n)) in e.dropped_by_kind.iter().enumerate() {
                if i > 0 {
                    json.push(',');
                }
                json.push_str(&format!("\"{name}\":{n}"));
            }
            json.push_str("}}");
        }
        json.push('}');
        json
    }
}

/// Write telemetry records as JSON lines.
///
/// # Errors
///
/// Propagates I/O errors from `out`.
pub fn write_telemetry_jsonl<W: Write>(out: &mut W, records: &[RunTelemetry]) -> io::Result<()> {
    for r in records {
        writeln!(out, "{}", r.to_json())?;
    }
    Ok(())
}

#[cfg(test)]
mod tests {
    use super::*;

    fn record() -> RunTelemetry {
        RunTelemetry {
            series: 1,
            point_index: 2,
            global_index: 14,
            offered_rate: 0.8,
            worker: 3,
            wall_s: 1.25,
            sim_cycles: 1_000_000,
            cycles_per_sec: 800_000.0,
            packets_delivered: 12345,
            faults: None,
            events: None,
        }
    }

    #[test]
    fn json_has_all_fields_and_is_one_line() {
        let j = record().to_json();
        for key in [
            "schema",
            "series",
            "point_index",
            "global_index",
            "offered_rate",
            "worker",
            "wall_s",
            "sim_cycles",
            "cycles_per_sec",
            "packets_delivered",
        ] {
            assert!(j.contains(&format!("\"{key}\":")), "missing {key} in {j}");
        }
        assert!(!j.contains('\n'));
        assert!(j.starts_with('{') && j.ends_with('}'));
    }

    #[test]
    fn schema_version_leads_every_record() {
        // Consumers sniff the version before parsing anything else, so it
        // must be the first key.
        let j = record().to_json();
        assert!(
            j.starts_with(&format!("{{\"schema\":{TELEMETRY_SCHEMA_VERSION},")),
            "schema key must come first: {j}"
        );
    }

    #[test]
    fn fault_free_json_has_no_faults_key() {
        // Byte-level compatibility: a record without fault data serializes
        // exactly as it did before the fault subsystem existed.
        let j = record().to_json();
        assert!(!j.contains("faults"));
    }

    #[test]
    fn fault_summary_serializes_as_nested_object() {
        let mut r = record();
        r.faults = Some(FaultSummary {
            transmitted: 1000,
            corrupted: 10,
            retransmissions: 9,
            residual_errors: 1,
            outages: 2,
            outage_cycles: 100,
            failed_links: 0,
            delivered_attempts: 991,
        });
        let j = r.to_json();
        assert!(j.contains("\"faults\":{\"transmitted\":1000,"));
        assert!(j.contains("\"delivered_attempts\":991}"));
        assert!(j.ends_with("}}"));
        assert!(!j.contains('\n'));
    }

    #[test]
    fn untraced_record_keeps_v2_layout() {
        // Round-trip guarantee for v2 consumers: apart from the bumped
        // schema number, a record with neither faults nor events is
        // byte-identical to what schema v2 produced.
        let j = record().to_json();
        let expected = concat!(
            "{\"schema\":3,",
            "\"series\":1,\"point_index\":2,\"global_index\":14,",
            "\"offered_rate\":0.8,\"worker\":3,\"wall_s\":1.250000,",
            "\"sim_cycles\":1000000,\"cycles_per_sec\":800000.0,",
            "\"packets_delivered\":12345}"
        );
        assert_eq!(j, expected);
        let v2 = expected.replacen("\"schema\":3,", "\"schema\":2,", 1);
        assert!(
            !v2.contains("events") && !v2.contains("faults"),
            "v2 layout must be reproducible by patching only the version"
        );
    }

    #[test]
    fn trace_summary_serializes_after_faults() {
        let mut r = record();
        r.events = Some(TraceSummary {
            recorded: 5000,
            stored: 1000,
            dropped: 4000,
            dropped_by_kind: vec![
                ("flit_wire".to_string(), 3500),
                ("credit_wire".to_string(), 500),
            ],
        });
        let j = r.to_json();
        assert!(j.contains(
            "\"events\":{\"recorded\":5000,\"stored\":1000,\"dropped\":4000,\
             \"dropped_by_kind\":{\"flit_wire\":3500,\"credit_wire\":500}}"
        ));
        assert!(j.ends_with("}}"));
        assert!(!j.contains('\n'));
    }

    #[test]
    fn trace_summary_from_log_reports_per_kind_drops() {
        let mut log = EventLog::with_capacity(2);
        for t in 0..5 {
            netsim::Tracer::record(
                &mut log,
                netsim::Event::PacketInject {
                    t,
                    packet: t,
                    src: 0,
                    dest: 1,
                },
            );
        }
        let s = TraceSummary::from_log(&log);
        assert_eq!(s.recorded, 5);
        assert_eq!(s.stored, 2);
        assert_eq!(s.dropped, 3);
        assert_eq!(s.dropped_by_kind, vec![("packet_inject".to_string(), 3)]);
    }

    #[test]
    fn jsonl_writes_one_line_per_record() {
        let mut buf = Vec::new();
        write_telemetry_jsonl(&mut buf, &[record(), record()]).unwrap();
        let text = String::from_utf8(buf).unwrap();
        assert_eq!(text.lines().count(), 2);
        assert!(text.lines().all(|l| l.starts_with('{') && l.ends_with('}')));
    }
}
