use std::io::{self, Write};

/// Observability record for one executed sweep point: where it ran, how
/// long it took, and how fast the simulator churned through it.
///
/// Emitted by [`SweepPlan::run`](crate::SweepPlan::run) alongside each
/// [`RunResult`](crate::RunResult), and serialized as JSON lines next to
/// the CSV artifacts so CI can track simulator throughput over time.
#[derive(Debug, Clone, PartialEq)]
pub struct RunTelemetry {
    /// Index of the series this point belongs to (plan construction order).
    pub series: usize,
    /// Position of the point within its series (also the seed-derivation
    /// index).
    pub point_index: usize,
    /// Position of the point within the whole plan.
    pub global_index: usize,
    /// Offered injection rate of the point, packets/cycle.
    pub offered_rate: f64,
    /// Worker slot that executed the point (0 for serial runs).
    pub worker: usize,
    /// Wall-clock time spent simulating the point, seconds.
    pub wall_s: f64,
    /// Cycles simulated (warm-up + measurement).
    pub sim_cycles: u64,
    /// Simulated cycles per wall-clock second.
    pub cycles_per_sec: f64,
    /// Packets delivered during the measurement phase.
    pub packets_delivered: u64,
}

impl RunTelemetry {
    /// This record as one JSON object (one line, no trailing newline).
    ///
    /// Hand-rolled rather than pulling in a serialization dependency: every
    /// field is a finite number, so `Display` formatting is valid JSON.
    pub fn to_json(&self) -> String {
        format!(
            concat!(
                "{{\"series\":{},\"point_index\":{},\"global_index\":{},",
                "\"offered_rate\":{},\"worker\":{},\"wall_s\":{:.6},",
                "\"sim_cycles\":{},\"cycles_per_sec\":{:.1},",
                "\"packets_delivered\":{}}}"
            ),
            self.series,
            self.point_index,
            self.global_index,
            self.offered_rate,
            self.worker,
            self.wall_s,
            self.sim_cycles,
            self.cycles_per_sec,
            self.packets_delivered,
        )
    }
}

/// Write telemetry records as JSON lines.
///
/// # Errors
///
/// Propagates I/O errors from `out`.
pub fn write_telemetry_jsonl<W: Write>(out: &mut W, records: &[RunTelemetry]) -> io::Result<()> {
    for r in records {
        writeln!(out, "{}", r.to_json())?;
    }
    Ok(())
}

#[cfg(test)]
mod tests {
    use super::*;

    fn record() -> RunTelemetry {
        RunTelemetry {
            series: 1,
            point_index: 2,
            global_index: 14,
            offered_rate: 0.8,
            worker: 3,
            wall_s: 1.25,
            sim_cycles: 1_000_000,
            cycles_per_sec: 800_000.0,
            packets_delivered: 12345,
        }
    }

    #[test]
    fn json_has_all_fields_and_is_one_line() {
        let j = record().to_json();
        for key in [
            "series",
            "point_index",
            "global_index",
            "offered_rate",
            "worker",
            "wall_s",
            "sim_cycles",
            "cycles_per_sec",
            "packets_delivered",
        ] {
            assert!(j.contains(&format!("\"{key}\":")), "missing {key} in {j}");
        }
        assert!(!j.contains('\n'));
        assert!(j.starts_with('{') && j.ends_with('}'));
    }

    #[test]
    fn jsonl_writes_one_line_per_record() {
        let mut buf = Vec::new();
        write_telemetry_jsonl(&mut buf, &[record(), record()]).unwrap();
        let text = String::from_utf8(buf).unwrap();
        assert_eq!(text.lines().count(), 2);
        assert!(text.lines().all(|l| l.starts_with('{') && l.ends_with('}')));
    }
}
