use std::sync::atomic::{AtomicUsize, Ordering};
use std::sync::Mutex;
use std::thread;
use std::time::Instant;

use crate::runner::run_point_indexed_full;
use crate::{ExperimentConfig, RunResult, RunTelemetry};

/// Callback invoked as each sweep point finishes (possibly from a worker
/// thread; completion order is nondeterministic under parallel execution,
/// results are not).
pub type ProgressFn<'a> = dyn Fn(&RunTelemetry) + Sync + 'a;

/// One operating point scheduled by a [`SweepPlan`]: a fully specified
/// experiment at one offered rate, tagged with its series and position.
#[derive(Debug, Clone)]
pub struct SweepPoint {
    /// Index of the series this point belongs to (plan construction order).
    pub series: usize,
    /// Position within its series — the index [`run_point_indexed`] derives
    /// the workload seed from, so a point's results do not depend on what
    /// else is in the plan.
    pub index: usize,
    /// The experiment configuration.
    pub cfg: ExperimentConfig,
    /// Offered injection rate, packets/cycle.
    pub offered_rate: f64,
}

/// The paired measurement and observability record of one executed point.
#[derive(Debug, Clone)]
pub struct PointOutcome {
    /// The paper metrics of the point.
    pub result: RunResult,
    /// Execution telemetry (wall-clock, worker, simulation speed).
    pub telemetry: RunTelemetry,
}

/// A batch of sweep points executed together, serially or across a worker
/// pool, with bit-identical results either way.
///
/// The plan is the unit the figure binaries hand to the runner: each
/// labeled curve of a figure becomes one *series* (an [`ExperimentConfig`]
/// crossed with a rate grid), and the plan fans every point of every
/// series out across `jobs` workers. Per-point workload seeds derive only
/// from `(cfg.seed, rate, index-within-series)`, so a series run through a
/// plan equals the same series run through [`sweep`](crate::sweep) alone,
/// element for element.
///
/// # Example
///
/// ```no_run
/// use linkdvs::{ExperimentConfig, PolicyKind, SweepPlan};
///
/// let base = ExperimentConfig::paper_baseline();
/// let mut plan = SweepPlan::new();
/// plan.push_series(base.clone(), &[0.2, 0.8, 1.4]);
/// plan.push_series(
///     base.with_policy(PolicyKind::HistoryDvs(Default::default())),
///     &[0.2, 0.8, 1.4],
/// );
/// let series = plan.run_into_series(4, None);
/// assert_eq!(series.len(), 2);
/// ```
#[derive(Debug, Clone, Default)]
pub struct SweepPlan {
    points: Vec<SweepPoint>,
    num_series: usize,
}

impl SweepPlan {
    /// An empty plan.
    pub fn new() -> Self {
        Self::default()
    }

    /// A plan holding a single rate sweep of one configuration.
    pub fn single(cfg: ExperimentConfig, rates: &[f64]) -> Self {
        let mut plan = Self::new();
        plan.push_series(cfg, rates);
        plan
    }

    /// Append one series (a configuration swept over `rates`), returning
    /// its series index.
    pub fn push_series(&mut self, cfg: ExperimentConfig, rates: &[f64]) -> usize {
        let series = self.num_series;
        self.num_series += 1;
        self.points.extend(
            rates
                .iter()
                .enumerate()
                .map(|(index, &offered_rate)| SweepPoint {
                    series,
                    index,
                    cfg: cfg.clone(),
                    offered_rate,
                }),
        );
        series
    }

    /// Number of scheduled points.
    pub fn len(&self) -> usize {
        self.points.len()
    }

    /// Whether the plan holds no points.
    pub fn is_empty(&self) -> bool {
        self.points.is_empty()
    }

    /// Number of series pushed so far.
    pub fn num_series(&self) -> usize {
        self.num_series
    }

    /// The scheduled points, in construction order.
    pub fn points(&self) -> &[SweepPoint] {
        &self.points
    }

    /// Execute every point and return outcomes in construction order.
    ///
    /// `jobs` is the worker count: `0` means one worker per available CPU,
    /// `1` runs inline on the calling thread, `n > 1` fans points out
    /// across `n` scoped worker threads pulling from a shared queue.
    /// Results are positioned by point index, so every `jobs` value yields
    /// the same outcome sequence — only wall-clock and the `worker` field
    /// of the telemetry differ.
    ///
    /// `progress` is invoked once per finished point, in completion order,
    /// possibly from worker threads.
    pub fn run(&self, jobs: usize, progress: Option<&ProgressFn<'_>>) -> Vec<PointOutcome> {
        let jobs = effective_jobs(jobs, self.points.len());
        if jobs <= 1 {
            return self
                .points
                .iter()
                .enumerate()
                .map(|(i, p)| {
                    let outcome = execute_point(p, i, 0);
                    if let Some(cb) = progress {
                        cb(&outcome.telemetry);
                    }
                    outcome
                })
                .collect();
        }

        let next = AtomicUsize::new(0);
        let slots: Vec<Mutex<Option<PointOutcome>>> =
            self.points.iter().map(|_| Mutex::new(None)).collect();
        thread::scope(|s| {
            for worker in 0..jobs {
                let next = &next;
                let slots = &slots;
                let points = &self.points;
                s.spawn(move || loop {
                    let i = next.fetch_add(1, Ordering::Relaxed);
                    let Some(point) = points.get(i) else { break };
                    let outcome = execute_point(point, i, worker);
                    if let Some(cb) = progress {
                        cb(&outcome.telemetry);
                    }
                    *slots[i].lock().expect("no worker panicked holding a slot") = Some(outcome);
                });
            }
        });
        slots
            .into_iter()
            .map(|slot| {
                slot.into_inner()
                    .expect("no worker panicked holding a slot")
                    .expect("every scheduled point was executed")
            })
            .collect()
    }

    /// Execute the plan and regroup results by series, each in rate order,
    /// discarding telemetry. See [`run`](Self::run) for `jobs`.
    pub fn run_into_series(
        &self,
        jobs: usize,
        progress: Option<&ProgressFn<'_>>,
    ) -> Vec<Vec<RunResult>> {
        let mut series: Vec<Vec<RunResult>> = (0..self.num_series).map(|_| Vec::new()).collect();
        for (outcome, point) in self.run(jobs, progress).into_iter().zip(&self.points) {
            series[point.series].push(outcome.result);
        }
        series
    }
}

/// Resolve a `--jobs`-style worker count: `0` = all available CPUs,
/// clamped to the number of points so small plans don't spawn idle threads.
fn effective_jobs(jobs: usize, points: usize) -> usize {
    let jobs = if jobs == 0 {
        thread::available_parallelism().map_or(1, |n| n.get())
    } else {
        jobs
    };
    jobs.min(points.max(1))
}

fn execute_point(point: &SweepPoint, global_index: usize, worker: usize) -> PointOutcome {
    let start = Instant::now();
    let (result, faults) = run_point_indexed_full(&point.cfg, point.offered_rate, point.index);
    let wall_s = start.elapsed().as_secs_f64();
    let sim_cycles = point.cfg.warmup_cycles + point.cfg.measure_cycles;
    PointOutcome {
        telemetry: RunTelemetry {
            series: point.series,
            point_index: point.index,
            global_index,
            offered_rate: point.offered_rate,
            worker,
            wall_s,
            sim_cycles,
            cycles_per_sec: if wall_s > 0.0 {
                sim_cycles as f64 / wall_s
            } else {
                0.0
            },
            packets_delivered: result.packets_delivered,
            faults,
            events: None,
        },
        result,
    }
}

/// Run an injection-rate sweep across `jobs` workers; bit-identical to
/// [`sweep`](crate::sweep) for every `jobs` value (see [`SweepPlan::run`]).
pub fn sweep_par(cfg: &ExperimentConfig, rates: &[f64], jobs: usize) -> Vec<RunResult> {
    SweepPlan::single(cfg.clone(), rates)
        .run(jobs, None)
        .into_iter()
        .map(|o| o.result)
        .collect()
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::{sweep, PolicyKind, WorkloadKind};
    use netsim::Topology;
    use std::sync::atomic::AtomicUsize;

    fn tiny_cfg() -> ExperimentConfig {
        let mut cfg = ExperimentConfig::paper_baseline().with_run_lengths(2_000, 6_000);
        cfg.network.topology = Topology::mesh(4, 2).unwrap();
        cfg.workload = WorkloadKind::UniformRandom;
        cfg
    }

    #[test]
    fn parallel_matches_serial_exactly() {
        let cfg = tiny_cfg().with_policy(PolicyKind::HistoryDvs(Default::default()));
        let rates = [0.1, 0.2, 0.3, 0.4, 0.5];
        let serial = sweep(&cfg, &rates);
        for jobs in [1, 2, 8] {
            assert_eq!(sweep_par(&cfg, &rates, jobs), serial, "jobs = {jobs}");
        }
    }

    #[test]
    fn jobs_zero_uses_available_parallelism() {
        let cfg = tiny_cfg();
        let rates = [0.1, 0.2];
        assert_eq!(sweep_par(&cfg, &rates, 0), sweep(&cfg, &rates));
    }

    #[test]
    fn series_regroup_matches_standalone_sweeps() {
        let rates = [0.1, 0.3];
        let a = tiny_cfg();
        let b = tiny_cfg().with_policy(PolicyKind::HistoryDvs(Default::default()));
        let mut plan = SweepPlan::new();
        plan.push_series(a.clone(), &rates);
        plan.push_series(b.clone(), &rates);
        let series = plan.run_into_series(4, None);
        assert_eq!(series.len(), 2);
        assert_eq!(series[0], sweep(&a, &rates));
        assert_eq!(series[1], sweep(&b, &rates));
    }

    #[test]
    fn progress_fires_once_per_point_with_sane_telemetry() {
        let count = AtomicUsize::new(0);
        let plan = SweepPlan::single(tiny_cfg(), &[0.1, 0.2, 0.3]);
        let outcomes = plan.run(
            2,
            Some(&|t: &RunTelemetry| {
                count.fetch_add(1, Ordering::Relaxed);
                assert!(t.wall_s >= 0.0);
                assert_eq!(t.sim_cycles, 8_000);
                assert!(t.worker < 2);
            }),
        );
        assert_eq!(count.load(Ordering::Relaxed), 3);
        assert_eq!(outcomes.len(), 3);
        // Outcomes are in construction order regardless of completion order.
        for (i, o) in outcomes.iter().enumerate() {
            assert_eq!(o.telemetry.global_index, i);
            assert_eq!(o.telemetry.point_index, i);
            assert_eq!(o.result.offered_rate, [0.1, 0.2, 0.3][i]);
        }
    }

    #[test]
    fn fault_counters_are_jobs_invariant() {
        // With faults enabled, the same seed must produce bit-identical
        // corruption/retransmission/delivery counts at every worker count:
        // each point's fault streams derive only from (fault seed, node,
        // port), never from scheduling.
        let noise = dvslink::NoiseModel::paper();
        let table = dvslink::VfTable::paper();
        let ber = noise.ber(table.get(table.top()).unwrap());
        let mut cfg = tiny_cfg()
            .with_policy(PolicyKind::HistoryDvs(Default::default()))
            .with_faults(netsim::FaultConfig::new(0xFA17).with_ber_scale(1.5e-3 / ber))
            .with_reliability_target(1e-6);
        cfg.network.timing = dvslink::TransitionTiming::paper_aggressive();
        let rates = [0.1, 0.3, 0.5];
        let run = |jobs| {
            SweepPlan::single(cfg.clone(), &rates)
                .run(jobs, None)
                .into_iter()
                .map(|o| (o.result, o.telemetry.faults))
                .collect::<Vec<_>>()
        };
        let serial = run(1);
        let faults = serial[0].1.expect("fault subsystem enabled");
        assert!(faults.transmitted > 0);
        assert!(faults.corrupted > 0, "p_flit ~ 0.05 must corrupt something");
        for jobs in [2, 8] {
            assert_eq!(run(jobs), serial, "jobs = {jobs}");
        }
    }

    #[test]
    fn empty_plan_runs_to_nothing() {
        let plan = SweepPlan::new();
        assert!(plan.is_empty());
        assert!(plan.run(4, None).is_empty());
    }
}
