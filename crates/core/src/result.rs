use std::io::{self, Write};

/// The metrics of one simulated operating point.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct RunResult {
    /// Offered load the workload was configured for, packets/cycle.
    pub offered_rate: f64,
    /// Packets/cycle actually created during measurement.
    pub injection_rate: f64,
    /// Packets/cycle delivered during measurement.
    pub throughput: f64,
    /// Mean packet latency (creation → tail ejection) in cycles, `None` if
    /// nothing was delivered.
    pub avg_latency_cycles: Option<f64>,
    /// Median packet latency estimate, in cycles.
    pub p50_latency_cycles: Option<f64>,
    /// 99th-percentile packet latency estimate, in cycles.
    pub p99_latency_cycles: Option<f64>,
    /// Maximum packet latency observed, in cycles.
    pub max_latency_cycles: Option<u64>,
    /// Average network link power over the measurement, watts.
    pub avg_power_w: f64,
    /// Power normalized to the all-links-at-max baseline, in `(0, 1]`.
    pub normalized_power: f64,
    /// Power-savings factor (baseline / actual).
    pub power_savings: f64,
    /// Mean channel level at measurement end (diagnostic).
    pub mean_level: f64,
    /// Packets delivered during measurement.
    pub packets_delivered: u64,
}

impl RunResult {
    /// CSV header matching [`csv_row`](Self::csv_row).
    pub const CSV_HEADER: &'static str = "offered_rate,injection_rate,throughput,avg_latency_cycles,p50_latency_cycles,p99_latency_cycles,max_latency_cycles,avg_power_w,normalized_power,power_savings,mean_level,packets_delivered";

    /// This result as one CSV row.
    pub fn csv_row(&self) -> String {
        format!(
            "{},{},{},{},{},{},{},{},{},{},{},{}",
            self.offered_rate,
            self.injection_rate,
            self.throughput,
            self.avg_latency_cycles
                .map_or(String::new(), |v| v.to_string()),
            self.p50_latency_cycles
                .map_or(String::new(), |v| v.to_string()),
            self.p99_latency_cycles
                .map_or(String::new(), |v| v.to_string()),
            self.max_latency_cycles
                .map_or(String::new(), |v| v.to_string()),
            self.avg_power_w,
            self.normalized_power,
            self.power_savings,
            self.mean_level,
            self.packets_delivered,
        )
    }
}

/// Write a sweep as CSV.
///
/// # Errors
///
/// Propagates I/O errors from `out`.
pub fn write_csv<W: Write>(out: &mut W, results: &[RunResult]) -> io::Result<()> {
    writeln!(out, "{}", RunResult::CSV_HEADER)?;
    for r in results {
        writeln!(out, "{}", r.csv_row())?;
    }
    Ok(())
}

/// Headline numbers derived from an injection-rate sweep, mirroring how the
/// paper reports Figs. 10–11.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct SweepSummary {
    /// Latency at the lowest measured load, in cycles.
    pub zero_load_latency: f64,
    /// Offered rate at which latency first exceeds 2× the zero-load latency,
    /// if the sweep reaches it.
    pub saturation_rate: Option<f64>,
    /// Mean latency over pre-saturation points.
    pub avg_latency_before_saturation: f64,
    /// Highest delivered throughput seen anywhere in the sweep.
    pub peak_throughput: f64,
    /// Mean power-savings factor over pre-saturation points.
    pub avg_power_savings: f64,
    /// Largest power-savings factor over pre-saturation points.
    pub max_power_savings: f64,
}

impl SweepSummary {
    /// Summarize a sweep ordered by increasing offered rate.
    ///
    /// Returns `None` if the sweep is empty or its first point delivered no
    /// packets (no zero-load latency to normalize against). The saturation
    /// criterion is the paper's: average latency worse than twice the
    /// zero-load latency.
    pub fn from_results(results: &[RunResult]) -> Option<Self> {
        let zero_load = results.first()?.avg_latency_cycles?;
        let mut saturation_rate = None;
        let mut pre_lat = Vec::new();
        let mut pre_savings = Vec::new();
        let mut peak_throughput: f64 = 0.0;
        for r in results {
            peak_throughput = peak_throughput.max(r.throughput);
            let saturated = match r.avg_latency_cycles {
                Some(l) => l > 2.0 * zero_load,
                None => true,
            };
            if saturated && saturation_rate.is_none() {
                saturation_rate = Some(r.offered_rate);
            }
            if saturation_rate.is_none() {
                if let Some(l) = r.avg_latency_cycles {
                    pre_lat.push(l);
                }
                pre_savings.push(r.power_savings);
            }
        }
        let mean = |v: &[f64]| {
            if v.is_empty() {
                0.0
            } else {
                v.iter().sum::<f64>() / v.len() as f64
            }
        };
        Some(Self {
            zero_load_latency: zero_load,
            saturation_rate,
            avg_latency_before_saturation: mean(&pre_lat),
            peak_throughput,
            avg_power_savings: mean(&pre_savings),
            max_power_savings: pre_savings.iter().copied().fold(0.0, f64::max),
        })
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn point(rate: f64, latency: Option<f64>, throughput: f64, savings: f64) -> RunResult {
        RunResult {
            offered_rate: rate,
            injection_rate: rate,
            throughput,
            avg_latency_cycles: latency,
            p50_latency_cycles: latency,
            p99_latency_cycles: latency.map(|l| l * 2.0),
            max_latency_cycles: latency.map(|l| l as u64 * 3),
            avg_power_w: 409.6 / savings,
            normalized_power: 1.0 / savings,
            power_savings: savings,
            mean_level: 5.0,
            packets_delivered: 1000,
        }
    }

    #[test]
    fn summary_detects_saturation() {
        let results = vec![
            point(0.2, Some(100.0), 0.2, 5.0),
            point(0.8, Some(120.0), 0.8, 4.5),
            point(1.4, Some(180.0), 1.4, 4.0),
            point(2.0, Some(500.0), 1.6, 3.0), // > 2x zero-load
            point(2.4, Some(900.0), 1.5, 2.5),
        ];
        let s = SweepSummary::from_results(&results).unwrap();
        assert_eq!(s.zero_load_latency, 100.0);
        assert_eq!(s.saturation_rate, Some(2.0));
        assert!((s.avg_latency_before_saturation - (100.0 + 120.0 + 180.0) / 3.0).abs() < 1e-9);
        assert_eq!(s.peak_throughput, 1.6);
        assert!((s.avg_power_savings - 4.5).abs() < 1e-9);
        assert_eq!(s.max_power_savings, 5.0);
    }

    #[test]
    fn unsaturated_sweep_has_no_saturation_rate() {
        let results = vec![
            point(0.2, Some(100.0), 0.2, 5.0),
            point(0.4, Some(110.0), 0.4, 5.0),
        ];
        let s = SweepSummary::from_results(&results).unwrap();
        assert_eq!(s.saturation_rate, None);
    }

    #[test]
    fn missing_latency_counts_as_saturated() {
        let results = vec![
            point(0.2, Some(100.0), 0.2, 5.0),
            point(0.6, None, 0.0, 5.0),
        ];
        let s = SweepSummary::from_results(&results).unwrap();
        assert_eq!(s.saturation_rate, Some(0.6));
    }

    #[test]
    fn empty_or_dead_sweep_yields_none() {
        assert!(SweepSummary::from_results(&[]).is_none());
        assert!(SweepSummary::from_results(&[point(0.1, None, 0.0, 1.0)]).is_none());
    }

    #[test]
    fn csv_roundtrip_shape() {
        let results = vec![point(0.2, Some(100.0), 0.2, 5.0)];
        let mut buf = Vec::new();
        write_csv(&mut buf, &results).unwrap();
        let text = String::from_utf8(buf).unwrap();
        let mut lines = text.lines();
        assert_eq!(lines.next(), Some(RunResult::CSV_HEADER));
        let row = lines.next().unwrap();
        assert_eq!(
            row.split(',').count(),
            RunResult::CSV_HEADER.split(',').count()
        );
        assert!(row.starts_with("0.2,"));
    }

    #[test]
    fn csv_handles_missing_latency() {
        let mut buf = Vec::new();
        write_csv(&mut buf, &[point(0.1, None, 0.0, 1.0)]).unwrap();
        let text = String::from_utf8(buf).unwrap();
        assert!(text.lines().nth(1).unwrap().contains(",,"));
    }
}
