use dvspolicy::{
    DynamicThresholdPolicy, GuardedPolicy, HistoryDvsConfig, HistoryDvsPolicy, ReactiveDvsPolicy,
    ReliabilityGuard, TargetUtilizationPolicy,
};
use netsim::{FaultConfig, LinkPolicy, NetworkConfig, NodeId, PortId, StaticLevelPolicy, Topology};
use trafficgen::{
    HotspotWorkload, Permutation, PermutationWorkload, TaskModelConfig, TaskWorkload,
    UniformRandomWorkload, Workload,
};

use crate::Cycles;

/// Which DVS policy controls the links.
#[derive(Debug, Clone, PartialEq)]
pub enum PolicyKind {
    /// All channels pinned at the configured initial level — the paper's
    /// non-DVS baseline when that level is the fastest.
    NoDvs,
    /// The paper's history-based policy (Algorithm 1).
    HistoryDvs(HistoryDvsConfig),
    /// The no-history ablation: raw window measures, same thresholds.
    Reactive,
    /// The §4.4.2 extension: Table 2 setting adapted at runtime.
    DynamicThresholds,
    /// Demand-estimating extension: heads for the slowest level that keeps
    /// utilization at a set point instead of band-stepping.
    TargetUtilization,
}

impl PolicyKind {
    pub(crate) fn build(&self) -> Box<dyn LinkPolicy> {
        match self {
            PolicyKind::NoDvs => Box::new(StaticLevelPolicy::default()),
            PolicyKind::HistoryDvs(cfg) => Box::new(HistoryDvsPolicy::new(cfg.clone())),
            PolicyKind::Reactive => Box::new(ReactiveDvsPolicy::paper()),
            PolicyKind::DynamicThresholds => Box::new(DynamicThresholdPolicy::paper()),
            PolicyKind::TargetUtilization => Box::new(TargetUtilizationPolicy::paper_comparable()),
        }
    }

    /// Short label for tables.
    pub fn label(&self) -> &'static str {
        match self {
            PolicyKind::NoDvs => "no-DVS",
            PolicyKind::HistoryDvs(_) => "history-DVS",
            PolicyKind::Reactive => "reactive-DVS",
            PolicyKind::DynamicThresholds => "dynamic-threshold-DVS",
            PolicyKind::TargetUtilization => "target-utilization-DVS",
        }
    }
}

/// Which workload injects packets.
#[derive(Debug, Clone, PartialEq)]
pub enum WorkloadKind {
    /// The paper's two-level self-similar task model.
    TwoLevel(TaskModelConfig),
    /// Uniform random Bernoulli traffic.
    UniformRandom,
    /// A fixed permutation pattern with Bernoulli injections.
    Permutation(Permutation),
    /// Hotspot traffic: the given fraction of packets target one node.
    Hotspot {
        /// The hot node.
        node: usize,
        /// Fraction of packets sent to it, in `[0, 1]`.
        fraction: f64,
    },
}

impl WorkloadKind {
    /// The paper's 100-task two-level workload.
    pub fn paper_two_level_100() -> Self {
        WorkloadKind::TwoLevel(TaskModelConfig::paper_100_tasks())
    }

    /// The paper's 50-task two-level workload.
    pub fn paper_two_level_50() -> Self {
        WorkloadKind::TwoLevel(TaskModelConfig::paper_50_tasks())
    }

    pub(crate) fn build(&self, topo: &Topology, rate: f64, seed: u64) -> Box<dyn Workload> {
        match self {
            WorkloadKind::TwoLevel(cfg) => {
                Box::new(TaskWorkload::new(cfg.clone(), topo, rate, seed))
            }
            WorkloadKind::UniformRandom => {
                Box::new(UniformRandomWorkload::new(topo.num_nodes(), rate, seed))
            }
            WorkloadKind::Permutation(p) => {
                Box::new(PermutationWorkload::new(*p, topo, rate, seed))
            }
            WorkloadKind::Hotspot { node, fraction } => Box::new(HotspotWorkload::new(
                topo.num_nodes(),
                *node,
                *fraction,
                rate,
                seed,
            )),
        }
    }

    /// Short label for tables.
    pub fn label(&self) -> &'static str {
        match self {
            WorkloadKind::TwoLevel(_) => "two-level",
            WorkloadKind::UniformRandom => "uniform",
            WorkloadKind::Permutation(_) => "permutation",
            WorkloadKind::Hotspot { .. } => "hotspot",
        }
    }
}

/// One fully specified experiment: system + policy + workload + run lengths.
#[derive(Debug, Clone)]
pub struct ExperimentConfig {
    /// Network and link configuration.
    pub network: NetworkConfig,
    /// Link DVS policy.
    pub policy: PolicyKind,
    /// Packet workload.
    pub workload: WorkloadKind,
    /// Cycles simulated before measurement starts.
    pub warmup_cycles: Cycles,
    /// Cycles measured.
    pub measure_cycles: Cycles,
    /// Root RNG seed (workload seeds derive from it).
    pub seed: u64,
    /// Bit-error-rate floor enforced around the policy: when set, every
    /// port's policy is wrapped in a [`GuardedPolicy`] that refuses to step
    /// channels below the lowest level meeting this BER under the fault
    /// subsystem's noise model (the paper's default model when faults are
    /// disabled).
    pub reliability_target_ber: Option<f64>,
}

impl ExperimentConfig {
    /// The paper's system (8x8 mesh, conservative DVS links) with no DVS
    /// policy and the 100-task workload, at run lengths suitable for
    /// regenerating curve shapes in seconds rather than the paper's
    /// 10 M-cycle cluster runs. The warm-up is sized to cover the initial
    /// DVS transient: starting from all-links-at-max, a descent and
    /// climb-back takes several voltage-ramp times (~100 k cycles each).
    /// Raise the run lengths for paper-scale runs.
    pub fn paper_baseline() -> Self {
        Self {
            network: NetworkConfig::paper_8x8(),
            policy: PolicyKind::NoDvs,
            workload: WorkloadKind::paper_two_level_100(),
            warmup_cycles: 600_000,
            measure_cycles: 400_000,
            seed: 0x11d5,
            reliability_target_ber: None,
        }
    }

    /// Builder-style policy override.
    pub fn with_policy(mut self, policy: PolicyKind) -> Self {
        self.policy = policy;
        self
    }

    /// Builder-style workload override.
    pub fn with_workload(mut self, workload: WorkloadKind) -> Self {
        self.workload = workload;
        self
    }

    /// Builder-style seed override.
    pub fn with_seed(mut self, seed: u64) -> Self {
        self.seed = seed;
        self
    }

    /// Builder-style run-length override.
    pub fn with_run_lengths(mut self, warmup: Cycles, measure: Cycles) -> Self {
        self.warmup_cycles = warmup;
        self.measure_cycles = measure;
        self
    }

    /// Builder-style fault-subsystem override (see
    /// [`netsim::NetworkConfig::faults`]).
    pub fn with_faults(mut self, faults: FaultConfig) -> Self {
        self.network.faults = Some(faults);
        self
    }

    /// Builder-style reliability floor: wrap every port's policy so it
    /// never commands a level whose predicted BER exceeds `target_ber`.
    pub fn with_reliability_target(mut self, target_ber: f64) -> Self {
        self.reliability_target_ber = Some(target_ber);
        self
    }

    pub(crate) fn policy_factory(&self) -> impl FnMut(NodeId, PortId) -> Box<dyn LinkPolicy> + '_ {
        // The guard judges levels with the same noise model the fault
        // injector draws from, so "what the policy refuses" and "what the
        // simulator corrupts" stay one consistent physical story.
        let guard = self.reliability_target_ber.map(|target| {
            let noise = self
                .network
                .faults
                .as_ref()
                .map_or_else(Default::default, |f| f.noise);
            ReliabilityGuard::new(noise, target)
        });
        move |_, _| match guard {
            Some(g) => Box::new(GuardedPolicy::new(g, self.policy.build())),
            None => self.policy.build(),
        }
    }
}
