use netsim::Network;

use crate::{ExperimentConfig, FaultSummary, RunResult};

/// Simulate one operating point: warm up, measure, and report the paper's
/// metrics.
///
/// `offered_rate` is the aggregate injection rate in packets/cycle across
/// the whole network (the x-axis of Figs. 10–17).
///
/// # Panics
///
/// Panics if the experiment configuration is invalid (propagated from
/// [`Network::with_policies`]) or `offered_rate` is not positive.
pub fn run_point(cfg: &ExperimentConfig, offered_rate: f64) -> RunResult {
    run_point_indexed(cfg, offered_rate, 0)
}

/// [`run_point`] plus the aggregate fault/retransmission counters of the
/// run (`None` when the experiment leaves the fault subsystem disabled).
///
/// # Panics
///
/// As [`run_point`].
pub fn run_point_full(
    cfg: &ExperimentConfig,
    offered_rate: f64,
) -> (RunResult, Option<FaultSummary>) {
    run_point_indexed_full(cfg, offered_rate, 0)
}

/// [`run_point`] for a point at position `point_index` of a sweep.
///
/// The workload seed derives from `(cfg.seed, offered_rate, point_index)`,
/// so every point of a sweep gets an independent stream even when rate bit
/// patterns collide or a rate repeats, and the result of a point depends
/// only on its own identity — never on which worker ran it or what else
/// was in the sweep.
///
/// # Panics
///
/// As [`run_point`].
pub fn run_point_indexed(
    cfg: &ExperimentConfig,
    offered_rate: f64,
    point_index: usize,
) -> RunResult {
    run_point_indexed_full(cfg, offered_rate, point_index).0
}

/// [`run_point_indexed`] plus the run's fault counters, as
/// [`run_point_full`].
///
/// # Panics
///
/// As [`run_point`].
pub fn run_point_indexed_full(
    cfg: &ExperimentConfig,
    offered_rate: f64,
    point_index: usize,
) -> (RunResult, Option<FaultSummary>) {
    assert!(
        offered_rate.is_finite() && offered_rate > 0.0,
        "offered rate must be positive"
    );
    let mut factory = cfg.policy_factory();
    let mut net = Network::with_policies(cfg.network.clone(), &mut factory)
        .expect("experiment network configuration must be valid");
    let seed = point_seed(cfg.seed, offered_rate, point_index);
    let mut workload = cfg.workload.build(net.topology(), offered_rate, seed);

    let mut pending: Vec<(usize, usize)> = Vec::new();
    let total = cfg.warmup_cycles + cfg.measure_cycles;
    for t in 0..total {
        if t == cfg.warmup_cycles {
            net.begin_measurement();
        }
        workload.poll(t, &mut |src, dest| pending.push((src, dest)));
        for (src, dest) in pending.drain(..) {
            net.inject(src, dest);
        }
        net.step();
    }

    let now = net.time();
    let stats = net.stats();
    let avg_power_w = net.average_power_w();
    let max_power_w = net.max_power_w();
    let normalized_power = if max_power_w > 0.0 {
        avg_power_w / max_power_w
    } else {
        0.0
    };
    let faults = net.fault_totals().map(FaultSummary::from);
    let result = RunResult {
        offered_rate,
        injection_rate: stats.injection_rate_packets_per_cycle(now),
        throughput: stats.throughput_packets_per_cycle(now),
        avg_latency_cycles: stats.latency().mean(),
        p50_latency_cycles: stats.latency().quantile(0.5),
        p99_latency_cycles: stats.latency().quantile(0.99),
        max_latency_cycles: stats.latency().max(),
        avg_power_w,
        normalized_power,
        power_savings: if avg_power_w > 0.0 {
            max_power_w / avg_power_w
        } else {
            0.0
        },
        mean_level: net.mean_channel_level(),
        packets_delivered: stats.packets_delivered(),
    };
    (result, faults)
}

/// One SplitMix64 scrambling round.
fn splitmix64(x: u64) -> u64 {
    let mut z = x.wrapping_add(0x9E37_79B9_7F4A_7C15);
    z = (z ^ (z >> 30)).wrapping_mul(0xBF58_476D_1CE4_E5B9);
    z = (z ^ (z >> 27)).wrapping_mul(0x94D0_49BB_1331_11EB);
    z ^ (z >> 31)
}

/// Derive the workload seed of one sweep point by chaining SplitMix64 over
/// `(seed, rate bits, point index)`.
///
/// The previous derivation — `seed ^ rate_bits.rotate_left(17)` — let
/// structured `(seed, rate)` pairs cancel into colliding streams and gave
/// repeated rates identical workloads; each SplitMix64 round diffuses
/// every input bit across the whole word, so distinct inputs map to
/// distinct, uncorrelated streams.
pub(crate) fn point_seed(seed: u64, offered_rate: f64, point_index: usize) -> u64 {
    let mut s = splitmix64(seed);
    s = splitmix64(s ^ offered_rate.to_bits());
    splitmix64(s ^ point_index as u64)
}

/// Run an injection-rate sweep serially, returning one [`RunResult`] per
/// rate in order. [`sweep_par`](crate::sweep_par) is the multi-worker
/// equivalent and produces bit-identical results.
pub fn sweep(cfg: &ExperimentConfig, rates: &[f64]) -> Vec<RunResult> {
    rates
        .iter()
        .enumerate()
        .map(|(i, &r)| run_point_indexed(cfg, r, i))
        .collect()
}

/// Estimate the zero-load latency of a configuration: the average latency
/// at a very light offered load (0.05 packets/cycle network-wide).
pub fn zero_load_latency(cfg: &ExperimentConfig) -> Option<f64> {
    run_point(cfg, 0.05).avg_latency_cycles
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::{PolicyKind, WorkloadKind};
    use netsim::Topology;

    /// A scaled-down experiment that runs in well under a second.
    fn quick_cfg() -> ExperimentConfig {
        let mut cfg = ExperimentConfig::paper_baseline().with_run_lengths(5_000, 20_000);
        cfg.network.topology = Topology::mesh(4, 2).unwrap();
        cfg.workload = WorkloadKind::UniformRandom;
        cfg
    }

    #[test]
    fn no_dvs_point_runs_at_full_power() {
        let r = run_point(&quick_cfg(), 0.2);
        assert!(r.packets_delivered > 100);
        assert!(r.avg_latency_cycles.unwrap() > 10.0);
        assert!(
            (r.normalized_power - 1.0).abs() < 1e-6,
            "no-DVS power must be the baseline"
        );
        assert!((r.power_savings - 1.0).abs() < 1e-6);
        assert!((r.mean_level - 9.0).abs() < 1e-12);
    }

    #[test]
    fn history_dvs_saves_power_at_light_load() {
        // The conservative 10 µs voltage ramp needs ~90 k cycles for a full
        // descent, far longer than this quick test; use the paper's
        // aggressive link (§4.4.3) so the policy can reach low levels.
        let mut cfg = quick_cfg().with_policy(PolicyKind::HistoryDvs(Default::default()));
        cfg.network.timing = dvslink::TransitionTiming::paper_aggressive();
        cfg.warmup_cycles = 15_000;
        cfg.measure_cycles = 30_000;
        let r = run_point(&cfg, 0.1);
        assert!(r.packets_delivered > 50);
        assert!(
            r.power_savings > 1.5,
            "light load must save power, got {}x",
            r.power_savings
        );
        assert!(r.mean_level < 8.0);
    }

    #[test]
    fn sweep_orders_and_matches_rates() {
        let rates = [0.1, 0.3];
        let rs = sweep(&quick_cfg(), &rates);
        assert_eq!(rs.len(), 2);
        assert_eq!(rs[0].offered_rate, 0.1);
        assert_eq!(rs[1].offered_rate, 0.3);
        assert!(rs[1].throughput > rs[0].throughput);
    }

    #[test]
    fn results_are_reproducible() {
        let cfg = quick_cfg().with_policy(PolicyKind::HistoryDvs(Default::default()));
        let a = run_point(&cfg, 0.2);
        let b = run_point(&cfg, 0.2);
        assert_eq!(a, b);
    }

    #[test]
    fn different_seeds_differ() {
        let cfg = quick_cfg();
        let a = run_point(&cfg, 0.2);
        let b = run_point(&cfg.clone().with_seed(99), 0.2);
        assert_ne!(a.packets_delivered, b.packets_delivered);
    }

    #[test]
    fn zero_load_latency_is_sane() {
        let z = zero_load_latency(&quick_cfg()).unwrap();
        // 4x4 mesh, ~13-cycle routers: tens of cycles.
        assert!(z > 20.0 && z < 120.0, "zero-load latency {z}");
    }

    #[test]
    #[should_panic(expected = "offered rate")]
    fn bad_rate_panics() {
        let _ = run_point(&quick_cfg(), 0.0);
    }

    #[test]
    fn point_seeds_are_collision_free_over_a_dense_grid() {
        // The old `seed ^ rate_bits.rotate_left(17)` derivation collided
        // whenever two (seed, rate) pairs cancelled; the SplitMix64 chain
        // must keep a dense grid of rates, indices, and seeds distinct.
        let mut seen = std::collections::HashSet::new();
        for seed in [0u64, 1, 0x11d5, u64::MAX] {
            for rate_step in 1..=50 {
                let rate = rate_step as f64 * 0.05;
                for index in 0..8 {
                    assert!(
                        seen.insert(point_seed(seed, rate, index)),
                        "collision at seed {seed}, rate {rate}, index {index}"
                    );
                }
            }
        }
    }

    #[test]
    fn old_derivation_collisions_are_fixed() {
        // Two points the pre-fix scheme mapped to the same stream:
        // seed2 = seed1 ^ rot(bits(r1)) ^ rot(bits(r2)) makes
        // seed1 ^ rot(bits(r1)) == seed2 ^ rot(bits(r2)).
        let (r1, r2) = (0.4f64, 1.6f64);
        let seed1 = 0x11d5u64;
        let seed2 = seed1 ^ r1.to_bits().rotate_left(17) ^ r2.to_bits().rotate_left(17);
        assert_eq!(
            seed1 ^ r1.to_bits().rotate_left(17),
            seed2 ^ r2.to_bits().rotate_left(17),
            "premise: the old scheme collides on this pair"
        );
        assert_ne!(point_seed(seed1, r1, 0), point_seed(seed2, r2, 0));
    }

    #[test]
    fn repeated_rates_get_distinct_streams() {
        // The same rate at two sweep positions must not share a workload.
        let cfg = quick_cfg();
        let rs = sweep(&cfg, &[0.2, 0.2]);
        assert_ne!(rs[0].packets_delivered, rs[1].packets_delivered);
        // ...while a lone point still matches position 0 of any sweep.
        assert_eq!(rs[0], run_point(&cfg, 0.2));
    }
}
