//! Tuning the DVS policy's aggressiveness: sweep the paper's Table 2
//! threshold settings (I–VI) at one load and print the latency/power
//! frontier, then show the runtime-adaptive variant.
//!
//! Run with: `cargo run --release --example threshold_tuning`

use dvspolicy::HistoryDvsConfig;
use linkdvs::{run_point, ExperimentConfig, PolicyKind, WorkloadKind};

fn main() {
    let offered = 1.0;
    let base = ExperimentConfig::paper_baseline()
        .with_workload(WorkloadKind::paper_two_level_100())
        .with_run_lengths(200_000, 200_000);

    println!("threshold trade-off at {offered} packets/cycle\n");
    println!(
        "{:<28} {:>10} {:>10} {:>9}",
        "policy", "latency", "power_W", "savings"
    );
    for setting in 1..=6 {
        let cfg = base
            .clone()
            .with_policy(PolicyKind::HistoryDvs(HistoryDvsConfig::paper_table2(
                setting,
            )));
        let r = run_point(&cfg, offered);
        println!(
            "{:<28} {:>10.0} {:>10.1} {:>8.2}x",
            format!("Table 2 setting {setting}"),
            r.avg_latency_cycles.unwrap_or(f64::NAN),
            r.avg_power_w,
            r.power_savings
        );
    }
    let dynamic = run_point(&base.with_policy(PolicyKind::DynamicThresholds), offered);
    println!(
        "{:<28} {:>10.0} {:>10.1} {:>8.2}x",
        "dynamic thresholds (ext.)",
        dynamic.avg_latency_cycles.unwrap_or(f64::NAN),
        dynamic.avg_power_w,
        dynamic.power_savings
    );
    println!("\nhigher settings save more power at the cost of latency (the Fig. 15 frontier);");
    println!("the dynamic variant re-tunes the setting at runtime per port.");
}
