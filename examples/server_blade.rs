//! The paper's motivating scenario: a power-constrained server-blade
//! fabric. In a Mellanox blade, router + links take 15 W of a 40 W budget —
//! as much as the processor. This example shows what history-based link DVS
//! buys on such a fabric across its daily load range, and verifies the
//! policy hardware overhead is negligible.
//!
//! Run with: `cargo run --release --example server_blade`

use dvspolicy::HardwareCost;
use linkdvs::{sweep, ExperimentConfig, PolicyKind, WorkloadKind};

fn main() {
    // A blade fabric idles most of the day and bursts under load; sweep
    // three representative operating regimes.
    let rates = [0.1, 0.6, 1.4];
    let labels = ["overnight (idle)", "business hours", "peak batch"];
    let base = ExperimentConfig::paper_baseline()
        .with_workload(WorkloadKind::paper_two_level_50())
        .with_run_lengths(200_000, 200_000);

    let no_dvs = sweep(&base.clone().with_policy(PolicyKind::NoDvs), &rates);
    let dvs = sweep(
        &base.with_policy(PolicyKind::HistoryDvs(Default::default())),
        &rates,
    );

    println!("server-blade fabric: 8x8 mesh, 50 concurrent task sessions\n");
    println!(
        "{:<18} {:>10} {:>10} {:>9} {:>12} {:>12}",
        "regime", "fixed_W", "dvs_W", "savings", "lat_fixed", "lat_dvs"
    );
    for i in 0..rates.len() {
        println!(
            "{:<18} {:>10.1} {:>10.1} {:>8.1}x {:>12.0} {:>12.0}",
            labels[i],
            no_dvs[i].avg_power_w,
            dvs[i].avg_power_w,
            no_dvs[i].avg_power_w / dvs[i].avg_power_w,
            no_dvs[i].avg_latency_cycles.unwrap_or(f64::NAN),
            dvs[i].avg_latency_cycles.unwrap_or(f64::NAN),
        );
    }

    let hw = HardwareCost::paper();
    let overhead = hw.network_power_overhead_w(64, 4);
    println!(
        "\npolicy hardware: {} gates and {:.2} W across the whole fabric ({:.2}% of the fixed link budget)",
        hw.network_gates(64, 4),
        overhead,
        overhead / no_dvs[0].avg_power_w * 100.0
    );
    let avg_savings: f64 = no_dvs
        .iter()
        .zip(&dvs)
        .map(|(a, b)| a.avg_power_w / b.avg_power_w)
        .sum::<f64>()
        / rates.len() as f64;
    println!("average link-power savings across regimes: {avg_savings:.1}x");
}
