//! Writing your own link-DVS policy: implement `netsim::LinkPolicy` and
//! hand it to the network. This example builds a deliberately simple
//! "bang-bang" policy — full speed whenever anything moved in the window,
//! bottom otherwise — and compares it against the paper's history-based
//! policy on the same recorded traffic.
//!
//! Run with: `cargo run --release --example custom_policy`

use dvslink::DvsChannel;
use dvspolicy::{HardwareCost, HistoryDvsConfig, HistoryDvsPolicy};
use netsim::{LinkPolicy, Network, NetworkConfig, WindowMeasures};
use trafficgen::{TaskModelConfig, TaskWorkload, Trace, Workload};

/// Full speed when anything moved recently, bottom level otherwise.
struct BangBang;

impl LinkPolicy for BangBang {
    fn window_cycles(&self) -> u64 {
        200
    }

    fn on_window(&mut self, m: &WindowMeasures, ch: &mut DvsChannel) {
        if !ch.is_stable() {
            return;
        }
        if m.flits_sent > 0 {
            let _ = ch.request_step_up(m.now);
        } else {
            let _ = ch.request_step_down(m.now);
        }
    }
}

fn run(trace: &Trace, label: &str, make: impl FnMut(usize, usize) -> Box<dyn LinkPolicy>) {
    let mut net = Network::with_policies(NetworkConfig::paper_8x8(), make).expect("valid config");
    let mut replay = trace.clone().into_workload();
    let mut pend = Vec::new();
    let horizon = 300_000u64;
    for t in 0..horizon {
        if t == horizon / 2 {
            net.begin_measurement();
        }
        replay.poll(t, &mut |s, d| pend.push((s, d)));
        for (s, d) in pend.drain(..) {
            net.inject(s, d);
        }
        net.step();
    }
    let stats = net.stats();
    let transitions = net.transition_stats();
    println!(
        "{label:<22} power {:>6.1} W  savings {:>4.1}x  mean latency {:>7.0}  transitions {:>6}",
        net.average_power_w(),
        net.max_power_w() / net.average_power_w(),
        stats.latency().mean().unwrap_or(f64::NAN),
        transitions.completed,
    );
}

fn main() {
    // Record one workload so both policies see bit-identical traffic.
    let topo = netsim::Topology::mesh(8, 2).expect("valid");
    let mut wl = TaskWorkload::new(TaskModelConfig::paper_100_tasks(), &topo, 0.6, 11);
    let trace = Trace::record(&mut wl, 300_000);
    println!(
        "replaying {} packets ({:.2} pkt/cycle) against two policies:\n",
        trace.len(),
        trace.mean_rate()
    );
    run(&trace, "bang-bang (custom)", |_, _| Box::new(BangBang));
    run(&trace, "history-based (paper)", |_, _| {
        Box::new(HistoryDvsPolicy::new(HistoryDvsConfig::paper()))
    });
    println!(
        "\nbang-bang races to full speed at any sign of traffic, so it keeps latency low\n\
         but saves little power; the paper's EWMA + thresholds sit much lower on the\n\
         power axis at a latency cost — two different points on the same trade-off.\n\
         (either policy fits in the same {}-gate port hardware.)",
        HardwareCost::paper().gates_per_port()
    );
}
