//! Drive the network past saturation and watch the paper's Fig. 12
//! phenomenon: network power rises with throughput, then *dips* once the
//! network congests, because the distributed policy slows the links feeding
//! congested routers (their delay is hidden by queueing anyway).
//!
//! Run with: `cargo run --release --example congestion_study`

use linkdvs::{run_point, ExperimentConfig, PolicyKind, WorkloadKind};

fn main() {
    let base = ExperimentConfig::paper_baseline()
        .with_workload(WorkloadKind::paper_two_level_100())
        .with_policy(PolicyKind::HistoryDvs(Default::default()))
        .with_run_lengths(200_000, 200_000);

    println!("pushing the DVS network into and beyond saturation\n");
    println!(
        "{:>8} {:>10} {:>10} {:>10} {:>8}",
        "offered", "delivered", "power_W", "latency", "level"
    );
    let mut rows = Vec::new();
    for rate in [0.5, 1.0, 1.5, 2.0, 2.5, 3.0, 3.5, 4.0] {
        let r = run_point(&base, rate);
        println!(
            "{:>8.1} {:>10.2} {:>10.1} {:>10.0} {:>8.2}",
            rate,
            r.throughput,
            r.avg_power_w,
            r.avg_latency_cycles.unwrap_or(f64::NAN),
            r.mean_level
        );
        rows.push(r);
    }
    let peak_power = rows.iter().map(|r| r.avg_power_w).fold(0.0, f64::max);
    let final_power = rows.last().expect("rows non-empty").avg_power_w;
    if final_power < peak_power {
        println!(
            "\npower peaked at {peak_power:.1} W and fell to {final_power:.1} W in deep congestion —"
        );
        println!("the policy slows credit-starved links, reproducing the paper's Fig. 12 dip.");
    } else {
        println!("\nno power dip observed at these loads; push rates higher.");
    }
}
