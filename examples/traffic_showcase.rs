//! Showcase of the two-level self-similar workload model: verify the
//! generated traffic is long-range dependent (Hurst exponent well above
//! 0.5) and show its spatial and temporal variance next to uniform-random
//! traffic, which has neither.
//!
//! Run with: `cargo run --release --example traffic_showcase`

use netsim::Topology;
use trafficgen::{
    rs_hurst, variance_time_hurst, TaskModelConfig, TaskWorkload, UniformRandomWorkload, Workload,
};

fn binned_counts(wl: &mut dyn Workload, cycles: u64, bin: u64) -> (Vec<f64>, Vec<u64>) {
    let mut series = vec![0f64; (cycles / bin) as usize];
    let mut per_node = vec![0u64; 64];
    for t in 0..cycles {
        let idx = (t / bin) as usize;
        wl.poll(t, &mut |s, _| {
            series[idx] += 1.0;
            per_node[s] += 1;
        });
    }
    (series, per_node)
}

fn spatial_cv(per_node: &[u64]) -> f64 {
    let mean = per_node.iter().sum::<u64>() as f64 / per_node.len() as f64;
    let var = per_node
        .iter()
        .map(|&c| (c as f64 - mean) * (c as f64 - mean))
        .sum::<f64>()
        / per_node.len() as f64;
    var.sqrt() / mean
}

fn main() {
    let topo = Topology::mesh(8, 2).expect("valid");
    let cycles = 2_000_000;
    let bin = 500;

    let mut two_level = TaskWorkload::new(TaskModelConfig::paper_100_tasks(), &topo, 1.0, 7);
    let (series, per_node) = binned_counts(&mut two_level, cycles, bin);

    let mut uniform = UniformRandomWorkload::new(64, 1.0, 7);
    let (useries, uper_node) = binned_counts(&mut uniform, cycles, bin);

    println!("traffic model comparison over {cycles} cycles at 1.0 pkt/cycle\n");
    println!("{:<26} {:>12} {:>12}", "", "two-level", "uniform");
    println!(
        "{:<26} {:>12.2} {:>12.2}",
        "Hurst (variance-time)",
        variance_time_hurst(&series).unwrap_or(f64::NAN),
        variance_time_hurst(&useries).unwrap_or(f64::NAN)
    );
    println!(
        "{:<26} {:>12.2} {:>12.2}",
        "Hurst (R/S)",
        rs_hurst(&series).unwrap_or(f64::NAN),
        rs_hurst(&useries).unwrap_or(f64::NAN)
    );
    println!(
        "{:<26} {:>12.2} {:>12.2}",
        "spatial CV (per node)",
        spatial_cv(&per_node),
        spatial_cv(&uper_node)
    );
    let peak = series.iter().copied().fold(0.0, f64::max);
    let upeak = useries.iter().copied().fold(0.0, f64::max);
    let mean = series.iter().sum::<f64>() / series.len() as f64;
    let umean = useries.iter().sum::<f64>() / useries.len() as f64;
    println!(
        "{:<26} {:>12.1} {:>12.1}",
        "peak/mean burst ratio",
        peak / mean,
        upeak / umean
    );
    println!("\nself-similar traffic keeps H well above 0.5 and bursts at every scale —");
    println!("exactly the variance a link-DVS policy exploits (and must survive).");
}
