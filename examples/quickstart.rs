//! Quickstart: build the paper's 8x8 mesh with history-based link DVS,
//! drive it with the two-level self-similar workload, and print the
//! power/latency outcome against the non-DVS baseline.
//!
//! Run with: `cargo run --release --example quickstart`

use linkdvs::{run_point, ExperimentConfig, PolicyKind, WorkloadKind};

fn main() {
    // One operating point at a moderate load. `paper_baseline()` is the
    // paper's full 8x8 system; the run lengths here are trimmed so the
    // example finishes in a few seconds.
    let offered = 0.6; // packets/cycle across the whole network
    let base = ExperimentConfig::paper_baseline()
        .with_workload(WorkloadKind::paper_two_level_100())
        .with_run_lengths(150_000, 150_000);

    println!("simulating {offered} packets/cycle on the paper's 8x8 mesh...\n");

    let no_dvs = run_point(&base.clone().with_policy(PolicyKind::NoDvs), offered);
    let dvs = run_point(
        &base.with_policy(PolicyKind::HistoryDvs(Default::default())),
        offered,
    );

    println!("{:<22} {:>12} {:>14}", "", "without DVS", "history DVS");
    println!(
        "{:<22} {:>12.3} {:>14.3}",
        "throughput (pkt/cyc)", no_dvs.throughput, dvs.throughput
    );
    println!(
        "{:<22} {:>12.0} {:>14.0}",
        "mean latency (cyc)",
        no_dvs.avg_latency_cycles.unwrap_or(f64::NAN),
        dvs.avg_latency_cycles.unwrap_or(f64::NAN)
    );
    println!(
        "{:<22} {:>12.1} {:>14.1}",
        "link power (W)", no_dvs.avg_power_w, dvs.avg_power_w
    );
    println!(
        "{:<22} {:>12.2} {:>14.2}",
        "power savings (x)", no_dvs.power_savings, dvs.power_savings
    );
    println!(
        "\nthe DVS policy ran the links at mean level {:.1} of 9 and cut link power {:.1}x",
        dvs.mean_level, dvs.power_savings
    );
}
