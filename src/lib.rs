//! Umbrella crate for the HPCA 2003 link-DVS reproduction.
//!
//! This package exists to host the repository-level `examples/` and `tests/`
//! directories; the actual functionality lives in the workspace crates, which
//! are re-exported here for convenience:
//!
//! - [`netsim`] — flit-level k-ary n-cube network simulator.
//! - [`dvslink`] — DVS link model (levels, transitions, energy).
//! - [`dvspolicy`] — history-based DVS policy and baselines.
//! - [`trafficgen`] — two-level self-similar workload generator.
//! - [`linkdvs`] — experiment layer (configs, sweeps, metrics).

pub use dvslink;
pub use dvspolicy;
pub use linkdvs;
pub use netsim;
pub use trafficgen;
